//! Integration tests for the two non-flat source paths of the paper's
//! Figure 1: pre-existing XML databanks (INTERPRO, §2.1) and wrapped
//! relational tables.

use std::collections::BTreeSet;

use xomatiq_bioflat::interpro::generate_interpro;
use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::{ChangeKind, SourceKind, Xomatiq};
use xomatiq_datahounds::transform::interpro::{interpro_to_xml, INTERPRO_DTD_TEXT};
use xomatiq_relstore::Database;

fn interpro_docs(
    entries: &[xomatiq_bioflat::interpro::InterProEntry],
) -> Vec<(String, xomatiq_xml::Document)> {
    entries
        .iter()
        .map(|e| (e.id.clone(), interpro_to_xml(e).unwrap()))
        .collect()
}

#[test]
fn interpro_xml_databank_loads_and_queries() {
    let corpus = Corpus::generate(&CorpusSpec::sized(30));
    let sp_accessions: Vec<String> = corpus
        .swissprot
        .iter()
        .map(|e| e.accession.clone())
        .collect();
    let entries = generate_interpro(40, 3, &sp_accessions);

    let xq = Xomatiq::in_memory();
    xq.load_source(
        "hlx_sprot.all",
        SourceKind::SwissProt,
        &corpus.swissprot_flat(),
    )
    .unwrap();
    let stats = xq
        .load_xml_source(
            "hlx_interpro.all",
            INTERPRO_DTD_TEXT,
            interpro_docs(&entries),
        )
        .unwrap();
    assert_eq!(stats.documents, 40);

    // Query the databank directly.
    let outcome = xq
        .query(
            r#"FOR $i IN document("hlx_interpro.all")/hlx_interpro
               WHERE $i//entry_type = "Domain"
               RETURN $i//interpro_id, $i//entry_name"#,
        )
        .unwrap();
    let expected: BTreeSet<String> = entries
        .iter()
        .filter(|e| e.entry_type == "Domain")
        .map(|e| e.id.clone())
        .collect();
    let got: BTreeSet<String> = outcome.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(got, expected);

    // Cross-databank join: InterPro protein matches against Swiss-Prot.
    let join = xq
        .query(
            r#"FOR $i IN document("hlx_interpro.all")/hlx_interpro/db_entry,
                   $p IN document("hlx_sprot.all")/hlx_p_sequence/db_entry
               WHERE $i//protein_match = $p/sprot_accession_number
               RETURN $i//interpro_id, $p//entry_name"#,
        )
        .unwrap();
    let expected_pairs: BTreeSet<(String, String)> = entries
        .iter()
        .flat_map(|e| {
            e.protein_matches.iter().map(|m| {
                let protein = corpus.swissprot.iter().find(|p| &p.accession == m).unwrap();
                (e.id.clone(), protein.name.clone())
            })
        })
        .collect();
    let got_pairs: BTreeSet<(String, String)> = join
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].to_string()))
        .collect();
    assert_eq!(got_pairs, expected_pairs);
    assert!(!expected_pairs.is_empty());
}

#[test]
fn interpro_updates_and_reconstruction() {
    let entries = generate_interpro(10, 5, &[]);
    let xq = Xomatiq::in_memory();
    xq.load_xml_source("ipr", INTERPRO_DTD_TEXT, interpro_docs(&entries))
        .unwrap();

    // Reconstruction round-trips.
    let doc = xq.reconstruct("ipr", "IPR000003").unwrap();
    let original = interpro_to_xml(&entries[2]).unwrap();
    assert!(original.structurally_equal(&doc));

    // The DTD panel shows the stored DTD even for XML sources.
    let dtd = xq.dtd("ipr").unwrap();
    assert_eq!(dtd.root(), Some("hlx_interpro"));

    // Incremental update: rename one entry, drop one, add one.
    let mut v2 = entries.clone();
    v2[0].name = "Renamed_family".into();
    v2.remove(5);
    let mut added = v2[1].clone();
    added.id = "IPR999999".into();
    v2.push(added);
    let events = xq.update_xml_source("ipr", interpro_docs(&v2)).unwrap();
    assert_eq!(events.len(), 3);
    let kinds: BTreeSet<ChangeKind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(kinds.len(), 3);
    assert_eq!(xq.doc_count("ipr").unwrap(), 10);
    // Flat-style update on an XML source is rejected.
    assert!(xq.update_source("ipr", "ID x").is_err());
}

#[test]
fn relational_table_wraps_and_queries() {
    // A "remote" clinical database (the paper's §1 medical-records
    // correlation scenario) — simulated by a second engine instance.
    let remote = Database::in_memory();
    remote
        .query("CREATE TABLE patients (mrn TEXT, diagnosis TEXT, mim_id TEXT, age INT)")
        .run()
        .unwrap();
    remote
        .query(
            "INSERT INTO patients VALUES \
             ('MRN001', 'Alkaptonuria', '203500', 34), \
             ('MRN002', 'Phenylketonuria', '261600', 7), \
             ('MRN003', 'Alkaptonuria', '203500', 61), \
             ('MRN004', 'Galactosemia', '230400', 2)",
        )
        .run()
        .unwrap();

    let xq = Xomatiq::in_memory();
    let stats = xq
        .load_relational_source("hlx_patients", &remote, "patients", "mrn")
        .unwrap();
    assert_eq!(stats.documents, 4);

    // Query the wrapped table through FLWR like any other collection.
    let outcome = xq
        .query(
            r#"FOR $p IN document("hlx_patients")/hlx_patients
               WHERE $p//diagnosis = "Alkaptonuria" AND $p//age > 40
               RETURN $p//mrn"#,
        )
        .unwrap();
    assert_eq!(outcome.rows.len(), 1);
    assert_eq!(outcome.rows[0][0].to_string(), "MRN003");

    // Correlate with the ENZYME disease annotations (paper §1: medical
    // records × disease databases) via MIM ids.
    let mut enzyme = xomatiq_bioflat::EnzymeEntry {
        id: "1.2.3.4".into(),
        descriptions: vec!["Homogentisate oxidase.".into()],
        ..Default::default()
    };
    enzyme.diseases.push(xomatiq_bioflat::enzyme::DiseaseRef {
        description: "Alkaptonuria".into(),
        mim_id: "203500".into(),
    });
    xq.load_source("hlx_enzyme.DEFAULT", SourceKind::Enzyme, &enzyme.to_flat())
        .unwrap();
    let join = xq
        .query(
            r#"FOR $p IN document("hlx_patients")/hlx_patients/db_entry,
                   $e IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
               WHERE $p/mim_id = $e//disease/@mim_id
               RETURN $p//mrn, $e//enzyme_description"#,
        )
        .unwrap();
    let mrns: BTreeSet<String> = join.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(
        mrns,
        BTreeSet::from(["MRN001".to_string(), "MRN003".to_string()])
    );
}

#[test]
fn xml_source_survives_restart() {
    let path = std::env::temp_dir().join(format!("xomatiq-xmlsrc-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let entries = generate_interpro(5, 8, &[]);
    {
        let xq = Xomatiq::open(&path).unwrap();
        xq.load_xml_source("ipr", INTERPRO_DTD_TEXT, interpro_docs(&entries))
            .unwrap();
    }
    let xq = Xomatiq::open(&path).unwrap();
    assert_eq!(xq.doc_count("ipr").unwrap(), 5);
    assert_eq!(xq.dtd("ipr").unwrap().root(), Some("hlx_interpro"));
    let outcome = xq
        .query(r#"FOR $i IN document("ipr")/hlx_interpro RETURN $i//interpro_id"#)
        .unwrap();
    assert_eq!(outcome.rows.len(), 5);
    // XML updates still work post-recovery.
    let mut v2 = entries.clone();
    v2[0].name = "changed".into();
    let events = xq.update_xml_source("ipr", interpro_docs(&v2)).unwrap();
    assert_eq!(events.len(), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn invalid_xml_source_rejected() {
    let xq = Xomatiq::in_memory();
    // A document that does not match the declared DTD.
    let (mut doc, root) = xomatiq_xml::Document::with_root("wrong_root").unwrap();
    doc.append_text(root, "x");
    let err = xq.load_xml_source("bad", INTERPRO_DTD_TEXT, vec![("k".into(), doc)]);
    assert!(err.is_err());
    // Flat loader refuses the Xml kind.
    assert!(xq.load_source("bad2", SourceKind::Xml, "").is_err());
}

#[test]
fn comments_and_pis_survive_shredding() {
    // XML databank entries may carry comments and processing instructions;
    // both shredding strategies must store and reconstruct them.
    let dtd_text = "<!ELEMENT r (item*)>\n<!ELEMENT item (#PCDATA)>\n";
    let (mut doc, root) = xomatiq_xml::Document::with_root("r").unwrap();
    doc.append_comment(root, " curator note ");
    let item = doc.append_element(root, "item").unwrap();
    doc.append_text(item, "value");
    doc.append_pi(root, "render", "inline").unwrap();

    for strategy in [
        xomatiq_core::ShreddingStrategy::Edge,
        xomatiq_core::ShreddingStrategy::Interval,
    ] {
        let xq = Xomatiq::in_memory();
        xq.hounds()
            .load_xml_source(
                "c",
                dtd_text,
                vec![("k1".to_string(), doc.clone())],
                xomatiq_datahounds::source::LoadOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
        let rebuilt = xq.reconstruct("c", "k1").unwrap();
        assert!(
            doc.structurally_equal(&rebuilt),
            "{strategy:?} lost comments or PIs:\n{}",
            xomatiq_xml::to_string(&rebuilt)
        );
    }
}
