//! Figure-by-figure reproduction tests against the public API.
//!
//! Each test regenerates one artifact of the paper and checks its
//! landmarks (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for the recorded outcomes).

use xomatiq_bioflat::enzyme::{parse_enzyme_file, FIGURE2_SAMPLE};
use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::{QueryBuilder, SourceKind, Xomatiq};
use xomatiq_datahounds::transform::{enzyme_dtd, enzyme_to_xml};
use xomatiq_xml::dtd::validate;

/// Figure 2: the sample ENZYME entry parses into its documented fields.
#[test]
fn fig2_sample_entry_parses() {
    let entries = parse_enzyme_file(FIGURE2_SAMPLE).unwrap();
    assert_eq!(entries.len(), 1);
    let e = &entries[0];
    assert_eq!(e.id, "1.14.17.3");
    assert_eq!(e.descriptions[0], "Peptidylglycine monooxygenase.");
    assert_eq!(e.alternate_names.len(), 2);
    assert_eq!(e.cofactors, vec!["Copper"]);
    assert_eq!(e.swissprot_refs.len(), 5);
    assert_eq!(e.prosite_refs, vec!["PDOC00080"]);
}

/// Figures 3–4: the line discipline (2-char code, data from column 6).
#[test]
fn fig3_fig4_line_structure() {
    for line in FIGURE2_SAMPLE.lines() {
        let parsed = xomatiq_bioflat::line::split_line(line).unwrap();
        assert!(
            ["ID", "DE", "AN", "CA", "CF", "CC", "PR", "DR", "DI", "//"].contains(&parsed.code),
            "unexpected line code {:?}",
            parsed.code
        );
        if parsed.code != "//" {
            // Columns 3–5 are blank.
            assert!(line[2..5].trim().is_empty(), "{line:?}");
        }
    }
}

/// Figure 5: the generated ENZYME DTD has the documented structure.
#[test]
fn fig5_enzyme_dtd() {
    let dtd = enzyme_dtd();
    let printed = dtd.to_string();
    for landmark in [
        "<!ELEMENT hlx_enzyme (db_entry)>",
        "enzyme_description+",
        "catalytic_activity*",
        "<!ELEMENT alternate_name_list (alternate_name)*>",
        "prosite_accession_number NMTOKEN #REQUIRED",
        "name CDATA #REQUIRED",
        "swissprot_accession_number NMTOKEN #REQUIRED",
        "mim_id CDATA #REQUIRED",
    ] {
        assert!(
            printed.contains(landmark),
            "missing {landmark:?} in:\n{printed}"
        );
    }
    // The printed DTD reparses to the identical model.
    assert_eq!(xomatiq_xml::dtd::parse_dtd(&printed).unwrap(), dtd);
}

/// Figure 6: the XML version of the Figure 2 entry.
#[test]
fn fig6_xml_of_sample_entry() {
    let entry = parse_enzyme_file(FIGURE2_SAMPLE).unwrap().remove(0);
    let doc = enzyme_to_xml(&entry).unwrap();
    validate(&doc, &enzyme_dtd()).unwrap();
    let xml = xomatiq_xml::to_string_pretty(&doc);
    for landmark in [
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>",
        "<hlx_enzyme>",
        "<db_entry>",
        "<enzyme_id>1.14.17.3</enzyme_id>",
        "<enzyme_description>Peptidylglycine monooxygenase.</enzyme_description>",
        "<alternate_name>Peptidyl alpha-amidating enzyme</alternate_name>",
        "<cofactor>Copper</cofactor>",
        "<prosite_reference prosite_accession_number=\"PDOC00080\"/>",
        "<reference name=\"AMD_BOVIN\" swissprot_accession_number=\"P10731\"/>",
        "<reference name=\"AMD2_XENLA\" swissprot_accession_number=\"P12890\"/>",
        "<disease_list/>",
    ] {
        assert!(xml.contains(landmark), "missing {landmark:?} in:\n{xml}");
    }
}

fn full_warehouse() -> (Xomatiq, Corpus) {
    let corpus = Corpus::generate(&CorpusSpec {
        enzymes: 60,
        embl: 60,
        swissprot: 60,
        keyword_rate: 0.15,
        link_rate: 0.35,
        ketone_rate: 0.2,
        seed: 11,
    });
    let xq = Xomatiq::in_memory();
    xq.load_source(
        "hlx_enzyme.DEFAULT",
        SourceKind::Enzyme,
        &corpus.enzyme_flat(),
    )
    .unwrap();
    xq.load_source("hlx_embl.inv", SourceKind::Embl, &corpus.embl_flat())
        .unwrap();
    xq.load_source(
        "hlx_sprot.all",
        SourceKind::SwissProt,
        &corpus.swissprot_flat(),
    )
    .unwrap();
    (xq, corpus)
}

/// Figures 7 + 9: the "ketone" sub-tree search, GUI-built and text-form,
/// with both result views.
#[test]
fn fig7_fig9_subtree_search() {
    let (xq, corpus) = full_warehouse();
    let built = QueryBuilder::subtree_search(
        "a",
        "hlx_enzyme.DEFAULT",
        "/hlx_enzyme",
        "$a//catalytic_activity",
        "ketone",
        &["$a//enzyme_id", "$a//enzyme_description"],
    )
    .unwrap();
    // The GUI's textual form parses back to the same query (Figure 9).
    let text_form = built.to_string();
    assert_eq!(xomatiq_xquery::parse_query(&text_form).unwrap(), built);

    let outcome = xq.run_query(&built).unwrap();
    let got: std::collections::BTreeSet<String> =
        outcome.rows.iter().map(|r| r[0].to_string()).collect();
    let want: std::collections::BTreeSet<String> = corpus.ketone_enzymes.iter().cloned().collect();
    assert_eq!(got, want);
    assert!(!outcome.rows.is_empty());

    // Figure 7(b): table panel + document panel for the first hit.
    let table = xomatiq_core::render::render_table(&outcome);
    assert!(table.contains("enzyme_id"));
    let first = outcome.rows[0][0].to_string();
    let doc = xq.reconstruct("hlx_enzyme.DEFAULT", &first).unwrap();
    let tree = xomatiq_core::render::render_tree(&doc);
    assert!(tree.contains(&format!("enzyme_id: {first}")), "{tree}");
}

/// Figure 8: the cdc6 keyword search across EMBL and Swiss-Prot.
#[test]
fn fig8_keyword_search() {
    let (xq, corpus) = full_warehouse();
    let query = QueryBuilder::keyword_search(
        &[
            ("a", "hlx_embl.inv", "/hlx_n_sequence"),
            ("b", "hlx_sprot.all", "/hlx_p_sequence"),
        ],
        "cdc6",
        &["$b//sprot_accession_number", "$a//embl_accession_number"],
    )
    .unwrap();
    let outcome = xq.run_query(&query).unwrap();
    assert_eq!(
        outcome.rows.len(),
        corpus.cdc6_embl.len() * corpus.cdc6_swissprot.len()
    );
    assert!(!outcome.rows.is_empty());
}

/// Figures 10–12: the EMBL ⋈ ENZYME join on EC number, with both panels.
#[test]
fn fig10_to_fig12_join() {
    let (xq, corpus) = full_warehouse();
    let query = QueryBuilder::join(
        ("a", "hlx_embl.inv", "/hlx_n_sequence/db_entry"),
        ("b", "hlx_enzyme.DEFAULT", "/hlx_enzyme/db_entry"),
        "$a//qualifier[@qualifier_type = \"EC number\"]",
        "$b/enzyme_id",
        &[
            ("Accession_Number", "$a//embl_accession_number"),
            ("Accession_Description", "$a//description"),
        ],
    )
    .unwrap();
    let outcome = xq.run_query(&query).unwrap();
    let got: std::collections::BTreeSet<String> =
        outcome.rows.iter().map(|r| r[0].to_string()).collect();
    let want: std::collections::BTreeSet<String> = corpus
        .planted_ec_links
        .iter()
        .map(|(a, _)| a.clone())
        .collect();
    assert_eq!(got, want);
    assert!(!outcome.rows.is_empty());

    // Figure 12's XML structure format.
    let tagged = xomatiq_core::tagger::tag_results(&outcome).unwrap();
    let xml = xomatiq_xml::to_string(&tagged);
    assert!(xml.contains("<accession_number>"));
    assert!(xml.contains(&format!("count=\"{}\"", outcome.rows.len())));
}
