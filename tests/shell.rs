//! Scripted tests of the `xomatiq-shell` binary (the CLI stand-in for the
//! paper's GUI), driven through stdin.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str, args: &[&str]) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xomatiq-shell"))
        .args(args)
        .env("XOMATIQ_BATCH", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("shell binary spawns");
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let output = child.wait_with_output().expect("shell exits");
    assert!(
        output.status.success(),
        "shell exited with {:?}",
        output.status
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn gen_query_and_inspect() {
    let out = run_script(
        r#"gen 40
stats
dtd hlx_enzyme.DEFAULT
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme WHERE contains($a//db_entry, "Copper") RETURN $a//enzyme_id;
quit
"#,
        &[],
    );
    assert!(out.contains("hlx_enzyme.DEFAULT: 40 documents"), "{out}");
    assert!(out.contains("<!ELEMENT hlx_enzyme (db_entry)>"), "{out}");
    assert!(out.contains("| enzyme_id |"), "{out}");
    assert!(out.contains("rows)"), "{out}");
}

#[test]
fn multiline_query_and_xml_view() {
    let out = run_script(
        r#"gen 30
xml
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
WHERE contains($a, "cdc6", any)
RETURN $a//embl_accession_number

quit
"#,
        &[],
    );
    assert!(out.contains("result view: XML"), "{out}");
    assert!(out.contains("<results count="), "{out}");
}

#[test]
fn explain_and_doc_commands() {
    let out = run_script(
        r#"gen 20
explain FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme WHERE $a//enzyme_id = "1.1.1.1" RETURN $a//enzyme_id
doc hlx_enzyme.DEFAULT 1.1.1.1
quit
"#,
        &[],
    );
    assert!(out.contains("-- SQL"), "{out}");
    assert!(out.contains("IndexScan"), "{out}");
    assert!(out.contains("enzyme_id: 1.1.1.1"), "{out}");
}

#[test]
fn load_and_update_from_files() {
    let dir = std::env::temp_dir().join(format!("xomatiq-shell-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1 = dir.join("enzyme_v1.txt");
    std::fs::write(&v1, xomatiq_bioflat::enzyme::FIGURE2_SAMPLE).unwrap();
    let v2 = dir.join("enzyme_v2.txt");
    let mut entry =
        xomatiq_bioflat::enzyme::parse_enzyme_file(xomatiq_bioflat::enzyme::FIGURE2_SAMPLE)
            .unwrap()
            .remove(0);
    entry.descriptions = vec!["Renamed via shell.".into()];
    std::fs::write(&v2, entry.to_flat()).unwrap();

    let script = format!(
        "load c enzyme {}\nupdate c {}\nFOR $a IN document(\"c\")/hlx_enzyme RETURN $a//enzyme_description;\nquit\n",
        v1.display(),
        v2.display()
    );
    let out = run_script(&script, &[]);
    assert!(out.contains("loaded 1 documents"), "{out}");
    assert!(out.contains("1 change(s) integrated"), "{out}");
    assert!(out.contains("Modified"), "{out}");
    assert!(out.contains("Renamed via shell."), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_shell_session() {
    let wal = std::env::temp_dir().join(format!("xomatiq-shell-wal-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let wal_str = wal.display().to_string();
    run_script("gen 10\nquit\n", &[&wal_str]);
    // Second session recovers the warehouse.
    let out = run_script("stats\nquit\n", &[&wal_str]);
    assert!(out.contains("hlx_enzyme.DEFAULT: 10 documents"), "{out}");
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn errors_do_not_crash_the_shell() {
    let out = run_script(
        r#"bogus command
load x unknown_kind /nope
dtd missing_collection
FOR garbage;
quit
"#,
        &[],
    );
    assert!(out.contains("unknown command"), "{out}");
    assert!(out.contains("unknown source kind"), "{out}");
    assert!(out.contains("unknown collection"), "{out}");
    assert!(out.contains("query failed"), "{out}");
}
