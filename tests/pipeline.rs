//! Cross-crate pipeline scenarios against the public API: durability,
//! concurrent query/update, both shredding strategies end-to-end, and the
//! full flat → XML → tuples → query → XML loop.

use std::sync::Arc;

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::{ChangeKind, ShreddingStrategy, SourceKind, Xomatiq};
use xomatiq_datahounds::source::LoadOptions;

fn wal(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xomatiq-pipeline-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{name}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn durable_warehouse_survives_restart_with_queries_intact() {
    let path = wal("restart");
    let corpus = Corpus::generate(&CorpusSpec::sized(25));
    {
        let xq = Xomatiq::open(&path).unwrap();
        xq.load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
        )
        .unwrap();
    }
    let xq = Xomatiq::open(&path).unwrap();
    assert_eq!(xq.collections(), vec!["hlx_enzyme.DEFAULT".to_string()]);
    let target = &corpus.enzymes[7];
    let outcome = xq
        .query(&format!(
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE $a//enzyme_id = "{}"
               RETURN $a//enzyme_description"#,
            target.id
        ))
        .unwrap();
    assert_eq!(outcome.rows[0][0].to_string(), target.descriptions[0]);
    // Reconstruction also works post-recovery.
    let doc = xq.reconstruct("hlx_enzyme.DEFAULT", &target.id).unwrap();
    assert!(xomatiq_xml::to_string(&doc).contains(&target.id));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn updates_survive_restart() {
    let path = wal("update-restart");
    let corpus = Corpus::generate(&CorpusSpec::sized(15));
    {
        let xq = Xomatiq::open(&path).unwrap();
        xq.load_source("c", SourceKind::Enzyme, &corpus.enzyme_flat())
            .unwrap();
        let mut v2 = corpus.enzymes.clone();
        v2[3].descriptions = vec!["Updated description.".into()];
        let flat: String = v2.iter().map(|e| e.to_flat()).collect();
        let events = xq.update_source("c", &flat).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ChangeKind::Modified);
    }
    let xq = Xomatiq::open(&path).unwrap();
    let outcome = xq
        .query(&format!(
            r#"FOR $a IN document("c")/hlx_enzyme
               WHERE $a//enzyme_id = "{}"
               RETURN $a//enzyme_description"#,
            corpus.enzymes[3].id
        ))
        .unwrap();
    assert_eq!(outcome.rows[0][0].to_string(), "Updated description.");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn concurrent_queries_during_updates() {
    let corpus = Corpus::generate(&CorpusSpec::sized(30));
    let xq = Arc::new(Xomatiq::in_memory());
    xq.load_source("c", SourceKind::Enzyme, &corpus.enzyme_flat())
        .unwrap();

    let stable_id = corpus.enzymes[0].id.clone();
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let xq = Arc::clone(&xq);
            let id = stable_id.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let outcome = xq
                        .query(&format!(
                            r#"FOR $a IN document("c")/hlx_enzyme
                               WHERE $a//enzyme_id = "{id}"
                               RETURN $a//enzyme_id"#
                        ))
                        .unwrap();
                    // Entry 0 is never modified by the writer below.
                    assert_eq!(outcome.rows.len(), 1);
                }
            })
        })
        .collect();
    let writer = {
        let xq = Arc::clone(&xq);
        let enzymes = corpus.enzymes.clone();
        std::thread::spawn(move || {
            for round in 0..5 {
                let mut v = enzymes.clone();
                v[5].descriptions = vec![format!("Round {round}.")];
                let flat: String = v.iter().map(|e| e.to_flat()).collect();
                xq.update_source("c", &flat).unwrap();
            }
        })
    };
    for h in readers {
        h.join().unwrap();
    }
    writer.join().unwrap();
    // Final state reflects the last update round.
    let outcome = xq
        .query(&format!(
            r#"FOR $a IN document("c")/hlx_enzyme
               WHERE $a//enzyme_id = "{}"
               RETURN $a//enzyme_description"#,
            corpus.enzymes[5].id
        ))
        .unwrap();
    assert_eq!(outcome.rows[0][0].to_string(), "Round 4.");
}

#[test]
fn both_strategies_full_loop() {
    let corpus = Corpus::generate(&CorpusSpec::sized(20));
    for strategy in [ShreddingStrategy::Edge, ShreddingStrategy::Interval] {
        let xq = Xomatiq::in_memory();
        xq.load_source_with(
            "c",
            SourceKind::Embl,
            &corpus.embl_flat(),
            LoadOptions {
                strategy,
                ..LoadOptions::default()
            },
        )
        .unwrap();
        // Query + reconstruct every document: the full loop.
        for entry in &corpus.embl {
            let outcome = xq
                .query(&format!(
                    r#"FOR $a IN document("c")/hlx_n_sequence
                       WHERE $a//embl_accession_number = "{}"
                       RETURN $a//embl_accession_number"#,
                    entry.accession
                ))
                .unwrap();
            assert_eq!(outcome.rows.len(), 1, "{strategy:?} {}", entry.accession);
            let doc = xq.reconstruct("c", &entry.accession).unwrap();
            let expected = xomatiq_datahounds::transform::embl_to_xml(entry).unwrap();
            assert!(
                expected.structurally_equal(&doc),
                "{strategy:?} {}",
                entry.accession
            );
        }
    }
}

#[test]
fn statistics_reflect_the_warehouse() {
    let corpus = Corpus::generate(&CorpusSpec::sized(12));
    let xq = Xomatiq::in_memory();
    xq.load_source("e", SourceKind::Enzyme, &corpus.enzyme_flat())
        .unwrap();
    xq.load_source("s", SourceKind::SwissProt, &corpus.swissprot_flat())
        .unwrap();
    let stats = xq.statistics().unwrap();
    assert_eq!(stats.len(), 2);
    for (name, docs, nodes) in stats {
        assert_eq!(docs, 12, "{name}");
        assert!(nodes > docs, "{name}");
    }
}

#[test]
fn load_without_indexes_still_answers_correctly() {
    let corpus = Corpus::generate(&CorpusSpec::sized(15));
    let indexed = Xomatiq::in_memory();
    indexed
        .load_source("c", SourceKind::Enzyme, &corpus.enzyme_flat())
        .unwrap();
    let bare = Xomatiq::in_memory();
    bare.load_source_with(
        "c",
        SourceKind::Enzyme,
        &corpus.enzyme_flat(),
        LoadOptions {
            with_indexes: false,
            ..LoadOptions::default()
        },
    )
    .unwrap();
    let q = r#"FOR $a IN document("c")/hlx_enzyme
               WHERE contains($a//db_entry, "Copper")
               RETURN $a//enzyme_id"#;
    let a = indexed.query(q).unwrap();
    let b = bare.query(q).unwrap();
    assert_eq!(a.rows, b.rows);
    // Only the indexed warehouse's plan uses an index.
    assert!(indexed.db().plan(&a.sql).unwrap().plan.uses_index());
    assert!(!bare.db().plan(&b.sql).unwrap().plan.uses_index());
}

#[test]
fn compaction_through_the_facade() {
    let path = wal("facade-compact");
    let corpus = Corpus::generate(&CorpusSpec::sized(10));
    {
        let xq = Xomatiq::open(&path).unwrap();
        xq.load_source("c", SourceKind::Enzyme, &corpus.enzyme_flat())
            .unwrap();
        // Churn to grow the log, then compact.
        for round in 0..10 {
            let mut v = corpus.enzymes.clone();
            v[0].descriptions = vec![format!("Round {round}.")];
            let flat: String = v.iter().map(|e| e.to_flat()).collect();
            xq.update_source("c", &flat).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        xq.db().compact().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "{before} -> {after}");
    }
    // Everything still works after compaction + restart: queries,
    // reconstruction, further updates.
    let xq = Xomatiq::open(&path).unwrap();
    assert_eq!(xq.doc_count("c").unwrap(), 10);
    let outcome = xq
        .query(&format!(
            r#"FOR $a IN document("c")/hlx_enzyme
               WHERE $a//enzyme_id = "{}"
               RETURN $a//enzyme_description"#,
            corpus.enzymes[0].id
        ))
        .unwrap();
    assert_eq!(outcome.rows[0][0].to_string(), "Round 9.");
    let doc = xq.reconstruct("c", &corpus.enzymes[3].id).unwrap();
    assert!(xomatiq_xml::to_string(&doc).contains(&corpus.enzymes[3].id));
    let mut v = corpus.enzymes.clone();
    v[5].descriptions = vec!["Post-compaction change.".into()];
    let flat: String = v.iter().map(|e| e.to_flat()).collect();
    // The first update after compaction re-applies round-9's text too
    // (the snapshot comparison is against the original corpus flat).
    let events = xq.update_source("c", &flat).unwrap();
    assert!(events.iter().any(|e| e.entry_key == corpus.enzymes[5].id));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn grand_tour_of_the_public_api() {
    // One scenario touching every public surface of the facade.
    let corpus = Corpus::generate(&CorpusSpec::sized(20));
    let xq = Xomatiq::in_memory();

    // Load + collections + statistics + dtd.
    xq.load_source(
        "hlx_enzyme.DEFAULT",
        SourceKind::Enzyme,
        &corpus.enzyme_flat(),
    )
    .unwrap();
    assert_eq!(xq.collections().len(), 1);
    assert_eq!(xq.statistics().unwrap()[0].1, 20);
    assert_eq!(
        xq.dtd("hlx_enzyme.DEFAULT").unwrap().root(),
        Some("hlx_enzyme")
    );

    // Builder → run_query → render + tagger.
    let query = xomatiq_core::QueryBuilder::new()
        .for_var("a", "hlx_enzyme.DEFAULT", "/hlx_enzyme")
        .unwrap()
        .where_contains("$a//db_entry", "Copper")
        .unwrap()
        .return_path("$a//enzyme_id")
        .unwrap()
        .build()
        .unwrap();
    let outcome = xq.run_query(&query).unwrap();
    let table = xomatiq_core::render::render_table(&outcome);
    assert!(table.contains("enzyme_id"));
    let tagged = xomatiq_core::tagger::tag_results(&outcome).unwrap();
    assert!(xomatiq_xml::to_string(&tagged).contains("results"));

    // query / query_xml / explain_query text paths.
    let text = query.to_string();
    assert_eq!(xq.query(&text).unwrap().rows, outcome.rows);
    xq.query_xml(&text).unwrap();
    assert!(xq.explain_query(&text).unwrap().contains("-- Plan"));

    // Triggers + update + reconstruct.
    let rx = xq.subscribe();
    let mut v2 = corpus.enzymes.clone();
    v2[0].cofactors = vec!["Molybdenum".into()];
    let flat: String = v2.iter().map(|e| e.to_flat()).collect();
    assert_eq!(
        xq.update_source("hlx_enzyme.DEFAULT", &flat).unwrap().len(),
        1
    );
    assert_eq!(rx.try_recv().unwrap().kind, ChangeKind::Modified);
    let doc = xq.reconstruct("hlx_enzyme.DEFAULT", &v2[0].id).unwrap();
    assert!(xomatiq_xml::to_string(&doc).contains("Molybdenum"));
}
