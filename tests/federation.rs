//! Federated-query tests: the paper's "one or more distributed or local
//! warehouses" (§3). Ground truth for every federated result is the same
//! query run against a single warehouse holding all collections.

use std::collections::BTreeSet;
use std::sync::Arc;

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::{Federation, SourceKind, Xomatiq};

const FIG11: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description
"#;

const FIG8: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_p_sequence
WHERE contains($a, "cdc6", any)
  AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number
"#;

struct Setup {
    federation: Federation,
    single: Xomatiq,
    corpus: Corpus,
}

/// Three collections spread over three warehouses, plus one warehouse
/// holding everything (the oracle).
fn setup() -> Setup {
    let corpus = Corpus::generate(&CorpusSpec {
        enzymes: 50,
        embl: 50,
        swissprot: 50,
        keyword_rate: 0.2,
        link_rate: 0.4,
        ketone_rate: 0.2,
        seed: 13,
    });
    let mut federation = Federation::new();
    let node_a = Arc::new(Xomatiq::in_memory());
    node_a
        .load_source("hlx_embl.inv", SourceKind::Embl, &corpus.embl_flat())
        .unwrap();
    federation.add_warehouse("node-a", node_a);
    let node_b = Arc::new(Xomatiq::in_memory());
    node_b
        .load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
        )
        .unwrap();
    federation.add_warehouse("node-b", node_b);
    let node_c = Arc::new(Xomatiq::in_memory());
    node_c
        .load_source(
            "hlx_sprot.all",
            SourceKind::SwissProt,
            &corpus.swissprot_flat(),
        )
        .unwrap();
    federation.add_warehouse("node-c", node_c);

    let single = Xomatiq::in_memory();
    single
        .load_source("hlx_embl.inv", SourceKind::Embl, &corpus.embl_flat())
        .unwrap();
    single
        .load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
        )
        .unwrap();
    single
        .load_source(
            "hlx_sprot.all",
            SourceKind::SwissProt,
            &corpus.swissprot_flat(),
        )
        .unwrap();
    Setup {
        federation,
        single,
        corpus,
    }
}

fn rows_of(outcome: &xomatiq_core::QueryOutcome) -> BTreeSet<Vec<String>> {
    outcome
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect()
}

#[test]
fn single_warehouse_queries_delegate() {
    let s = setup();
    let q = r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE contains($a//catalytic_activity, "ketone")
               RETURN $a//enzyme_id"#;
    let fed = s.federation.query(q).unwrap();
    let oracle = s.single.query(q).unwrap();
    assert_eq!(rows_of(&fed), rows_of(&oracle));
    assert!(!fed.rows.is_empty());
}

#[test]
fn cross_warehouse_join_matches_single_warehouse() {
    let s = setup();
    let fed = s.federation.query(FIG11).unwrap();
    let oracle = s.single.query(FIG11).unwrap();
    assert_eq!(fed.columns, oracle.columns);
    assert_eq!(rows_of(&fed), rows_of(&oracle));
    assert_eq!(fed.rows.len(), s.corpus.planted_ec_links.len());
}

#[test]
fn cross_warehouse_keyword_search_matches_single_warehouse() {
    let s = setup();
    let fed = s.federation.query(FIG8).unwrap();
    let oracle = s.single.query(FIG8).unwrap();
    assert_eq!(rows_of(&fed), rows_of(&oracle));
    assert_eq!(
        fed.rows.len(),
        s.corpus.cdc6_embl.len() * s.corpus.cdc6_swissprot.len()
    );
}

#[test]
fn three_warehouse_query() {
    let s = setup();
    // Correlate all three databases: enzymes linked from EMBL entries
    // whose Swiss-Prot reference appears in the federation's third node.
    let q = r#"
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
            $c IN document("hlx_sprot.all")/hlx_p_sequence/db_entry
        WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
          AND $b//reference/@swissprot_accession_number = $c/sprot_accession_number
        RETURN $a//embl_accession_number, $b/enzyme_id, $c//entry_name
    "#;
    let fed = s.federation.query(q).unwrap();
    let oracle = s.single.query(q).unwrap();
    assert_eq!(rows_of(&fed), rows_of(&oracle));
    assert!(
        !fed.rows.is_empty(),
        "corpus should produce three-way links"
    );
}

#[test]
fn non_equality_cross_condition() {
    let s = setup();
    // A numeric inequality spanning warehouses (resolved by the residual
    // filter path): EMBL sequences longer than the Swiss-Prot sequence of
    // a cdc6 protein.
    let q = r#"
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
            $b IN document("hlx_sprot.all")/hlx_p_sequence
        WHERE contains($b, "cdc6", any)
          AND $a//sequence/@length > $b//sequence/@length
        RETURN $a//embl_accession_number, $b//sprot_accession_number
    "#;
    let fed = s.federation.query(q).unwrap();
    let oracle = s.single.query(q).unwrap();
    assert_eq!(rows_of(&fed), rows_of(&oracle));
}

#[test]
fn unsupported_cross_warehouse_constructs() {
    let s = setup();
    // OR spanning warehouses.
    let q = r#"
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
            $b IN document("hlx_sprot.all")/hlx_p_sequence
        WHERE contains($a, "cdc6", any) OR contains($b, "cdc6", any)
        RETURN $a//embl_accession_number
    "#;
    assert!(s.federation.query(q).is_err());
    // Unknown collection anywhere in the federation.
    assert!(s
        .federation
        .query(r#"FOR $x IN document("nowhere")/r RETURN $x//y"#)
        .is_err());
}

#[test]
fn members_listing() {
    let s = setup();
    assert_eq!(s.federation.members(), vec!["node-a", "node-b", "node-c"]);
}

#[test]
fn dead_member_degrades_to_surviving_rows() {
    let mut s = setup();
    // Kill the enzyme node (node-b) mid-query: the federation returns the
    // surviving EMBL node's rows and names the corpse in the report.
    s.federation.set_fault_hook(Some(Arc::new(|member: &str| {
        if member == "node-b" {
            Some(xomatiq_core::MemberFault::Fail("killed mid-query".into()))
        } else {
            None
        }
    })));
    let fed = s.federation.query_with_report(FIG11).unwrap();
    assert!(fed.degraded.is_degraded());
    assert_eq!(fed.degraded.failed.len(), 1);
    assert_eq!(fed.degraded.failed[0].member, "node-b");
    assert!(fed.degraded.failed[0].reason.contains("killed mid-query"));
    // Both RETURN columns live on node-a; with the cross-warehouse join
    // condition unevaluable, every EMBL entry comes back.
    assert!(fed.outcome.rows.len() >= s.corpus.planted_ec_links.len());
    assert!(!fed.outcome.rows.is_empty());
    for row in &fed.outcome.rows {
        assert!(!row[0].is_null(), "surviving member's columns are real");
    }

    // A clean run over the same federation reports no degradation.
    s.federation.set_fault_hook(None);
    let fed = s.federation.query_with_report(FIG11).unwrap();
    assert!(!fed.degraded.is_degraded());
    let oracle = s.single.query(FIG11).unwrap();
    assert_eq!(rows_of(&fed.outcome), rows_of(&oracle));
}

#[test]
fn strict_mode_refuses_degraded_results() {
    let mut s = setup();
    s.federation.set_strict(true);
    s.federation.set_fault_hook(Some(Arc::new(|member: &str| {
        if member == "node-b" {
            Some(xomatiq_core::MemberFault::Fail("killed mid-query".into()))
        } else {
            None
        }
    })));
    let err = s.federation.query(FIG11).unwrap_err();
    match err {
        xomatiq_core::XomatiqError::Federation(msg) => {
            assert!(msg.contains("strict mode"), "{msg}");
            assert!(msg.contains("node-b"), "{msg}");
        }
        other => panic!("expected a federation error, got {other:?}"),
    }
}

#[test]
fn hung_member_is_cut_off_at_the_deadline() {
    let mut s = setup();
    s.federation
        .set_member_deadline(Some(std::time::Duration::from_millis(50)));
    s.federation.set_fault_hook(Some(Arc::new(|member: &str| {
        if member == "node-c" {
            Some(xomatiq_core::MemberFault::Hang(
                std::time::Duration::from_secs(5),
            ))
        } else {
            None
        }
    })));
    let start = std::time::Instant::now();
    let fed = s.federation.query_with_report(FIG8).unwrap();
    // The federation did not wait out the 5s hang.
    assert!(start.elapsed() < std::time::Duration::from_secs(4));
    assert_eq!(fed.degraded.failed.len(), 1);
    assert_eq!(fed.degraded.failed[0].member, "node-c");
    assert!(
        fed.degraded.failed[0].reason.contains("deadline"),
        "{}",
        fed.degraded.failed[0].reason
    );
    // Surviving node-a rows: all cdc6-marked EMBL entries, with the dead
    // member's column projected as NULL.
    assert_eq!(fed.outcome.rows.len(), s.corpus.cdc6_embl.len());
    for row in &fed.outcome.rows {
        assert!(row[0].is_null(), "dead member's column is NULL");
        assert!(!row[1].is_null());
    }
}
