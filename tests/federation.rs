//! Federated-query tests: the paper's "one or more distributed or local
//! warehouses" (§3). Ground truth for every federated result is the same
//! query run against a single warehouse holding all collections.

use std::collections::BTreeSet;
use std::sync::Arc;

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::{Federation, SourceKind, Xomatiq};

const FIG11: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description
"#;

const FIG8: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_p_sequence
WHERE contains($a, "cdc6", any)
  AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number
"#;

struct Setup {
    federation: Federation,
    single: Xomatiq,
    corpus: Corpus,
}

/// Three collections spread over three warehouses, plus one warehouse
/// holding everything (the oracle).
fn setup() -> Setup {
    let corpus = Corpus::generate(&CorpusSpec {
        enzymes: 50,
        embl: 50,
        swissprot: 50,
        keyword_rate: 0.2,
        link_rate: 0.4,
        ketone_rate: 0.2,
        seed: 13,
    });
    let mut federation = Federation::new();
    let node_a = Arc::new(Xomatiq::in_memory());
    node_a
        .load_source("hlx_embl.inv", SourceKind::Embl, &corpus.embl_flat())
        .unwrap();
    federation.add_warehouse("node-a", node_a);
    let node_b = Arc::new(Xomatiq::in_memory());
    node_b
        .load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
        )
        .unwrap();
    federation.add_warehouse("node-b", node_b);
    let node_c = Arc::new(Xomatiq::in_memory());
    node_c
        .load_source(
            "hlx_sprot.all",
            SourceKind::SwissProt,
            &corpus.swissprot_flat(),
        )
        .unwrap();
    federation.add_warehouse("node-c", node_c);

    let single = Xomatiq::in_memory();
    single
        .load_source("hlx_embl.inv", SourceKind::Embl, &corpus.embl_flat())
        .unwrap();
    single
        .load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
        )
        .unwrap();
    single
        .load_source(
            "hlx_sprot.all",
            SourceKind::SwissProt,
            &corpus.swissprot_flat(),
        )
        .unwrap();
    Setup {
        federation,
        single,
        corpus,
    }
}

fn rows_of(outcome: &xomatiq_core::QueryOutcome) -> BTreeSet<Vec<String>> {
    outcome
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect()
}

#[test]
fn single_warehouse_queries_delegate() {
    let s = setup();
    let q = r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE contains($a//catalytic_activity, "ketone")
               RETURN $a//enzyme_id"#;
    let fed = s.federation.query(q).unwrap();
    let oracle = s.single.query(q).unwrap();
    assert_eq!(rows_of(&fed), rows_of(&oracle));
    assert!(!fed.rows.is_empty());
}

#[test]
fn cross_warehouse_join_matches_single_warehouse() {
    let s = setup();
    let fed = s.federation.query(FIG11).unwrap();
    let oracle = s.single.query(FIG11).unwrap();
    assert_eq!(fed.columns, oracle.columns);
    assert_eq!(rows_of(&fed), rows_of(&oracle));
    assert_eq!(fed.rows.len(), s.corpus.planted_ec_links.len());
}

#[test]
fn cross_warehouse_keyword_search_matches_single_warehouse() {
    let s = setup();
    let fed = s.federation.query(FIG8).unwrap();
    let oracle = s.single.query(FIG8).unwrap();
    assert_eq!(rows_of(&fed), rows_of(&oracle));
    assert_eq!(
        fed.rows.len(),
        s.corpus.cdc6_embl.len() * s.corpus.cdc6_swissprot.len()
    );
}

#[test]
fn three_warehouse_query() {
    let s = setup();
    // Correlate all three databases: enzymes linked from EMBL entries
    // whose Swiss-Prot reference appears in the federation's third node.
    let q = r#"
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
            $c IN document("hlx_sprot.all")/hlx_p_sequence/db_entry
        WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
          AND $b//reference/@swissprot_accession_number = $c/sprot_accession_number
        RETURN $a//embl_accession_number, $b/enzyme_id, $c//entry_name
    "#;
    let fed = s.federation.query(q).unwrap();
    let oracle = s.single.query(q).unwrap();
    assert_eq!(rows_of(&fed), rows_of(&oracle));
    assert!(
        !fed.rows.is_empty(),
        "corpus should produce three-way links"
    );
}

#[test]
fn non_equality_cross_condition() {
    let s = setup();
    // A numeric inequality spanning warehouses (resolved by the residual
    // filter path): EMBL sequences longer than the Swiss-Prot sequence of
    // a cdc6 protein.
    let q = r#"
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
            $b IN document("hlx_sprot.all")/hlx_p_sequence
        WHERE contains($b, "cdc6", any)
          AND $a//sequence/@length > $b//sequence/@length
        RETURN $a//embl_accession_number, $b//sprot_accession_number
    "#;
    let fed = s.federation.query(q).unwrap();
    let oracle = s.single.query(q).unwrap();
    assert_eq!(rows_of(&fed), rows_of(&oracle));
}

#[test]
fn unsupported_cross_warehouse_constructs() {
    let s = setup();
    // OR spanning warehouses.
    let q = r#"
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
            $b IN document("hlx_sprot.all")/hlx_p_sequence
        WHERE contains($a, "cdc6", any) OR contains($b, "cdc6", any)
        RETURN $a//embl_accession_number
    "#;
    assert!(s.federation.query(q).is_err());
    // Unknown collection anywhere in the federation.
    assert!(s
        .federation
        .query(r#"FOR $x IN document("nowhere")/r RETURN $x//y"#)
        .is_err());
}

#[test]
fn members_listing() {
    let s = setup();
    assert_eq!(s.federation.members(), vec!["node-a", "node-b", "node-c"]);
}
