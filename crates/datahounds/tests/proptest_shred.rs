//! Property test: ARBITRARY documents (not just pipeline-shaped ones)
//! survive shred → reconstruct under both strategies — the order-as-data-
//! value design of §2.2 is lossless.

use proptest::prelude::*;
use xomatiq_datahounds::shred::{
    create_collection_tables, reconstruct_document, shred_document, ShreddingStrategy,
};
use xomatiq_relstore::Database;
use xomatiq_xml::Document;

#[derive(Debug, Clone)]
enum BuildOp {
    Open(usize),
    Close,
    Text(usize),
    Attr(usize, usize),
    Comment(usize),
    Pi(usize),
}

const NAMES: &[&str] = &["db_entry", "item", "seq", "note", "ref"];
const TEXTS: &[&str] = &[
    "1.14.17.3",
    "Copper & zinc",
    "  padded  ",
    "42",
    "3.5",
    "quote'apos",
    "acgtacgt",
];

fn build(ops: &[BuildOp]) -> Document {
    let (mut doc, root) = Document::with_root("hlx_root").unwrap();
    let mut stack = vec![root];
    for op in ops {
        let cur = *stack.last().unwrap();
        match op {
            BuildOp::Open(n) => {
                let id = doc.append_element(cur, NAMES[n % NAMES.len()]).unwrap();
                stack.push(id);
            }
            BuildOp::Close => {
                if stack.len() > 1 {
                    stack.pop();
                }
            }
            BuildOp::Text(t) => {
                doc.append_text(cur, TEXTS[t % TEXTS.len()]);
            }
            BuildOp::Attr(n, v) => {
                doc.set_attribute(cur, NAMES[n % NAMES.len()], TEXTS[v % TEXTS.len()])
                    .unwrap();
            }
            BuildOp::Comment(t) => {
                doc.append_comment(cur, TEXTS[t % TEXTS.len()]);
            }
            BuildOp::Pi(t) => {
                doc.append_pi(cur, "app", TEXTS[t % TEXTS.len()]).unwrap();
            }
        }
    }
    doc
}

fn op_strategy() -> impl Strategy<Value = BuildOp> {
    prop_oneof![
        3 => (0..NAMES.len()).prop_map(BuildOp::Open),
        2 => Just(BuildOp::Close),
        2 => (0..TEXTS.len()).prop_map(BuildOp::Text),
        1 => ((0..NAMES.len()), (0..TEXTS.len())).prop_map(|(n, v)| BuildOp::Attr(n, v)),
        1 => (0..TEXTS.len()).prop_map(BuildOp::Comment),
        1 => (0..TEXTS.len()).prop_map(BuildOp::Pi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shred_reconstruct_is_identity(
        ops in prop::collection::vec(op_strategy(), 0..80),
    ) {
        let doc = build(&ops);
        for strategy in [ShreddingStrategy::Edge, ShreddingStrategy::Interval] {
            let db = Database::in_memory();
            create_collection_tables(&db, "c").unwrap();
            shred_document(&db, "c", strategy, 7, "key", &doc).unwrap();
            let rebuilt = reconstruct_document(&db, "c", strategy, 7).unwrap();
            prop_assert!(
                doc.structurally_equal(&rebuilt),
                "{strategy:?} diverged:\noriginal: {}\nrebuilt:  {}",
                xomatiq_xml::to_string(&doc),
                xomatiq_xml::to_string(&rebuilt),
            );
        }
    }

    #[test]
    fn multiple_documents_do_not_interfere(
        ops_a in prop::collection::vec(op_strategy(), 0..40),
        ops_b in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let doc_a = build(&ops_a);
        let doc_b = build(&ops_b);
        for strategy in [ShreddingStrategy::Edge, ShreddingStrategy::Interval] {
            let db = Database::in_memory();
            create_collection_tables(&db, "c").unwrap();
            shred_document(&db, "c", strategy, 0, "a", &doc_a).unwrap();
            shred_document(&db, "c", strategy, 1, "b", &doc_b).unwrap();
            let ra = reconstruct_document(&db, "c", strategy, 0).unwrap();
            let rb = reconstruct_document(&db, "c", strategy, 1).unwrap();
            prop_assert!(doc_a.structurally_equal(&ra), "{strategy:?} doc 0");
            prop_assert!(doc_b.structurally_equal(&rb), "{strategy:?} doc 1");
        }
    }
}
