//! The Data Hounds orchestrator.
//!
//! [`DataHounds`] drives the full §2 pipeline for a registered source:
//! flat text (the simulated FTP download) → typed entries → XML documents
//! → DTD validation → shredded tuples → indexes, and subsequently the
//! incremental update path with trigger delivery. Collection metadata
//! (strategy, entry keys, source text for diffing) lives in warehouse
//! tables so it survives a restart along with the data.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use xomatiq_bioflat::line::{split_entries, split_line};
use xomatiq_relstore::Database;
use xomatiq_xml::dtd::{validate, Dtd};
use xomatiq_xml::Document;

use crate::error::{HoundError, HoundResult};
use crate::metrics;
use crate::retry::{RetryPolicy, Sleeper};
use crate::shred::{
    collection_prefix, create_collection_indexes, create_collection_tables, delete_statements,
    reconstruct_document, shred_statements, sql_quote, ShredStats, ShreddingStrategy,
};
use crate::transform::{
    embl_dtd, embl_to_xml, enzyme_dtd, enzyme_to_xml, swissprot_dtd, swissprot_to_xml,
};
use crate::update::{diff_snapshots, ChangeEvent, ChangeKind, TriggerHub};

/// Which of the supported source databases a collection holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// The ENZYME nomenclature database.
    Enzyme,
    /// The EMBL nucleotide database.
    Embl,
    /// The Swiss-Prot protein knowledge base.
    SwissProt,
    /// A pre-existing XML databank (INTERPRO-style, §2.1) or any other
    /// source already converted to XML — including wrapped relational
    /// tables (Figure 1's RDBMS input). Loaded via
    /// [`DataHounds::load_xml_source`] with a caller-supplied DTD.
    Xml,
}

impl SourceKind {
    /// Stable name used in the warehouse metadata table.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::Enzyme => "enzyme",
            SourceKind::Embl => "embl",
            SourceKind::SwissProt => "swissprot",
            SourceKind::Xml => "xml",
        }
    }

    /// Parses a stored kind name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "enzyme" => Some(SourceKind::Enzyme),
            "embl" => Some(SourceKind::Embl),
            "swissprot" => Some(SourceKind::SwissProt),
            "xml" => Some(SourceKind::Xml),
            _ => None,
        }
    }

    /// The built-in DTD of a flat source kind; XML sources carry their own.
    pub fn builtin_dtd(self) -> Option<Dtd> {
        match self {
            SourceKind::Enzyme => Some(enzyme_dtd()),
            SourceKind::Embl => Some(embl_dtd()),
            SourceKind::SwissProt => Some(swissprot_dtd()),
            SourceKind::Xml => None,
        }
    }
}

/// The stable text of a flat source kind's DTD (for metadata storage).
fn builtin_dtd_text(kind: SourceKind) -> &'static str {
    match kind {
        SourceKind::Enzyme => crate::transform::enzyme::ENZYME_DTD_TEXT,
        SourceKind::Embl => crate::transform::embl::EMBL_DTD_TEXT,
        SourceKind::SwissProt => crate::transform::swissprot::SWISSPROT_DTD_TEXT,
        SourceKind::Xml => "",
    }
}

/// One parsed entry of a flat source, with uniform access.
enum ParsedFlatEntry {
    Enzyme(xomatiq_bioflat::EnzymeEntry),
    Embl(xomatiq_bioflat::EmblEntry),
    SwissProt(xomatiq_bioflat::SwissProtEntry),
}

impl ParsedFlatEntry {
    fn parse(kind: SourceKind, lines: &[&str]) -> HoundResult<ParsedFlatEntry> {
        Ok(match kind {
            SourceKind::Enzyme => {
                ParsedFlatEntry::Enzyme(xomatiq_bioflat::EnzymeEntry::parse_lines(lines)?)
            }
            SourceKind::Embl => {
                ParsedFlatEntry::Embl(xomatiq_bioflat::EmblEntry::parse_lines(lines)?)
            }
            SourceKind::SwissProt => {
                ParsedFlatEntry::SwissProt(xomatiq_bioflat::SwissProtEntry::parse_lines(lines)?)
            }
            SourceKind::Xml => {
                return Err(HoundError::Pipeline(
                    "XML sources have no flat form to parse".into(),
                ))
            }
        })
    }

    fn key(&self) -> String {
        match self {
            ParsedFlatEntry::Enzyme(e) => e.id.clone(),
            ParsedFlatEntry::Embl(e) => e.accession.clone(),
            ParsedFlatEntry::SwissProt(e) => e.accession.clone(),
        }
    }

    fn to_xml(&self) -> HoundResult<Document> {
        match self {
            ParsedFlatEntry::Enzyme(e) => enzyme_to_xml(e),
            ParsedFlatEntry::Embl(e) => embl_to_xml(e),
            ParsedFlatEntry::SwissProt(e) => swissprot_to_xml(e),
        }
    }

    fn to_flat(&self) -> String {
        match self {
            ParsedFlatEntry::Enzyme(e) => e.to_flat(),
            ParsedFlatEntry::Embl(e) => e.to_flat(),
            ParsedFlatEntry::SwissProt(e) => e.to_flat(),
        }
    }
}

/// A source entry set aside during a harvest instead of aborting it: the
/// dead-letter record kept in the `hlx_quarantine` warehouse table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Best-effort stable key of the entry (`ID`-line token, or a
    /// positional `entry-N` placeholder when even that is unreadable).
    pub entry_key: String,
    /// Why the entry was rejected (parse, transform or validation error).
    pub reason: String,
    /// The raw source text of the entry, for post-mortem repair.
    pub raw: String,
}

/// Best-effort key extraction from a raw entry chunk: the first token of
/// its `ID` line, else a positional placeholder.
fn guess_entry_key(lines: &[&str], index: usize) -> String {
    for line in lines {
        if let Some(coded) = split_line(line) {
            if coded.code == "ID" {
                if let Some(tok) = coded.data.split_whitespace().next() {
                    return tok.to_string();
                }
            }
        }
    }
    format!("entry-{index}")
}

/// Splits `flat` into entries and parses each independently: good entries
/// become [`PreparedDoc`]s, malformed ones become [`QuarantineRecord`]s so
/// one rotten entry cannot sink a whole harvest.
fn prepare_flat(
    kind: SourceKind,
    flat: &str,
) -> HoundResult<(Vec<PreparedDoc>, Vec<QuarantineRecord>)> {
    if kind == SourceKind::Xml {
        return Err(HoundError::Pipeline(
            "XML sources have no flat form to parse".into(),
        ));
    }
    let mut prepared = Vec::new();
    let mut rejected = Vec::new();
    for (i, chunk) in split_entries(flat).iter().enumerate() {
        let outcome = ParsedFlatEntry::parse(kind, chunk).and_then(|entry| {
            let doc = entry.to_xml()?;
            Ok(PreparedDoc {
                key: entry.key(),
                serialized: entry.to_flat(),
                doc,
            })
        });
        match outcome {
            Ok(doc) => prepared.push(doc),
            Err(e) => rejected.push(QuarantineRecord {
                entry_key: guess_entry_key(chunk, i),
                reason: e.to_string(),
                raw: chunk.join("\n"),
            }),
        }
    }
    Ok((prepared, rejected))
}

/// One document ready for loading: its stable key, its serialized source
/// form (used for update diffing), and the XML document itself.
struct PreparedDoc {
    key: String,
    serialized: String,
    doc: Document,
}

struct CollectionMeta {
    prefix: String,
    kind: SourceKind,
    strategy: ShreddingStrategy,
    next_doc_id: u64,
    dtd: Dtd,
}

/// Options controlling a source load.
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Shredding strategy for the collection.
    pub strategy: ShreddingStrategy,
    /// Whether to create the §3.2 index set (disabled by the ablation
    /// bench to measure the paper's index claim).
    pub with_indexes: bool,
    /// Whether to validate every document against the source DTD before
    /// shredding.
    pub validate: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            strategy: ShreddingStrategy::Interval,
            with_indexes: true,
            validate: true,
        }
    }
}

/// The Data Hounds: warehouse loader, updater and trigger source.
pub struct DataHounds {
    db: Arc<Database>,
    triggers: TriggerHub,
    collections: Mutex<BTreeMap<String, CollectionMeta>>,
}

impl DataHounds {
    /// Creates a Data Hounds instance over `db`, recovering collection
    /// metadata from the warehouse if present.
    pub fn new(db: Arc<Database>) -> HoundResult<DataHounds> {
        if !db.table_names().iter().any(|t| t == "hlx_collections") {
            db.query(
                "CREATE TABLE hlx_collections (name TEXT, prefix TEXT, kind TEXT, \
                 strategy TEXT, dtd TEXT)",
            )
            .run()?;
        }
        if !db.table_names().iter().any(|t| t == "hlx_quarantine") {
            db.query(
                "CREATE TABLE hlx_quarantine (collection TEXT, entry_key TEXT, \
                 reason TEXT, raw TEXT)",
            )
            .run()?;
        }
        let mut collections = BTreeMap::new();
        let rows = db
            .query("SELECT name, prefix, kind, strategy, dtd FROM hlx_collections")
            .run()?
            .rows;
        for row in rows {
            let name: String = row.try_get("name").ok().flatten().unwrap_or_default();
            let prefix: String = row.try_get("prefix").ok().flatten().unwrap_or_default();
            let kind = SourceKind::from_name(
                &row.try_get::<String>("kind")
                    .ok()
                    .flatten()
                    .unwrap_or_default(),
            )
            .ok_or_else(|| HoundError::Pipeline("corrupt collection kind".into()))?;
            let strategy = ShreddingStrategy::from_name(
                &row.try_get::<String>("strategy")
                    .ok()
                    .flatten()
                    .unwrap_or_default(),
            )
            .ok_or_else(|| HoundError::Pipeline("corrupt collection strategy".into()))?;
            let dtd = xomatiq_xml::dtd::parse_dtd(
                &row.try_get::<String>("dtd")
                    .ok()
                    .flatten()
                    .unwrap_or_default(),
            )?;
            let max_doc = db
                .query(&format!("SELECT MAX(doc_id) FROM {prefix}_docs"))
                .run()?
                .rows
                .rows()
                .first()
                .and_then(|r| r[0].as_int())
                .map(|m| m as u64 + 1)
                .unwrap_or(0);
            collections.insert(
                name,
                CollectionMeta {
                    prefix,
                    kind,
                    strategy,
                    next_doc_id: max_doc,
                    dtd,
                },
            );
        }
        Ok(DataHounds {
            db,
            triggers: TriggerHub::new(),
            collections: Mutex::new(collections),
        })
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Subscribes to warehouse change triggers.
    pub fn subscribe(&self) -> crossbeam::channel::Receiver<ChangeEvent> {
        self.triggers.subscribe()
    }

    /// Names of all loaded collections.
    pub fn collections(&self) -> Vec<String> {
        self.collections.lock().keys().cloned().collect()
    }

    /// The table prefix of a collection.
    pub fn prefix(&self, collection: &str) -> HoundResult<String> {
        Ok(self.meta(collection)?.0)
    }

    /// The shredding strategy of a collection.
    pub fn strategy(&self, collection: &str) -> HoundResult<ShreddingStrategy> {
        Ok(self.meta(collection)?.2)
    }

    /// The DTD of a collection (what the XomatiQ GUI's left panel shows).
    pub fn dtd(&self, collection: &str) -> HoundResult<Dtd> {
        let map = self.collections.lock();
        let meta = map
            .get(collection)
            .ok_or_else(|| HoundError::UnknownCollection(collection.to_string()))?;
        Ok(meta.dtd.clone())
    }

    fn meta(&self, collection: &str) -> HoundResult<(String, SourceKind, ShreddingStrategy)> {
        let map = self.collections.lock();
        let meta = map
            .get(collection)
            .ok_or_else(|| HoundError::UnknownCollection(collection.to_string()))?;
        Ok((meta.prefix.clone(), meta.kind, meta.strategy))
    }

    /// Loads a flat-file source end-to-end into collection `name` (e.g.
    /// `hlx_enzyme.DEFAULT`) from its flat text.
    ///
    /// Malformed entries do not abort the harvest: each is recorded in the
    /// `hlx_quarantine` dead-letter table (see [`DataHounds::quarantined`])
    /// and skipped, and the remaining entries load normally.
    pub fn load_source(
        &self,
        name: &str,
        kind: SourceKind,
        flat: &str,
        options: LoadOptions,
    ) -> HoundResult<ShredStats> {
        if kind == SourceKind::Xml {
            return Err(HoundError::Pipeline(
                "XML sources are loaded with load_xml_source".into(),
            ));
        }
        let dtd = kind
            .builtin_dtd()
            .ok_or_else(|| HoundError::Pipeline("flat kind without a built-in DTD".into()))?;
        let (prepared, rejected) = prepare_flat(kind, flat)?;
        self.load_prepared(
            name,
            kind,
            builtin_dtd_text(kind),
            dtd,
            prepared,
            rejected,
            options,
        )
    }

    /// Loads a pre-existing XML source — an XML databank such as INTERPRO
    /// (§2.1), or rows of a wrapped relational table (Figure 1) — into
    /// collection `name`. `dtd_text` is the source's DTD; every document
    /// is validated against it when `options.validate` is set.
    pub fn load_xml_source(
        &self,
        name: &str,
        dtd_text: &str,
        docs: Vec<(String, Document)>,
        options: LoadOptions,
    ) -> HoundResult<ShredStats> {
        let dtd = xomatiq_xml::dtd::parse_dtd(dtd_text)?;
        let prepared = docs
            .into_iter()
            .map(|(key, doc)| PreparedDoc {
                serialized: xomatiq_xml::to_string(&doc),
                key,
                doc,
            })
            .collect();
        self.load_prepared(
            name,
            SourceKind::Xml,
            dtd_text,
            dtd,
            prepared,
            Vec::new(),
            options,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn load_prepared(
        &self,
        name: &str,
        kind: SourceKind,
        dtd_text: &str,
        dtd: Dtd,
        prepared: Vec<PreparedDoc>,
        mut rejected: Vec<QuarantineRecord>,
        options: LoadOptions,
    ) -> HoundResult<ShredStats> {
        {
            let map = self.collections.lock();
            if map.contains_key(name) {
                return Err(HoundError::Pipeline(format!(
                    "collection {name:?} is already loaded; use update_source"
                )));
            }
        }
        let prefix = collection_prefix(name);
        // A crash between the per-entry commits and the final registration
        // commit leaves this collection's tables behind with no metadata
        // row; the leftovers would make the re-load fail on CREATE TABLE.
        self.sweep_orphan_tables(&prefix)?;
        create_collection_tables(&self.db, &prefix)?;
        self.db
            .query(&format!(
                "CREATE TABLE {prefix}_src (doc_id INT, entry_key TEXT, flat TEXT)"
            ))
            .run()?;

        let mut stats = ShredStats::default();
        let mut doc_id = 0u64;
        for p in &prepared {
            if options.validate {
                if let Err(e) = validate(&p.doc, &dtd) {
                    // Harvested flat entries are quarantined; programmatic
                    // XML loads keep the strict all-or-nothing contract.
                    if kind == SourceKind::Xml {
                        return Err(e.into());
                    }
                    rejected.push(QuarantineRecord {
                        entry_key: p.key.clone(),
                        reason: format!("DTD validation failed: {e}"),
                        raw: p.serialized.clone(),
                    });
                    continue;
                }
            }
            // All tuples of one entry — shredded rows plus its `_src`
            // bookkeeping row — go through a single atomic batch, so a
            // crash mid-harvest can never leave a half-ingested document.
            let (mut statements, entry_stats) =
                shred_statements(&self.db, &prefix, options.strategy, doc_id, &p.key, &p.doc)?;
            statements.push(format!(
                "INSERT INTO {prefix}_src VALUES ({doc_id}, '{}', '{}')",
                sql_quote(&p.key),
                sql_quote(&p.serialized)
            ));
            let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
            let txn_start = std::time::Instant::now();
            self.db.execute_batch(&refs)?;
            let m = metrics::ingest();
            m.wal_txn_ns.record(metrics::elapsed_ns(txn_start));
            m.entries.inc();
            stats += entry_stats;
            doc_id += 1;
        }
        // Indexes are built after the bulk load, like a sane warehouse.
        if options.with_indexes {
            create_collection_indexes(&self.db, &prefix)?;
            self.db
                .query(&format!(
                    "CREATE INDEX {prefix}_src_doc ON {prefix}_src (doc_id)"
                ))
                .run()?;
        }
        self.db
            .query("INSERT INTO hlx_collections VALUES (?, ?, ?, ?, ?)")
            .bind(name)
            .bind(prefix.as_str())
            .bind(kind.name())
            .bind(options.strategy.name())
            .bind(dtd_text)
            .run()?;
        self.record_quarantine(name, &rejected)?;
        self.collections.lock().insert(
            name.to_string(),
            CollectionMeta {
                prefix,
                kind,
                strategy: options.strategy,
                next_doc_id: doc_id,
                dtd,
            },
        );
        Ok(stats)
    }

    /// Integrates a fresh download of a flat source: entry-level diff,
    /// minimal re-shredding, and a trigger per changed entry (§2.2 end).
    ///
    /// Malformed entries are quarantined rather than aborting the update;
    /// an entry that is quarantined in this snapshot keeps its previously
    /// warehoused version (it is *not* treated as removed).
    pub fn update_source(&self, name: &str, flat: &str) -> HoundResult<Vec<ChangeEvent>> {
        let (_, kind, _) = self.meta(name)?;
        if kind == SourceKind::Xml {
            return Err(HoundError::Pipeline(
                "XML sources are updated with update_xml_source".into(),
            ));
        }
        let (prepared, rejected) = prepare_flat(kind, flat)?;
        self.update_prepared(name, prepared, rejected)
    }

    /// Integrates a fresh snapshot of an XML source (diffed on serialized
    /// document text).
    pub fn update_xml_source(
        &self,
        name: &str,
        docs: Vec<(String, Document)>,
    ) -> HoundResult<Vec<ChangeEvent>> {
        let (_, kind, _) = self.meta(name)?;
        if kind != SourceKind::Xml {
            return Err(HoundError::Pipeline(
                "flat sources are updated with update_source".into(),
            ));
        }
        let prepared = docs
            .into_iter()
            .map(|(key, doc)| PreparedDoc {
                serialized: xomatiq_xml::to_string(&doc),
                key,
                doc,
            })
            .collect();
        self.update_prepared(name, prepared, Vec::new())
    }

    fn update_prepared(
        &self,
        name: &str,
        prepared: Vec<PreparedDoc>,
        mut rejected: Vec<QuarantineRecord>,
    ) -> HoundResult<Vec<ChangeEvent>> {
        let (prefix, kind, strategy) = self.meta(name)?;
        let dtd = self.dtd(name)?;

        // Old snapshot: entry key → (doc_id, serialized source).
        let rows = self
            .db
            .query(&format!("SELECT doc_id, entry_key, flat FROM {prefix}_src"))
            .run()?
            .rows;
        let mut old_docs: BTreeMap<String, u64> = BTreeMap::new();
        let mut old_snapshot: BTreeMap<String, String> = BTreeMap::new();
        for row in rows {
            let doc_id = row.try_get::<i64>("doc_id").ok().flatten().unwrap_or(0) as u64;
            let key: String = row.try_get("entry_key").ok().flatten().unwrap_or_default();
            let flat: String = row.try_get("flat").ok().flatten().unwrap_or_default();
            old_docs.insert(key.clone(), doc_id);
            old_snapshot.insert(key, flat);
        }
        let mut new_snapshot: BTreeMap<String, String> = BTreeMap::new();
        let mut new_index: BTreeMap<String, usize> = BTreeMap::new();
        for (i, p) in prepared.iter().enumerate() {
            new_snapshot.insert(p.key.clone(), p.serialized.clone());
            new_index.insert(p.key.clone(), i);
        }

        // An entry quarantined in this snapshot is absent from the new
        // snapshot for the wrong reason — keep its warehoused version
        // instead of treating it as removed.
        let quarantined_keys: std::collections::BTreeSet<String> =
            rejected.iter().map(|r| r.entry_key.clone()).collect();

        let changes = diff_snapshots(&old_snapshot, &new_snapshot);
        let mut events = Vec::with_capacity(changes.len());
        for (key, change) in changes {
            match change {
                ChangeKind::Removed => {
                    if quarantined_keys.contains(&key) {
                        continue;
                    }
                    let doc_id = old_docs[&key];
                    let mut statements = delete_statements(&prefix, doc_id);
                    statements.push(format!("DELETE FROM {prefix}_src WHERE doc_id = {doc_id}"));
                    let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
                    self.db.execute_batch(&refs)?;
                }
                ChangeKind::Modified | ChangeKind::Added => {
                    let p = &prepared[new_index[&key]];
                    if let Err(e) = validate(&p.doc, &dtd) {
                        if kind == SourceKind::Xml {
                            return Err(e.into());
                        }
                        rejected.push(QuarantineRecord {
                            entry_key: key.clone(),
                            reason: format!("DTD validation failed: {e}"),
                            raw: p.serialized.clone(),
                        });
                        continue;
                    }
                    let doc_id = {
                        let mut map = self.collections.lock();
                        let meta = map
                            .get_mut(name)
                            .ok_or_else(|| HoundError::UnknownCollection(name.to_string()))?;
                        let id = meta.next_doc_id;
                        meta.next_doc_id += 1;
                        id
                    };
                    // One atomic batch: tear down the old version (for a
                    // modification), write the new tuples and the `_src`
                    // row together, so the entry is never half-replaced.
                    let mut statements = Vec::new();
                    if change == ChangeKind::Modified {
                        let old_id = old_docs[&key];
                        statements.extend(delete_statements(&prefix, old_id));
                        statements
                            .push(format!("DELETE FROM {prefix}_src WHERE doc_id = {old_id}"));
                    }
                    let (shred, _) =
                        shred_statements(&self.db, &prefix, strategy, doc_id, &key, &p.doc)?;
                    statements.extend(shred);
                    statements.push(format!(
                        "INSERT INTO {prefix}_src VALUES ({doc_id}, '{}', '{}')",
                        sql_quote(&key),
                        sql_quote(&p.serialized)
                    ));
                    let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
                    let txn_start = std::time::Instant::now();
                    self.db.execute_batch(&refs)?;
                    let m = metrics::ingest();
                    m.wal_txn_ns.record(metrics::elapsed_ns(txn_start));
                    m.entries.inc();
                }
            }
            let event = ChangeEvent {
                collection: name.to_string(),
                entry_key: key,
                kind: change,
            };
            self.triggers.notify(&event);
            events.push(event);
        }
        self.record_quarantine(name, &rejected)?;
        Ok(events)
    }

    /// Drops leftover tables of an unregistered collection: the residue of
    /// a load whose registration commit never became durable. The prefix is
    /// matched up to an underscore so sibling collections sharing a name
    /// stem (`..._default` vs `..._default2`) are left alone.
    fn sweep_orphan_tables(&self, prefix: &str) -> HoundResult<()> {
        for table in self.db.table_names() {
            let orphan = table
                .strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('_'));
            if orphan {
                self.db.query(&format!("DROP TABLE {table}")).run()?;
            }
        }
        Ok(())
    }

    /// Replaces the quarantine records of `collection` with `rejected`.
    fn record_quarantine(
        &self,
        collection: &str,
        rejected: &[QuarantineRecord],
    ) -> HoundResult<()> {
        self.db
            .query("DELETE FROM hlx_quarantine WHERE collection = ?")
            .bind(collection)
            .run()?;
        metrics::ingest().quarantined.add(rejected.len() as u64);
        // One parse for the whole loop: bound parameters replace the old
        // per-record SQL-escaping dance.
        let insert = self
            .db
            .prepare("INSERT INTO hlx_quarantine VALUES (?, ?, ?, ?)")?;
        for r in rejected {
            self.db
                .query_prepared(&insert)
                .bind(collection)
                .bind(r.entry_key.as_str())
                .bind(r.reason.as_str())
                .bind(r.raw.as_str())
                .run()?;
        }
        Ok(())
    }

    /// The dead-letter records of a collection's most recent harvest:
    /// entries that failed to parse, transform or validate and were
    /// skipped. Empty after a fully clean harvest.
    pub fn quarantined(&self, collection: &str) -> HoundResult<Vec<QuarantineRecord>> {
        let rows = self
            .db
            .query("SELECT entry_key, reason, raw FROM hlx_quarantine WHERE collection = ?")
            .bind(collection)
            .run()?
            .rows;
        Ok(rows
            .into_iter()
            .map(|r| QuarantineRecord {
                entry_key: r.try_get("entry_key").ok().flatten().unwrap_or_default(),
                reason: r.try_get("reason").ok().flatten().unwrap_or_default(),
                raw: r.try_get("raw").ok().flatten().unwrap_or_default(),
            })
            .collect())
    }

    /// Harvests a flat source through a fallible `fetch` (the simulated
    /// FTP download), retrying transient failures per `policy` with capped
    /// exponential backoff. A first harvest loads the collection; later
    /// harvests integrate the new snapshot and return its change events.
    pub fn harvest_source<F>(
        &self,
        name: &str,
        kind: SourceKind,
        mut fetch: F,
        options: LoadOptions,
        policy: &RetryPolicy,
        sleeper: &mut dyn Sleeper,
    ) -> HoundResult<Vec<ChangeEvent>>
    where
        F: FnMut() -> HoundResult<String>,
    {
        let flat = policy.run(sleeper, |attempt| {
            if attempt > 0 {
                metrics::ingest().retries.inc();
            }
            fetch()
        })?;
        if self.collections.lock().contains_key(name) {
            self.update_source(name, &flat)
        } else {
            self.load_source(name, kind, &flat, options)?;
            Ok(Vec::new())
        }
    }

    /// Reconstructs the warehoused document for `entry_key` — the
    /// Relation2XML direction.
    pub fn reconstruct(&self, collection: &str, entry_key: &str) -> HoundResult<Document> {
        let (prefix, _, strategy) = self.meta(collection)?;
        let rows = self
            .db
            .query(&format!(
                "SELECT doc_id FROM {prefix}_docs WHERE entry_key = ?"
            ))
            .bind(entry_key)
            .run()?
            .rows;
        let doc_id = rows
            .into_iter()
            .next()
            .and_then(|r| r.try_get::<i64>("doc_id").ok().flatten())
            .ok_or_else(|| HoundError::Pipeline(format!("no document for entry {entry_key:?}")))?;
        reconstruct_document(&self.db, &prefix, strategy, doc_id as u64)
    }

    /// Number of documents in a collection.
    pub fn doc_count(&self, collection: &str) -> HoundResult<usize> {
        let (prefix, ..) = self.meta(collection)?;
        Ok(self.db.row_count(&format!("{prefix}_docs"))?)
    }

    /// Creates the collection's keyword summary — a `REFRESH ON COMMIT`
    /// materialized view over the shredded node table aggregating, per
    /// element path, the node count, how many of those nodes carry
    /// keyword-searchable text, and the document-id range. Because the
    /// view rides the commit-time delta pipeline, a re-harvest that
    /// touches only changed documents updates the summary O(changes) —
    /// the incremental counterpart of rescanning `{prefix}_nodes`.
    /// Returns the view's table name (query it like any table).
    pub fn create_keyword_summary(&self, collection: &str) -> HoundResult<String> {
        let (prefix, ..) = self.meta(collection)?;
        let view = format!("{prefix}_kw_summary");
        self.db
            .query(&format!(
                "CREATE MATERIALIZED VIEW {view} REFRESH ON COMMIT AS \
                 SELECT path, COUNT(*) AS nodes, COUNT(val) AS text_nodes, \
                 MIN(doc_id) AS first_doc, MAX(doc_id) AS last_doc \
                 FROM {prefix}_nodes GROUP BY path"
            ))
            .run()?;
        Ok(view)
    }

    /// Drops the keyword summary created by
    /// [`DataHounds::create_keyword_summary`], if present.
    pub fn drop_keyword_summary(&self, collection: &str) -> HoundResult<()> {
        let (prefix, ..) = self.meta(collection)?;
        self.db
            .query(&format!("DROP MATERIALIZED VIEW {prefix}_kw_summary"))
            .run()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_bioflat::{Corpus, CorpusSpec};

    fn hounds() -> DataHounds {
        DataHounds::new(Arc::new(Database::in_memory())).unwrap()
    }

    fn small_corpus() -> Corpus {
        Corpus::generate(&CorpusSpec::sized(10))
    }

    #[test]
    fn load_enzyme_collection() {
        let dh = hounds();
        let corpus = small_corpus();
        let stats = dh
            .load_source(
                "hlx_enzyme.DEFAULT",
                SourceKind::Enzyme,
                &corpus.enzyme_flat(),
                LoadOptions::default(),
            )
            .unwrap();
        assert_eq!(stats.documents, 10);
        assert!(stats.elements > 10);
        assert_eq!(dh.doc_count("hlx_enzyme.DEFAULT").unwrap(), 10);
        assert_eq!(dh.collections(), vec!["hlx_enzyme.DEFAULT".to_string()]);
        assert_eq!(
            dh.prefix("hlx_enzyme.DEFAULT").unwrap(),
            "hlx_enzyme_default"
        );
    }

    #[test]
    fn interrupted_load_leftovers_are_swept_on_reload() {
        let db = Arc::new(Database::in_memory());
        let dh = DataHounds::new(Arc::clone(&db)).unwrap();
        // Simulate a load that crashed after creating tables and ingesting
        // an entry but before the registration commit became durable: the
        // tables exist, the metadata row does not.
        let prefix = collection_prefix("hlx_enzyme.DEFAULT");
        create_collection_tables(&db, &prefix).unwrap();
        db.query(&format!(
            "CREATE TABLE {prefix}_src (doc_id INT, entry_key TEXT, flat TEXT)"
        ))
        .run()
        .unwrap();
        db.query(&format!(
            "INSERT INTO {prefix}_src VALUES (0, 'stale', 'stale')"
        ))
        .run()
        .unwrap();
        // A sibling collection sharing the name stem must survive the sweep.
        db.query(&format!("CREATE TABLE {prefix}2_docs (doc_id INT)"))
            .run()
            .unwrap();

        let corpus = small_corpus();
        let stats = dh
            .load_source(
                "hlx_enzyme.DEFAULT",
                SourceKind::Enzyme,
                &corpus.enzyme_flat(),
                LoadOptions::default(),
            )
            .unwrap();
        assert_eq!(stats.documents, 10);
        assert_eq!(dh.doc_count("hlx_enzyme.DEFAULT").unwrap(), 10);
        let stale = db
            .query(&format!(
                "SELECT flat FROM {prefix}_src WHERE entry_key = 'stale'"
            ))
            .run()
            .unwrap();
        assert!(
            stale.rows.rows().is_empty(),
            "stale orphan row must be swept"
        );
        assert!(db
            .query(&format!("SELECT doc_id FROM {prefix}2_docs"))
            .run()
            .is_ok());
    }

    #[test]
    fn double_load_rejected() {
        let dh = hounds();
        let corpus = small_corpus();
        dh.load_source(
            "c",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        assert!(dh
            .load_source(
                "c",
                SourceKind::Enzyme,
                &corpus.enzyme_flat(),
                LoadOptions::default()
            )
            .is_err());
    }

    #[test]
    fn reconstruct_round_trips_both_strategies() {
        let corpus = small_corpus();
        for strategy in [ShreddingStrategy::Edge, ShreddingStrategy::Interval] {
            let dh = hounds();
            dh.load_source(
                "hlx_enzyme.DEFAULT",
                SourceKind::Enzyme,
                &corpus.enzyme_flat(),
                LoadOptions {
                    strategy,
                    ..LoadOptions::default()
                },
            )
            .unwrap();
            for entry in &corpus.enzymes {
                let rebuilt = dh.reconstruct("hlx_enzyme.DEFAULT", &entry.id).unwrap();
                let original = crate::transform::enzyme_to_xml(entry).unwrap();
                assert!(
                    original.structurally_equal(&rebuilt),
                    "{strategy:?} reconstruction of {} diverged",
                    entry.id
                );
            }
        }
    }

    #[test]
    fn update_applies_minimal_changes_and_fires_triggers() {
        let dh = hounds();
        let corpus = small_corpus();
        dh.load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        let rx = dh.subscribe();

        // New snapshot: drop entry 0, modify entry 1, add a fresh entry.
        let mut entries = corpus.enzymes.clone();
        let removed_key = entries.remove(0).id;
        entries[0].descriptions = vec!["Renamed enzyme.".into()];
        let modified_key = entries[0].id.clone();
        let mut added = entries[1].clone();
        added.id = "9.9.9.99".into();
        entries.push(added);
        let flat: String = entries.iter().map(|e| e.to_flat()).collect();

        let events = dh.update_source("hlx_enzyme.DEFAULT", &flat).unwrap();
        assert_eq!(events.len(), 3);
        let kinds: std::collections::HashMap<String, ChangeKind> = events
            .iter()
            .map(|e| (e.entry_key.clone(), e.kind))
            .collect();
        assert_eq!(kinds[&removed_key], ChangeKind::Removed);
        assert_eq!(kinds[&modified_key], ChangeKind::Modified);
        assert_eq!(kinds["9.9.9.99"], ChangeKind::Added);

        // Triggers delivered.
        let mut received = Vec::new();
        while let Ok(e) = rx.try_recv() {
            received.push(e);
        }
        assert_eq!(received.len(), 3);

        // Warehouse state matches the new snapshot.
        assert_eq!(dh.doc_count("hlx_enzyme.DEFAULT").unwrap(), 10);
        let rebuilt = dh.reconstruct("hlx_enzyme.DEFAULT", &modified_key).unwrap();
        let expected = crate::transform::enzyme_to_xml(&entries[0]).unwrap();
        assert!(expected.structurally_equal(&rebuilt));
        assert!(dh.reconstruct("hlx_enzyme.DEFAULT", &removed_key).is_err());
        assert!(dh.reconstruct("hlx_enzyme.DEFAULT", "9.9.9.99").is_ok());
    }

    #[test]
    fn update_with_no_changes_is_a_no_op() {
        let dh = hounds();
        let corpus = small_corpus();
        let flat = corpus.enzyme_flat();
        dh.load_source("c", SourceKind::Enzyme, &flat, LoadOptions::default())
            .unwrap();
        let events = dh.update_source("c", &flat).unwrap();
        assert!(events.is_empty());
        assert_eq!(dh.doc_count("c").unwrap(), 10);
    }

    #[test]
    fn metadata_survives_reopen_on_same_database() {
        let db = Arc::new(Database::in_memory());
        let corpus = small_corpus();
        {
            let dh = DataHounds::new(Arc::clone(&db)).unwrap();
            dh.load_source(
                "hlx_embl.inv",
                SourceKind::Embl,
                &corpus.embl_flat(),
                LoadOptions::default(),
            )
            .unwrap();
        }
        // A second Data Hounds over the same database recovers metadata.
        let dh2 = DataHounds::new(db).unwrap();
        assert_eq!(dh2.collections(), vec!["hlx_embl.inv".to_string()]);
        assert_eq!(
            dh2.strategy("hlx_embl.inv").unwrap(),
            ShreddingStrategy::Interval
        );
        assert_eq!(dh2.doc_count("hlx_embl.inv").unwrap(), 10);
        // And updates keep working (doc ids continue from the right spot).
        let mut entries = corpus.embl.clone();
        entries[0].description = "changed".into();
        let flat: String = entries.iter().map(|e| e.to_flat()).collect();
        let events = dh2.update_source("hlx_embl.inv", &flat).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn unknown_collection_errors() {
        let dh = hounds();
        assert!(matches!(
            dh.dtd("nope"),
            Err(HoundError::UnknownCollection(_))
        ));
        assert!(dh.update_source("nope", "").is_err());
        assert!(dh.reconstruct("nope", "k").is_err());
    }

    #[test]
    fn corrupted_entry_is_quarantined_and_harvest_continues() {
        let dh = hounds();
        let corpus = small_corpus();
        // A rotten entry in the middle of the feed: a CC continuation with
        // no preceding comment is a parse error.
        let mut flat = String::new();
        for (i, e) in corpus.enzymes.iter().enumerate() {
            if i == 3 {
                flat.push_str("ID   9.9.9.99\nCC   orphan continuation\n//\n");
            }
            flat.push_str(&e.to_flat());
        }
        let stats = dh
            .load_source("c", SourceKind::Enzyme, &flat, LoadOptions::default())
            .unwrap();
        // The ten good entries are in, the bad one is dead-lettered.
        assert_eq!(stats.documents, 10);
        assert_eq!(dh.doc_count("c").unwrap(), 10);
        let q = dh.quarantined("c").unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].entry_key, "9.9.9.99");
        assert!(q[0].reason.contains("CC continuation"));
        assert!(q[0].raw.contains("orphan continuation"));

        // Re-harvest with the entry fixed: it arrives as an addition, the
        // quarantine clears, and nothing else is touched (no duplicates).
        let mut fixed = corpus.enzymes[1].clone();
        fixed.id = "9.9.9.99".into();
        let mut flat2: String = corpus.enzymes.iter().map(|e| e.to_flat()).collect();
        flat2.push_str(&fixed.to_flat());
        let events = dh.update_source("c", &flat2).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ChangeKind::Added);
        assert_eq!(events[0].entry_key, "9.9.9.99");
        assert!(dh.quarantined("c").unwrap().is_empty());
        assert_eq!(dh.doc_count("c").unwrap(), 11);

        // A further identical harvest is a no-op — tuples never duplicate.
        let nodes_before = dh.db().row_count("c_nodes").unwrap();
        let events = dh.update_source("c", &flat2).unwrap();
        assert!(events.is_empty());
        assert_eq!(dh.doc_count("c").unwrap(), 11);
        assert_eq!(dh.db().row_count("c_nodes").unwrap(), nodes_before);
    }

    #[test]
    fn quarantined_update_entry_keeps_the_old_version() {
        let dh = hounds();
        let corpus = small_corpus();
        dh.load_source(
            "c",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        let victim = corpus.enzymes[2].id.clone();
        // New snapshot where one previously good entry turns to garbage.
        let mut flat = String::new();
        for e in &corpus.enzymes {
            if e.id == victim {
                flat.push_str(&format!("ID   {victim}\nPR   GARBAGE\n//\n"));
            } else {
                flat.push_str(&e.to_flat());
            }
        }
        let events = dh.update_source("c", &flat).unwrap();
        // Not removed, not modified: the warehoused version survives.
        assert!(events.is_empty());
        assert_eq!(dh.doc_count("c").unwrap(), 10);
        assert!(dh.reconstruct("c", &victim).is_ok());
        let q = dh.quarantined("c").unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].entry_key, victim);
    }

    #[test]
    fn harvest_source_retries_fetches_with_backoff() {
        use crate::retry::{RecordingSleeper, RetryPolicy};

        let dh = hounds();
        let corpus = small_corpus();
        let flat = corpus.enzyme_flat();
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 100,
            max_delay_ms: 150,
            jitter_seed: None,
        };
        let mut sleeper = RecordingSleeper::default();
        let mut calls = 0;
        let events = dh
            .harvest_source(
                "c",
                SourceKind::Enzyme,
                || {
                    calls += 1;
                    if calls < 3 {
                        Err(HoundError::Pipeline("connection reset".into()))
                    } else {
                        Ok(flat.clone())
                    }
                },
                LoadOptions::default(),
                &policy,
                &mut sleeper,
            )
            .unwrap();
        assert!(events.is_empty());
        assert_eq!(calls, 3);
        let ms: Vec<u64> = sleeper.slept.iter().map(|d| d.as_millis() as u64).collect();
        assert_eq!(ms, vec![100, 150]);
        assert_eq!(dh.doc_count("c").unwrap(), 10);

        // A later harvest of the same collection is an update.
        let mut entries = corpus.enzymes.clone();
        entries[0].descriptions = vec!["Renamed.".into()];
        let flat2: String = entries.iter().map(|e| e.to_flat()).collect();
        let mut sleeper = RecordingSleeper::default();
        let events = dh
            .harvest_source(
                "c",
                SourceKind::Enzyme,
                || Ok(flat2.clone()),
                LoadOptions::default(),
                &RetryPolicy::no_retries(),
                &mut sleeper,
            )
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ChangeKind::Modified);

        // Exhausted retries surface the last fetch error.
        let mut sleeper = RecordingSleeper::default();
        let err = dh.harvest_source(
            "d",
            SourceKind::Enzyme,
            || Err::<String, _>(HoundError::Pipeline("down".into())),
            LoadOptions::default(),
            &policy,
            &mut sleeper,
        );
        assert!(err.is_err());
        assert_eq!(sleeper.slept.len(), 3);
    }

    #[test]
    fn all_three_kinds_load() {
        let dh = hounds();
        let corpus = small_corpus();
        dh.load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        dh.load_source(
            "hlx_embl.inv",
            SourceKind::Embl,
            &corpus.embl_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        dh.load_source(
            "hlx_sprot.all",
            SourceKind::SwissProt,
            &corpus.swissprot_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        assert_eq!(dh.collections().len(), 3);
        for c in ["hlx_enzyme.DEFAULT", "hlx_embl.inv", "hlx_sprot.all"] {
            assert_eq!(dh.doc_count(c).unwrap(), 10, "{c}");
        }
    }
}
