//! The Data Hounds orchestrator.
//!
//! [`DataHounds`] drives the full §2 pipeline for a registered source:
//! flat text (the simulated FTP download) → typed entries → XML documents
//! → DTD validation → shredded tuples → indexes, and subsequently the
//! incremental update path with trigger delivery. Collection metadata
//! (strategy, entry keys, source text for diffing) lives in warehouse
//! tables so it survives a restart along with the data.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use xomatiq_bioflat::embl::parse_embl_file;
use xomatiq_bioflat::enzyme::parse_enzyme_file;
use xomatiq_bioflat::swissprot::parse_swissprot_file;
use xomatiq_relstore::Database;
use xomatiq_xml::dtd::{validate, Dtd};
use xomatiq_xml::Document;

use crate::error::{HoundError, HoundResult};
use crate::shred::{
    collection_prefix, create_collection_indexes, create_collection_tables, delete_document,
    reconstruct_document, shred_document, sql_quote, ShredStats, ShreddingStrategy,
};
use crate::transform::{
    embl_dtd, embl_to_xml, enzyme_dtd, enzyme_to_xml, swissprot_dtd, swissprot_to_xml,
};
use crate::update::{diff_snapshots, ChangeEvent, ChangeKind, TriggerHub};

/// Which of the supported source databases a collection holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// The ENZYME nomenclature database.
    Enzyme,
    /// The EMBL nucleotide database.
    Embl,
    /// The Swiss-Prot protein knowledge base.
    SwissProt,
    /// A pre-existing XML databank (INTERPRO-style, §2.1) or any other
    /// source already converted to XML — including wrapped relational
    /// tables (Figure 1's RDBMS input). Loaded via
    /// [`DataHounds::load_xml_source`] with a caller-supplied DTD.
    Xml,
}

impl SourceKind {
    /// Stable name used in the warehouse metadata table.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::Enzyme => "enzyme",
            SourceKind::Embl => "embl",
            SourceKind::SwissProt => "swissprot",
            SourceKind::Xml => "xml",
        }
    }

    /// Parses a stored kind name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "enzyme" => Some(SourceKind::Enzyme),
            "embl" => Some(SourceKind::Embl),
            "swissprot" => Some(SourceKind::SwissProt),
            "xml" => Some(SourceKind::Xml),
            _ => None,
        }
    }

    /// The built-in DTD of a flat source kind; XML sources carry their own.
    pub fn builtin_dtd(self) -> Option<Dtd> {
        match self {
            SourceKind::Enzyme => Some(enzyme_dtd()),
            SourceKind::Embl => Some(embl_dtd()),
            SourceKind::SwissProt => Some(swissprot_dtd()),
            SourceKind::Xml => None,
        }
    }
}

/// The stable text of a flat source kind's DTD (for metadata storage).
fn builtin_dtd_text(kind: SourceKind) -> &'static str {
    match kind {
        SourceKind::Enzyme => crate::transform::enzyme::ENZYME_DTD_TEXT,
        SourceKind::Embl => crate::transform::embl::EMBL_DTD_TEXT,
        SourceKind::SwissProt => crate::transform::swissprot::SWISSPROT_DTD_TEXT,
        SourceKind::Xml => "",
    }
}

/// Parsed entries of one source, with uniform access.
enum Entries {
    Enzyme(Vec<xomatiq_bioflat::EnzymeEntry>),
    Embl(Vec<xomatiq_bioflat::EmblEntry>),
    SwissProt(Vec<xomatiq_bioflat::SwissProtEntry>),
}

impl Entries {
    fn parse(kind: SourceKind, flat: &str) -> HoundResult<Entries> {
        Ok(match kind {
            SourceKind::Enzyme => Entries::Enzyme(parse_enzyme_file(flat)?),
            SourceKind::Embl => Entries::Embl(parse_embl_file(flat)?),
            SourceKind::SwissProt => Entries::SwissProt(parse_swissprot_file(flat)?),
            SourceKind::Xml => {
                return Err(HoundError::Pipeline(
                    "XML sources have no flat form to parse".into(),
                ))
            }
        })
    }

    fn len(&self) -> usize {
        match self {
            Entries::Enzyme(v) => v.len(),
            Entries::Embl(v) => v.len(),
            Entries::SwissProt(v) => v.len(),
        }
    }

    fn key(&self, i: usize) -> String {
        match self {
            Entries::Enzyme(v) => v[i].id.clone(),
            Entries::Embl(v) => v[i].accession.clone(),
            Entries::SwissProt(v) => v[i].accession.clone(),
        }
    }

    fn to_xml(&self, i: usize) -> HoundResult<Document> {
        match self {
            Entries::Enzyme(v) => enzyme_to_xml(&v[i]),
            Entries::Embl(v) => embl_to_xml(&v[i]),
            Entries::SwissProt(v) => swissprot_to_xml(&v[i]),
        }
    }

    fn to_flat(&self, i: usize) -> String {
        match self {
            Entries::Enzyme(v) => v[i].to_flat(),
            Entries::Embl(v) => v[i].to_flat(),
            Entries::SwissProt(v) => v[i].to_flat(),
        }
    }
}

/// One document ready for loading: its stable key, its serialized source
/// form (used for update diffing), and the XML document itself.
struct PreparedDoc {
    key: String,
    serialized: String,
    doc: Document,
}

struct CollectionMeta {
    prefix: String,
    kind: SourceKind,
    strategy: ShreddingStrategy,
    next_doc_id: u64,
    dtd: Dtd,
}

/// Options controlling a source load.
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Shredding strategy for the collection.
    pub strategy: ShreddingStrategy,
    /// Whether to create the §3.2 index set (disabled by the ablation
    /// bench to measure the paper's index claim).
    pub with_indexes: bool,
    /// Whether to validate every document against the source DTD before
    /// shredding.
    pub validate: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            strategy: ShreddingStrategy::Interval,
            with_indexes: true,
            validate: true,
        }
    }
}

/// The Data Hounds: warehouse loader, updater and trigger source.
pub struct DataHounds {
    db: Arc<Database>,
    triggers: TriggerHub,
    collections: Mutex<BTreeMap<String, CollectionMeta>>,
}

impl DataHounds {
    /// Creates a Data Hounds instance over `db`, recovering collection
    /// metadata from the warehouse if present.
    pub fn new(db: Arc<Database>) -> HoundResult<DataHounds> {
        if !db.table_names().iter().any(|t| t == "hlx_collections") {
            db.execute(
                "CREATE TABLE hlx_collections (name TEXT, prefix TEXT, kind TEXT, \
                 strategy TEXT, dtd TEXT)",
            )?;
        }
        let mut collections = BTreeMap::new();
        let rows = db.execute("SELECT name, prefix, kind, strategy, dtd FROM hlx_collections")?;
        for row in rows.rows() {
            let name = row[0].as_text().unwrap_or_default().to_string();
            let prefix = row[1].as_text().unwrap_or_default().to_string();
            let kind = SourceKind::from_name(row[2].as_text().unwrap_or_default())
                .ok_or_else(|| HoundError::Pipeline("corrupt collection kind".into()))?;
            let strategy = ShreddingStrategy::from_name(row[3].as_text().unwrap_or_default())
                .ok_or_else(|| HoundError::Pipeline("corrupt collection strategy".into()))?;
            let dtd = xomatiq_xml::dtd::parse_dtd(row[4].as_text().unwrap_or_default())?;
            let max_doc = db
                .execute(&format!("SELECT MAX(doc_id) FROM {prefix}_docs"))?
                .rows()
                .first()
                .and_then(|r| r[0].as_int())
                .map(|m| m as u64 + 1)
                .unwrap_or(0);
            collections.insert(
                name,
                CollectionMeta {
                    prefix,
                    kind,
                    strategy,
                    next_doc_id: max_doc,
                    dtd,
                },
            );
        }
        Ok(DataHounds {
            db,
            triggers: TriggerHub::new(),
            collections: Mutex::new(collections),
        })
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Subscribes to warehouse change triggers.
    pub fn subscribe(&self) -> crossbeam::channel::Receiver<ChangeEvent> {
        self.triggers.subscribe()
    }

    /// Names of all loaded collections.
    pub fn collections(&self) -> Vec<String> {
        self.collections.lock().keys().cloned().collect()
    }

    /// The table prefix of a collection.
    pub fn prefix(&self, collection: &str) -> HoundResult<String> {
        Ok(self.meta(collection)?.0)
    }

    /// The shredding strategy of a collection.
    pub fn strategy(&self, collection: &str) -> HoundResult<ShreddingStrategy> {
        Ok(self.meta(collection)?.2)
    }

    /// The DTD of a collection (what the XomatiQ GUI's left panel shows).
    pub fn dtd(&self, collection: &str) -> HoundResult<Dtd> {
        let map = self.collections.lock();
        let meta = map
            .get(collection)
            .ok_or_else(|| HoundError::UnknownCollection(collection.to_string()))?;
        Ok(meta.dtd.clone())
    }

    fn meta(&self, collection: &str) -> HoundResult<(String, SourceKind, ShreddingStrategy)> {
        let map = self.collections.lock();
        let meta = map
            .get(collection)
            .ok_or_else(|| HoundError::UnknownCollection(collection.to_string()))?;
        Ok((meta.prefix.clone(), meta.kind, meta.strategy))
    }

    /// Loads a flat-file source end-to-end into collection `name` (e.g.
    /// `hlx_enzyme.DEFAULT`) from its flat text.
    pub fn load_source(
        &self,
        name: &str,
        kind: SourceKind,
        flat: &str,
        options: LoadOptions,
    ) -> HoundResult<ShredStats> {
        if kind == SourceKind::Xml {
            return Err(HoundError::Pipeline(
                "XML sources are loaded with load_xml_source".into(),
            ));
        }
        let entries = Entries::parse(kind, flat)?;
        let dtd = kind.builtin_dtd().expect("flat kind");
        let mut prepared = Vec::with_capacity(entries.len());
        for i in 0..entries.len() {
            prepared.push(PreparedDoc {
                key: entries.key(i),
                serialized: entries.to_flat(i),
                doc: entries.to_xml(i)?,
            });
        }
        self.load_prepared(name, kind, builtin_dtd_text(kind), dtd, prepared, options)
    }

    /// Loads a pre-existing XML source — an XML databank such as INTERPRO
    /// (§2.1), or rows of a wrapped relational table (Figure 1) — into
    /// collection `name`. `dtd_text` is the source's DTD; every document
    /// is validated against it when `options.validate` is set.
    pub fn load_xml_source(
        &self,
        name: &str,
        dtd_text: &str,
        docs: Vec<(String, Document)>,
        options: LoadOptions,
    ) -> HoundResult<ShredStats> {
        let dtd = xomatiq_xml::dtd::parse_dtd(dtd_text)?;
        let prepared = docs
            .into_iter()
            .map(|(key, doc)| PreparedDoc {
                serialized: xomatiq_xml::to_string(&doc),
                key,
                doc,
            })
            .collect();
        self.load_prepared(name, SourceKind::Xml, dtd_text, dtd, prepared, options)
    }

    fn load_prepared(
        &self,
        name: &str,
        kind: SourceKind,
        dtd_text: &str,
        dtd: Dtd,
        prepared: Vec<PreparedDoc>,
        options: LoadOptions,
    ) -> HoundResult<ShredStats> {
        {
            let map = self.collections.lock();
            if map.contains_key(name) {
                return Err(HoundError::Pipeline(format!(
                    "collection {name:?} is already loaded; use update_source"
                )));
            }
        }
        let prefix = collection_prefix(name);
        create_collection_tables(&self.db, &prefix)?;
        self.db.execute(&format!(
            "CREATE TABLE {prefix}_src (doc_id INT, entry_key TEXT, flat TEXT)"
        ))?;

        let mut stats = ShredStats::default();
        for (i, p) in prepared.iter().enumerate() {
            if options.validate {
                validate(&p.doc, &dtd)?;
            }
            stats += shred_document(
                &self.db,
                &prefix,
                options.strategy,
                i as u64,
                &p.key,
                &p.doc,
            )?;
            self.db.execute(&format!(
                "INSERT INTO {prefix}_src VALUES ({i}, '{}', '{}')",
                sql_quote(&p.key),
                sql_quote(&p.serialized)
            ))?;
        }
        // Indexes are built after the bulk load, like a sane warehouse.
        if options.with_indexes {
            create_collection_indexes(&self.db, &prefix)?;
            self.db.execute(&format!(
                "CREATE INDEX {prefix}_src_doc ON {prefix}_src (doc_id)"
            ))?;
        }
        self.db.execute(&format!(
            "INSERT INTO hlx_collections VALUES ('{}', '{}', '{}', '{}', '{}')",
            sql_quote(name),
            sql_quote(&prefix),
            kind.name(),
            options.strategy.name(),
            sql_quote(dtd_text)
        ))?;
        self.collections.lock().insert(
            name.to_string(),
            CollectionMeta {
                prefix,
                kind,
                strategy: options.strategy,
                next_doc_id: prepared.len() as u64,
                dtd,
            },
        );
        Ok(stats)
    }

    /// Integrates a fresh download of a flat source: entry-level diff,
    /// minimal re-shredding, and a trigger per changed entry (§2.2 end).
    pub fn update_source(&self, name: &str, flat: &str) -> HoundResult<Vec<ChangeEvent>> {
        let (_, kind, _) = self.meta(name)?;
        if kind == SourceKind::Xml {
            return Err(HoundError::Pipeline(
                "XML sources are updated with update_xml_source".into(),
            ));
        }
        let entries = Entries::parse(kind, flat)?;
        let mut prepared = Vec::with_capacity(entries.len());
        for i in 0..entries.len() {
            prepared.push(PreparedDoc {
                key: entries.key(i),
                serialized: entries.to_flat(i),
                doc: entries.to_xml(i)?,
            });
        }
        self.update_prepared(name, prepared)
    }

    /// Integrates a fresh snapshot of an XML source (diffed on serialized
    /// document text).
    pub fn update_xml_source(
        &self,
        name: &str,
        docs: Vec<(String, Document)>,
    ) -> HoundResult<Vec<ChangeEvent>> {
        let (_, kind, _) = self.meta(name)?;
        if kind != SourceKind::Xml {
            return Err(HoundError::Pipeline(
                "flat sources are updated with update_source".into(),
            ));
        }
        let prepared = docs
            .into_iter()
            .map(|(key, doc)| PreparedDoc {
                serialized: xomatiq_xml::to_string(&doc),
                key,
                doc,
            })
            .collect();
        self.update_prepared(name, prepared)
    }

    fn update_prepared(
        &self,
        name: &str,
        prepared: Vec<PreparedDoc>,
    ) -> HoundResult<Vec<ChangeEvent>> {
        let (prefix, _, strategy) = self.meta(name)?;
        let dtd = self.dtd(name)?;

        // Old snapshot: entry key → (doc_id, serialized source).
        let rows = self
            .db
            .execute(&format!("SELECT doc_id, entry_key, flat FROM {prefix}_src"))?;
        let mut old_docs: BTreeMap<String, u64> = BTreeMap::new();
        let mut old_snapshot: BTreeMap<String, String> = BTreeMap::new();
        for row in rows.rows() {
            let doc_id = row[0].as_int().unwrap_or(0) as u64;
            let key = row[1].as_text().unwrap_or_default().to_string();
            let flat = row[2].as_text().unwrap_or_default().to_string();
            old_docs.insert(key.clone(), doc_id);
            old_snapshot.insert(key, flat);
        }
        let mut new_snapshot: BTreeMap<String, String> = BTreeMap::new();
        let mut new_index: BTreeMap<String, usize> = BTreeMap::new();
        for (i, p) in prepared.iter().enumerate() {
            new_snapshot.insert(p.key.clone(), p.serialized.clone());
            new_index.insert(p.key.clone(), i);
        }

        let changes = diff_snapshots(&old_snapshot, &new_snapshot);
        let mut events = Vec::with_capacity(changes.len());
        for (key, change) in changes {
            match change {
                ChangeKind::Removed => {
                    let doc_id = old_docs[&key];
                    delete_document(&self.db, &prefix, doc_id)?;
                    self.db
                        .execute(&format!("DELETE FROM {prefix}_src WHERE doc_id = {doc_id}"))?;
                }
                ChangeKind::Modified | ChangeKind::Added => {
                    if change == ChangeKind::Modified {
                        let doc_id = old_docs[&key];
                        delete_document(&self.db, &prefix, doc_id)?;
                        self.db.execute(&format!(
                            "DELETE FROM {prefix}_src WHERE doc_id = {doc_id}"
                        ))?;
                    }
                    let p = &prepared[new_index[&key]];
                    validate(&p.doc, &dtd)?;
                    let doc_id = {
                        let mut map = self.collections.lock();
                        let meta = map.get_mut(name).expect("checked by meta()");
                        let id = meta.next_doc_id;
                        meta.next_doc_id += 1;
                        id
                    };
                    shred_document(&self.db, &prefix, strategy, doc_id, &key, &p.doc)?;
                    self.db.execute(&format!(
                        "INSERT INTO {prefix}_src VALUES ({doc_id}, '{}', '{}')",
                        sql_quote(&key),
                        sql_quote(&p.serialized)
                    ))?;
                }
            }
            let event = ChangeEvent {
                collection: name.to_string(),
                entry_key: key,
                kind: change,
            };
            self.triggers.notify(&event);
            events.push(event);
        }
        Ok(events)
    }

    /// Reconstructs the warehoused document for `entry_key` — the
    /// Relation2XML direction.
    pub fn reconstruct(&self, collection: &str, entry_key: &str) -> HoundResult<Document> {
        let (prefix, _, strategy) = self.meta(collection)?;
        let rows = self.db.execute(&format!(
            "SELECT doc_id FROM {prefix}_docs WHERE entry_key = '{}'",
            sql_quote(entry_key)
        ))?;
        let doc_id = rows
            .rows()
            .first()
            .and_then(|r| r[0].as_int())
            .ok_or_else(|| HoundError::Pipeline(format!("no document for entry {entry_key:?}")))?;
        reconstruct_document(&self.db, &prefix, strategy, doc_id as u64)
    }

    /// Number of documents in a collection.
    pub fn doc_count(&self, collection: &str) -> HoundResult<usize> {
        let (prefix, ..) = self.meta(collection)?;
        Ok(self.db.row_count(&format!("{prefix}_docs"))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_bioflat::{Corpus, CorpusSpec};

    fn hounds() -> DataHounds {
        DataHounds::new(Arc::new(Database::in_memory())).unwrap()
    }

    fn small_corpus() -> Corpus {
        Corpus::generate(&CorpusSpec::sized(10))
    }

    #[test]
    fn load_enzyme_collection() {
        let dh = hounds();
        let corpus = small_corpus();
        let stats = dh
            .load_source(
                "hlx_enzyme.DEFAULT",
                SourceKind::Enzyme,
                &corpus.enzyme_flat(),
                LoadOptions::default(),
            )
            .unwrap();
        assert_eq!(stats.documents, 10);
        assert!(stats.elements > 10);
        assert_eq!(dh.doc_count("hlx_enzyme.DEFAULT").unwrap(), 10);
        assert_eq!(dh.collections(), vec!["hlx_enzyme.DEFAULT".to_string()]);
        assert_eq!(
            dh.prefix("hlx_enzyme.DEFAULT").unwrap(),
            "hlx_enzyme_default"
        );
    }

    #[test]
    fn double_load_rejected() {
        let dh = hounds();
        let corpus = small_corpus();
        dh.load_source(
            "c",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        assert!(dh
            .load_source(
                "c",
                SourceKind::Enzyme,
                &corpus.enzyme_flat(),
                LoadOptions::default()
            )
            .is_err());
    }

    #[test]
    fn reconstruct_round_trips_both_strategies() {
        let corpus = small_corpus();
        for strategy in [ShreddingStrategy::Edge, ShreddingStrategy::Interval] {
            let dh = hounds();
            dh.load_source(
                "hlx_enzyme.DEFAULT",
                SourceKind::Enzyme,
                &corpus.enzyme_flat(),
                LoadOptions {
                    strategy,
                    ..LoadOptions::default()
                },
            )
            .unwrap();
            for entry in &corpus.enzymes {
                let rebuilt = dh.reconstruct("hlx_enzyme.DEFAULT", &entry.id).unwrap();
                let original = crate::transform::enzyme_to_xml(entry).unwrap();
                assert!(
                    original.structurally_equal(&rebuilt),
                    "{strategy:?} reconstruction of {} diverged",
                    entry.id
                );
            }
        }
    }

    #[test]
    fn update_applies_minimal_changes_and_fires_triggers() {
        let dh = hounds();
        let corpus = small_corpus();
        dh.load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        let rx = dh.subscribe();

        // New snapshot: drop entry 0, modify entry 1, add a fresh entry.
        let mut entries = corpus.enzymes.clone();
        let removed_key = entries.remove(0).id;
        entries[0].descriptions = vec!["Renamed enzyme.".into()];
        let modified_key = entries[0].id.clone();
        let mut added = entries[1].clone();
        added.id = "9.9.9.99".into();
        entries.push(added);
        let flat: String = entries.iter().map(|e| e.to_flat()).collect();

        let events = dh.update_source("hlx_enzyme.DEFAULT", &flat).unwrap();
        assert_eq!(events.len(), 3);
        let kinds: std::collections::HashMap<String, ChangeKind> = events
            .iter()
            .map(|e| (e.entry_key.clone(), e.kind))
            .collect();
        assert_eq!(kinds[&removed_key], ChangeKind::Removed);
        assert_eq!(kinds[&modified_key], ChangeKind::Modified);
        assert_eq!(kinds["9.9.9.99"], ChangeKind::Added);

        // Triggers delivered.
        let mut received = Vec::new();
        while let Ok(e) = rx.try_recv() {
            received.push(e);
        }
        assert_eq!(received.len(), 3);

        // Warehouse state matches the new snapshot.
        assert_eq!(dh.doc_count("hlx_enzyme.DEFAULT").unwrap(), 10);
        let rebuilt = dh.reconstruct("hlx_enzyme.DEFAULT", &modified_key).unwrap();
        let expected = crate::transform::enzyme_to_xml(&entries[0]).unwrap();
        assert!(expected.structurally_equal(&rebuilt));
        assert!(dh.reconstruct("hlx_enzyme.DEFAULT", &removed_key).is_err());
        assert!(dh.reconstruct("hlx_enzyme.DEFAULT", "9.9.9.99").is_ok());
    }

    #[test]
    fn update_with_no_changes_is_a_no_op() {
        let dh = hounds();
        let corpus = small_corpus();
        let flat = corpus.enzyme_flat();
        dh.load_source("c", SourceKind::Enzyme, &flat, LoadOptions::default())
            .unwrap();
        let events = dh.update_source("c", &flat).unwrap();
        assert!(events.is_empty());
        assert_eq!(dh.doc_count("c").unwrap(), 10);
    }

    #[test]
    fn metadata_survives_reopen_on_same_database() {
        let db = Arc::new(Database::in_memory());
        let corpus = small_corpus();
        {
            let dh = DataHounds::new(Arc::clone(&db)).unwrap();
            dh.load_source(
                "hlx_embl.inv",
                SourceKind::Embl,
                &corpus.embl_flat(),
                LoadOptions::default(),
            )
            .unwrap();
        }
        // A second Data Hounds over the same database recovers metadata.
        let dh2 = DataHounds::new(db).unwrap();
        assert_eq!(dh2.collections(), vec!["hlx_embl.inv".to_string()]);
        assert_eq!(
            dh2.strategy("hlx_embl.inv").unwrap(),
            ShreddingStrategy::Interval
        );
        assert_eq!(dh2.doc_count("hlx_embl.inv").unwrap(), 10);
        // And updates keep working (doc ids continue from the right spot).
        let mut entries = corpus.embl.clone();
        entries[0].description = "changed".into();
        let flat: String = entries.iter().map(|e| e.to_flat()).collect();
        let events = dh2.update_source("hlx_embl.inv", &flat).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn unknown_collection_errors() {
        let dh = hounds();
        assert!(matches!(
            dh.dtd("nope"),
            Err(HoundError::UnknownCollection(_))
        ));
        assert!(dh.update_source("nope", "").is_err());
        assert!(dh.reconstruct("nope", "k").is_err());
    }

    #[test]
    fn all_three_kinds_load() {
        let dh = hounds();
        let corpus = small_corpus();
        dh.load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        dh.load_source(
            "hlx_embl.inv",
            SourceKind::Embl,
            &corpus.embl_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        dh.load_source(
            "hlx_sprot.all",
            SourceKind::SwissProt,
            &corpus.swissprot_flat(),
            LoadOptions::default(),
        )
        .unwrap();
        assert_eq!(dh.collections().len(), 3);
        for c in ["hlx_enzyme.DEFAULT", "hlx_embl.inv", "hlx_sprot.all"] {
            assert_eq!(dh.doc_count(c).unwrap(), 10, "{c}");
        }
    }
}
