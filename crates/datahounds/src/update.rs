//! Incremental updates and change triggers.
//!
//! The paper's second design consideration (§2) is "the ability to
//! download and integrate the latest updates to any database without any
//! information being left out or added twice", and §2.2 ends with "once
//! the changes have been committed to the local warehouse, the Data
//! Hounds sends out triggers to related applications". This module
//! supplies the entry-level diff and the trigger fan-out.

use std::collections::BTreeMap;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// What happened to an entry during an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChangeKind {
    /// The entry is new in this update.
    Added,
    /// The entry existed before but its content changed.
    Modified,
    /// The entry disappeared from the source.
    Removed,
}

/// A change trigger sent to subscribed applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeEvent {
    /// The warehouse collection that changed.
    pub collection: String,
    /// The stable entry key (EC number / accession).
    pub entry_key: String,
    /// The kind of change.
    pub kind: ChangeKind,
}

/// Fan-out hub delivering [`ChangeEvent`]s to any number of subscribers.
#[derive(Debug, Default)]
pub struct TriggerHub {
    subscribers: Mutex<Vec<Sender<ChangeEvent>>>,
}

impl TriggerHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        TriggerHub::default()
    }

    /// Subscribes; the returned receiver sees every subsequent event.
    pub fn subscribe(&self) -> Receiver<ChangeEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Delivers `event` to all live subscribers, pruning closed ones.
    pub fn notify(&self, event: &ChangeEvent) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

/// Diffs two keyed snapshots (entry key → serialized entry), producing the
/// per-entry change set. Unchanged entries produce nothing — that is the
/// "without … added twice" half of the §2 requirement.
pub fn diff_snapshots(
    old: &BTreeMap<String, String>,
    new: &BTreeMap<String, String>,
) -> Vec<(String, ChangeKind)> {
    let mut changes = Vec::new();
    for (key, old_src) in old {
        match new.get(key) {
            None => changes.push((key.clone(), ChangeKind::Removed)),
            Some(new_src) if new_src != old_src => {
                changes.push((key.clone(), ChangeKind::Modified));
            }
            Some(_) => {}
        }
    }
    for key in new.keys() {
        if !old.contains_key(key) {
            changes.push((key.clone(), ChangeKind::Added));
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn diff_detects_all_change_kinds() {
        let old = snap(&[("a", "1"), ("b", "2"), ("c", "3")]);
        let new = snap(&[("a", "1"), ("b", "CHANGED"), ("d", "4")]);
        let mut changes = diff_snapshots(&old, &new);
        changes.sort();
        assert_eq!(
            changes,
            vec![
                ("b".to_string(), ChangeKind::Modified),
                ("c".to_string(), ChangeKind::Removed),
                ("d".to_string(), ChangeKind::Added),
            ]
        );
    }

    #[test]
    fn identical_snapshots_produce_no_changes() {
        let s = snap(&[("a", "1"), ("b", "2")]);
        assert!(diff_snapshots(&s, &s).is_empty());
    }

    #[test]
    fn empty_to_full_is_all_added() {
        let changes = diff_snapshots(&BTreeMap::new(), &snap(&[("a", "1"), ("b", "2")]));
        assert_eq!(changes.len(), 2);
        assert!(changes.iter().all(|(_, k)| *k == ChangeKind::Added));
    }

    #[test]
    fn triggers_reach_all_subscribers() {
        let hub = TriggerHub::new();
        let rx1 = hub.subscribe();
        let rx2 = hub.subscribe();
        let event = ChangeEvent {
            collection: "hlx_enzyme".into(),
            entry_key: "1.1.1.1".into(),
            kind: ChangeKind::Modified,
        };
        hub.notify(&event);
        assert_eq!(rx1.try_recv().unwrap(), event);
        assert_eq!(rx2.try_recv().unwrap(), event);
        assert!(rx1.try_recv().is_err()); // exactly once each
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let hub = TriggerHub::new();
        let rx = hub.subscribe();
        drop(rx);
        let rx2 = hub.subscribe();
        hub.notify(&ChangeEvent {
            collection: "c".into(),
            entry_key: "k".into(),
            kind: ChangeKind::Added,
        });
        assert_eq!(hub.subscriber_count(), 1);
        assert_eq!(rx2.try_recv().unwrap().entry_key, "k");
    }
}
