//! Swiss-Prot → XML.
//!
//! The paper's Figure 8 keyword query returns
//! `$b//sprot_accession_number` from `document("hlx_sprot.all")/
//! hlx_n_sequence`; we root Swiss-Prot documents at `hlx_p_sequence`
//! (protein sequence) with the same `db_entry` shape, keeping the
//! accession addressable as `//sprot_accession_number`.

use xomatiq_bioflat::SwissProtEntry;
use xomatiq_xml::dtd::{parse_dtd, Dtd};
use xomatiq_xml::Document;

use crate::error::HoundResult;

/// The DTD of warehoused Swiss-Prot documents.
pub const SWISSPROT_DTD_TEXT: &str = r#"<!ELEMENT hlx_p_sequence (db_entry)>
<!ELEMENT db_entry (sprot_accession_number,entry_name,description?,gene?,
  organism?,keyword_list,xref_list,sequence?)>
<!ELEMENT sprot_accession_number (#PCDATA)>
<!ELEMENT entry_name (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT gene (#PCDATA)>
<!ELEMENT organism (#PCDATA)>
<!ELEMENT keyword_list (keyword*)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT xref_list (xref*)>
<!ELEMENT xref EMPTY>
<!ATTLIST xref
  database CDATA #REQUIRED
  xref_id CDATA #REQUIRED
>
<!ELEMENT sequence (#PCDATA)>
<!ATTLIST sequence
  length NMTOKEN #REQUIRED
>
"#;

/// Parses [`SWISSPROT_DTD_TEXT`] into a [`Dtd`].
pub fn swissprot_dtd() -> Dtd {
    parse_dtd(SWISSPROT_DTD_TEXT).expect("the Swiss-Prot DTD is well-formed")
}

/// Converts one Swiss-Prot entry to its XML document.
pub fn swissprot_to_xml(entry: &SwissProtEntry) -> HoundResult<Document> {
    let (mut doc, root) = Document::with_root("hlx_p_sequence")?;
    let db_entry = doc.append_element(root, "db_entry")?;

    let acc = doc.append_element(db_entry, "sprot_accession_number")?;
    doc.append_text(acc, &entry.accession);
    let name = doc.append_element(db_entry, "entry_name")?;
    doc.append_text(name, &entry.name);

    if !entry.description.is_empty() {
        let el = doc.append_element(db_entry, "description")?;
        doc.append_text(el, &entry.description);
    }
    if !entry.gene.is_empty() {
        let el = doc.append_element(db_entry, "gene")?;
        doc.append_text(el, &entry.gene);
    }
    if !entry.organism.is_empty() {
        let el = doc.append_element(db_entry, "organism")?;
        doc.append_text(el, &entry.organism);
    }

    let kw_list = doc.append_element(db_entry, "keyword_list")?;
    for kw in &entry.keywords {
        let el = doc.append_element(kw_list, "keyword")?;
        doc.append_text(el, kw);
    }

    let xref_list = doc.append_element(db_entry, "xref_list")?;
    for x in &entry.xrefs {
        let el = doc.append_element(xref_list, "xref")?;
        doc.set_attribute(el, "database", &x.database)?;
        doc.set_attribute(el, "xref_id", &x.id)?;
    }

    if !entry.sequence.is_empty() {
        let seq = doc.append_element(db_entry, "sequence")?;
        doc.set_attribute(seq, "length", &entry.sequence.len().to_string())?;
        doc.append_text(seq, &entry.sequence);
    }

    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_bioflat::swissprot::DbXref;
    use xomatiq_xml::dtd::validate;

    fn sample() -> SwissProtEntry {
        SwissProtEntry {
            name: "AMD_BOVIN".into(),
            accession: "P10731".into(),
            description: "Peptidylglycine alpha-amidating monooxygenase.".into(),
            gene: "PAM".into(),
            organism: "Bos taurus".into(),
            keywords: vec!["Monooxygenase".into(), "Copper".into()],
            xrefs: vec![DbXref {
                database: "EMBL".into(),
                id: "AB000001".into(),
            }],
            sequence: "MAGRA".repeat(10),
        }
    }

    #[test]
    fn produces_figure8_addressable_shape() {
        let doc = swissprot_to_xml(&sample()).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.node(root).name(), Some("hlx_p_sequence"));
        let entry = doc.child_element(root, "db_entry").unwrap();
        let acc = doc.child_element(entry, "sprot_accession_number").unwrap();
        assert_eq!(doc.text_content(acc), "P10731");
        let xl = doc.child_element(entry, "xref_list").unwrap();
        let x = doc.child_element(xl, "xref").unwrap();
        assert_eq!(doc.node(x).attribute("database"), Some("EMBL"));
        assert_eq!(doc.node(x).attribute("xref_id"), Some("AB000001"));
    }

    #[test]
    fn validates_against_dtd() {
        validate(&swissprot_to_xml(&sample()).unwrap(), &swissprot_dtd()).unwrap();
        let minimal = SwissProtEntry {
            name: "X_Y".into(),
            accession: "P1".into(),
            ..SwissProtEntry::default()
        };
        validate(&swissprot_to_xml(&minimal).unwrap(), &swissprot_dtd()).unwrap();
    }
}
