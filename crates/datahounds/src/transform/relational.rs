//! Wrapping relational tables as XML documents.
//!
//! Figure 1 of the paper shows Data Hounds ingesting from two source
//! shapes: flat files and an RDBMS ("programmable mechanisms to facilitate
//! the transport, wrapping and conversion of remotely located relational
//! tables and flat-files"). This module is the RDBMS wrapper: given a
//! remote table (simulated by any [`Database`]), it derives a DTD from the
//! table schema and converts each row into one `db_entry` document, ready
//! for [`crate::DataHounds::load_xml_source`].

use xomatiq_relstore::{DataType, Database, Value};
use xomatiq_xml::name::sanitize_name;
use xomatiq_xml::Document;

use crate::error::{HoundError, HoundResult};

/// Derives the DTD for a wrapped table: a root element named
/// `hlx_<table>`, one `db_entry` per row, one leaf element per column.
pub fn relational_dtd_text(root: &str, columns: &[(String, DataType)]) -> String {
    let mut out = String::new();
    let column_names: Vec<String> = columns
        .iter()
        .map(|(name, _)| sanitize_name(name))
        .collect();
    out.push_str(&format!("<!ELEMENT {root} (db_entry)>\n"));
    out.push_str(&format!(
        "<!ELEMENT db_entry ({})>\n",
        column_names
            .iter()
            .map(|c| format!("{c}?"))
            .collect::<Vec<_>>()
            .join(",")
    ));
    for name in &column_names {
        out.push_str(&format!("<!ELEMENT {name} (#PCDATA)>\n"));
    }
    out
}

/// Wraps every row of `table` in `remote` as an XML document. `key_column`
/// names the column whose value becomes the entry key (it must be unique
/// in the table — typically the primary key).
///
/// Returns the derived DTD text and the `(key, document)` pairs.
pub fn wrap_relational_table(
    remote: &Database,
    table: &str,
    key_column: &str,
) -> HoundResult<(String, Vec<(String, Document)>)> {
    let rs = remote.query(&format!("SELECT * FROM {table}")).run()?.rows;
    let columns: Vec<String> = rs.columns().to_vec();
    let key_pos = columns
        .iter()
        .position(|c| c.eq_ignore_ascii_case(key_column))
        .ok_or_else(|| {
            HoundError::Pipeline(format!("table {table} has no column {key_column:?}"))
        })?;
    // Recover the declared types for the DTD comment trail; values carry
    // their own runtime types so Text is a safe fallback.
    let typed: Vec<(String, DataType)> = columns
        .iter()
        .map(|c| (c.clone(), DataType::Text))
        .collect();
    let root = format!("hlx_{}", sanitize_name(table));
    let dtd_text = relational_dtd_text(&root, &typed);

    let mut docs = Vec::with_capacity(rs.rows().len());
    let mut seen_keys = std::collections::HashSet::new();
    for row in rs.rows() {
        let key = row[key_pos].to_string();
        if !seen_keys.insert(key.clone()) {
            return Err(HoundError::Pipeline(format!(
                "key column {key_column:?} is not unique: duplicate {key:?}"
            )));
        }
        let (mut doc, root_el) = Document::with_root(&root)?;
        let entry = doc.append_element(root_el, "db_entry")?;
        for (i, column) in columns.iter().enumerate() {
            if matches!(row[i], Value::Null) {
                continue; // NULL columns are simply absent, per the DTD's `?`
            }
            let el = doc.append_element(entry, &sanitize_name(column))?;
            doc.append_text(el, &row[i].to_string());
        }
        docs.push((key, doc));
    }
    Ok((dtd_text, docs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_xml::dtd::{parse_dtd, validate};

    fn remote() -> Database {
        let db = Database::in_memory();
        db.query("CREATE TABLE patients (mrn TEXT, diagnosis TEXT, age INT, score FLOAT)")
            .run()
            .unwrap();
        db.query(
            "INSERT INTO patients VALUES \
             ('MRN001', 'Alkaptonuria', 34, 0.8), \
             ('MRN002', 'Phenylketonuria', 7, NULL), \
             ('MRN003', NULL, 61, 0.3)",
        )
        .run()
        .unwrap();
        db
    }

    #[test]
    fn wraps_rows_as_valid_documents() {
        let db = remote();
        let (dtd_text, docs) = wrap_relational_table(&db, "patients", "mrn").unwrap();
        assert_eq!(docs.len(), 3);
        let dtd = parse_dtd(&dtd_text).unwrap();
        assert_eq!(dtd.root(), Some("hlx_patients"));
        for (key, doc) in &docs {
            validate(doc, &dtd).unwrap_or_else(|e| panic!("{key}: {e}"));
        }
        // NULL columns are absent.
        let (_, doc3) = &docs[2];
        let root = doc3.root_element().unwrap();
        let entry = doc3.child_element(root, "db_entry").unwrap();
        assert!(doc3.child_element(entry, "diagnosis").is_none());
        assert!(doc3.child_element(entry, "age").is_some());
    }

    #[test]
    fn numeric_values_become_text_content() {
        let db = remote();
        let (_, docs) = wrap_relational_table(&db, "patients", "mrn").unwrap();
        let (_, doc) = &docs[0];
        let root = doc.root_element().unwrap();
        let entry = doc.child_element(root, "db_entry").unwrap();
        let age = doc.child_element(entry, "age").unwrap();
        assert_eq!(doc.text_content(age), "34");
    }

    #[test]
    fn duplicate_keys_rejected() {
        let db = remote();
        db.query("INSERT INTO patients VALUES (?, ?, ?, ?)")
            .bind("MRN001")
            .bind("dup")
            .bind(1i64)
            .bind(1.0f64)
            .run()
            .unwrap();
        assert!(wrap_relational_table(&db, "patients", "mrn").is_err());
    }

    #[test]
    fn unknown_table_or_key_rejected() {
        let db = remote();
        assert!(wrap_relational_table(&db, "missing", "mrn").is_err());
        assert!(wrap_relational_table(&db, "patients", "nope").is_err());
    }
}
