//! InterPro entries → XML (an XML databank: the documents ARE the source
//! form, so this transformer also defines the databank's DTD).

use xomatiq_bioflat::interpro::InterProEntry;
use xomatiq_xml::dtd::{parse_dtd, Dtd};
use xomatiq_xml::Document;

use crate::error::HoundResult;

/// The DTD of warehoused InterPro documents.
pub const INTERPRO_DTD_TEXT: &str = r#"<!ELEMENT hlx_interpro (db_entry)>
<!ELEMENT db_entry (interpro_id,entry_name,entry_type,abstract?,
  signature_list,go_list,protein_match_list)>
<!ELEMENT interpro_id (#PCDATA)>
<!ELEMENT entry_name (#PCDATA)>
<!ELEMENT entry_type (#PCDATA)>
<!ELEMENT abstract (#PCDATA)>
<!ELEMENT signature_list (signature*)>
<!ELEMENT signature EMPTY>
<!ATTLIST signature
  database CDATA #REQUIRED
  signature_accession NMTOKEN #REQUIRED
>
<!ELEMENT go_list (go_term*)>
<!ELEMENT go_term (#PCDATA)>
<!ATTLIST go_term
  go_id CDATA #REQUIRED
  category CDATA #REQUIRED
>
<!ELEMENT protein_match_list (protein_match*)>
<!ELEMENT protein_match (#PCDATA)>
"#;

/// Parses [`INTERPRO_DTD_TEXT`] into a [`Dtd`].
pub fn interpro_dtd() -> Dtd {
    parse_dtd(INTERPRO_DTD_TEXT).expect("the InterPro DTD is well-formed")
}

/// Converts one InterPro entry to its XML document.
pub fn interpro_to_xml(entry: &InterProEntry) -> HoundResult<Document> {
    let (mut doc, root) = Document::with_root("hlx_interpro")?;
    let db_entry = doc.append_element(root, "db_entry")?;

    let id = doc.append_element(db_entry, "interpro_id")?;
    doc.append_text(id, &entry.id);
    let name = doc.append_element(db_entry, "entry_name")?;
    doc.append_text(name, &entry.name);
    let ty = doc.append_element(db_entry, "entry_type")?;
    doc.append_text(ty, &entry.entry_type);
    if !entry.abstract_text.is_empty() {
        let ab = doc.append_element(db_entry, "abstract")?;
        doc.append_text(ab, &entry.abstract_text);
    }

    let sig_list = doc.append_element(db_entry, "signature_list")?;
    for sig in &entry.signatures {
        let el = doc.append_element(sig_list, "signature")?;
        doc.set_attribute(el, "database", &sig.database)?;
        doc.set_attribute(el, "signature_accession", &sig.accession)?;
    }

    let go_list = doc.append_element(db_entry, "go_list")?;
    for go in &entry.go_terms {
        let el = doc.append_element(go_list, "go_term")?;
        doc.set_attribute(el, "go_id", &go.id)?;
        doc.set_attribute(el, "category", &go.category)?;
        doc.append_text(el, &go.name);
    }

    let pm_list = doc.append_element(db_entry, "protein_match_list")?;
    for acc in &entry.protein_matches {
        let el = doc.append_element(pm_list, "protein_match")?;
        doc.append_text(el, acc);
    }

    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_bioflat::interpro::generate_interpro;
    use xomatiq_xml::dtd::validate;

    #[test]
    fn generated_entries_validate() {
        let dtd = interpro_dtd();
        let accs = vec!["P00001".to_string()];
        for e in generate_interpro(30, 5, &accs) {
            let doc = interpro_to_xml(&e).unwrap();
            validate(&doc, &dtd).unwrap_or_else(|err| panic!("{}: {err}", e.id));
        }
    }

    #[test]
    fn document_shape() {
        let entries = generate_interpro(1, 2, &["P12345".to_string()]);
        let doc = interpro_to_xml(&entries[0]).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.node(root).name(), Some("hlx_interpro"));
        let entry = doc.child_element(root, "db_entry").unwrap();
        let id = doc.child_element(entry, "interpro_id").unwrap();
        assert_eq!(doc.text_content(id), "IPR000001");
        let sigs = doc.child_element(entry, "signature_list").unwrap();
        assert!(doc.child_elements(sigs).count() >= 1);
    }
}
