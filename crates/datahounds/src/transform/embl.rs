//! EMBL → XML.
//!
//! The paper's queries address EMBL documents as
//! `document("hlx_embl.inv")/hlx_n_sequence` with entries under
//! `db_entry`, an `embl_accession_number`, a `description`, and feature
//! `qualifier` elements carrying a `qualifier_type` attribute (Figures 8
//! and 11). This transformer produces exactly that shape; the sequence
//! block lands in a dedicated `sequence` element so the warehouse can keep
//! its sequence/non-sequence distinction (§2.2).

use xomatiq_bioflat::EmblEntry;
use xomatiq_xml::dtd::{parse_dtd, Dtd};
use xomatiq_xml::Document;

use crate::error::HoundResult;

/// The DTD of warehoused EMBL documents.
pub const EMBL_DTD_TEXT: &str = r#"<!ELEMENT hlx_n_sequence (db_entry)>
<!ELEMENT db_entry (embl_accession_number,description?,molecule?,division?,
  organism?,keyword_list,feature_table,sequence?)>
<!ELEMENT embl_accession_number (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT molecule (#PCDATA)>
<!ELEMENT division (#PCDATA)>
<!ELEMENT organism (#PCDATA)>
<!ELEMENT keyword_list (keyword*)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT feature_table (feature*)>
<!ELEMENT feature (qualifier*)>
<!ATTLIST feature
  feature_key CDATA #REQUIRED
  location CDATA #REQUIRED
>
<!ELEMENT qualifier (#PCDATA)>
<!ATTLIST qualifier
  qualifier_type CDATA #REQUIRED
>
<!ELEMENT sequence (#PCDATA)>
<!ATTLIST sequence
  length NMTOKEN #REQUIRED
>
"#;

/// Parses [`EMBL_DTD_TEXT`] into a [`Dtd`].
pub fn embl_dtd() -> Dtd {
    parse_dtd(EMBL_DTD_TEXT).expect("the EMBL DTD is well-formed")
}

/// The qualifier-type label for a flat-file qualifier name: the paper's
/// Figure 11 matches `@qualifier_type = "EC number"`, i.e. underscores in
/// the flat format become spaces in the attribute.
pub fn qualifier_type_label(name: &str) -> String {
    name.replace('_', " ")
}

/// Converts one EMBL entry to its XML document.
pub fn embl_to_xml(entry: &EmblEntry) -> HoundResult<Document> {
    let (mut doc, root) = Document::with_root("hlx_n_sequence")?;
    let db_entry = doc.append_element(root, "db_entry")?;

    let acc = doc.append_element(db_entry, "embl_accession_number")?;
    doc.append_text(acc, &entry.accession);

    if !entry.description.is_empty() {
        let de = doc.append_element(db_entry, "description")?;
        doc.append_text(de, &entry.description);
    }
    if !entry.molecule.is_empty() {
        let el = doc.append_element(db_entry, "molecule")?;
        doc.append_text(el, &entry.molecule);
    }
    if !entry.division.is_empty() {
        let el = doc.append_element(db_entry, "division")?;
        doc.append_text(el, &entry.division);
    }
    if !entry.organism.is_empty() {
        let el = doc.append_element(db_entry, "organism")?;
        doc.append_text(el, &entry.organism);
    }

    let kw_list = doc.append_element(db_entry, "keyword_list")?;
    for kw in &entry.keywords {
        let el = doc.append_element(kw_list, "keyword")?;
        doc.append_text(el, kw);
    }

    let ft = doc.append_element(db_entry, "feature_table")?;
    for feature in &entry.features {
        let fe = doc.append_element(ft, "feature")?;
        doc.set_attribute(fe, "feature_key", &feature.key)?;
        doc.set_attribute(fe, "location", &feature.location)?;
        for q in &feature.qualifiers {
            let qe = doc.append_element(fe, "qualifier")?;
            doc.set_attribute(qe, "qualifier_type", &qualifier_type_label(&q.name))?;
            if !q.value.is_empty() {
                doc.append_text(qe, &q.value);
            }
        }
    }

    if !entry.sequence.is_empty() {
        let seq = doc.append_element(db_entry, "sequence")?;
        doc.set_attribute(seq, "length", &entry.sequence.len().to_string())?;
        doc.append_text(seq, &entry.sequence);
    }

    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_bioflat::embl::{Feature, Qualifier};
    use xomatiq_xml::dtd::validate;
    use xomatiq_xml::writer::to_string_pretty;

    fn sample() -> EmblEntry {
        EmblEntry {
            accession: "AB000001".into(),
            molecule: "mRNA".into(),
            division: "INV".into(),
            description: "Drosophila melanogaster mRNA for cdc6.".into(),
            keywords: vec!["cdc6".into(), "cell cycle".into()],
            organism: "Drosophila melanogaster".into(),
            features: vec![Feature {
                key: "CDS".into(),
                location: "1..120".into(),
                qualifiers: vec![
                    Qualifier {
                        name: "gene".into(),
                        value: "cdc6".into(),
                    },
                    Qualifier {
                        name: "EC_number".into(),
                        value: "1.14.17.3".into(),
                    },
                ],
            }],
            sequence: "acgt".repeat(30),
        }
    }

    #[test]
    fn produces_figure11_addressable_shape() {
        let doc = embl_to_xml(&sample()).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.node(root).name(), Some("hlx_n_sequence"));
        let entry = doc.child_element(root, "db_entry").unwrap();
        let acc = doc.child_element(entry, "embl_accession_number").unwrap();
        assert_eq!(doc.text_content(acc), "AB000001");
        // The join predicate of Figure 11: //qualifier[@qualifier_type="EC number"].
        let ft = doc.child_element(entry, "feature_table").unwrap();
        let feature = doc.child_element(ft, "feature").unwrap();
        let quals: Vec<_> = doc.child_elements(feature).collect();
        assert_eq!(quals.len(), 2);
        assert_eq!(
            doc.node(quals[1]).attribute("qualifier_type"),
            Some("EC number")
        );
        assert_eq!(doc.text_content(quals[1]), "1.14.17.3");
    }

    #[test]
    fn validates_against_dtd() {
        validate(&embl_to_xml(&sample()).unwrap(), &embl_dtd()).unwrap();
        // Minimal entry too.
        let minimal = EmblEntry {
            accession: "X1".into(),
            ..EmblEntry::default()
        };
        validate(&embl_to_xml(&minimal).unwrap(), &embl_dtd()).unwrap();
    }

    #[test]
    fn sequence_element_carries_length_attribute() {
        let doc = embl_to_xml(&sample()).unwrap();
        let xml = to_string_pretty(&doc);
        assert!(xml.contains("<sequence length=\"120\">"), "{xml}");
    }

    #[test]
    fn qualifier_label_mapping() {
        assert_eq!(qualifier_type_label("EC_number"), "EC number");
        assert_eq!(qualifier_type_label("gene"), "gene");
    }
}
