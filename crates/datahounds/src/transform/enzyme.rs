//! ENZYME → XML, reproducing Figures 5 (DTD) and 6 (document) exactly.

use xomatiq_bioflat::EnzymeEntry;
use xomatiq_xml::dtd::{parse_dtd, Dtd};
use xomatiq_xml::{Document, NodeId};

use crate::error::HoundResult;

/// The DTD of the ENZYME database — the paper's Figure 5, with the
/// figure's space-separated names rendered in the underscore form a real
/// DTD requires (`db entry` → `db_entry`).
pub const ENZYME_DTD_TEXT: &str = r#"<!ELEMENT hlx_enzyme (db_entry)>
<!ELEMENT db_entry (enzyme_id,enzyme_description+,alternate_name_list,
  catalytic_activity*,cofactor_list,comment_list,prosite_reference*,
  swissprot_reference_list,disease_list)>
<!ELEMENT enzyme_id (#PCDATA)>
<!ELEMENT enzyme_description (#PCDATA)>
<!ELEMENT alternate_name_list (alternate_name*)>
<!ELEMENT alternate_name (#PCDATA)>
<!ELEMENT catalytic_activity (#PCDATA)>
<!ELEMENT cofactor_list (cofactor*)>
<!ELEMENT cofactor (#PCDATA)>
<!ELEMENT comment_list (comment*)>
<!ELEMENT comment (#PCDATA)>
<!ELEMENT prosite_reference (#PCDATA)>
<!ATTLIST prosite_reference
  prosite_accession_number NMTOKEN #REQUIRED
>
<!ELEMENT swissprot_reference_list (reference*)>
<!ELEMENT reference (#PCDATA)>
<!ATTLIST reference
  name CDATA #REQUIRED
  swissprot_accession_number NMTOKEN #REQUIRED
>
<!ELEMENT disease_list (disease*)>
<!ELEMENT disease (#PCDATA)>
<!ATTLIST disease
  mim_id CDATA #REQUIRED
>
"#;

/// Parses [`ENZYME_DTD_TEXT`] into a [`Dtd`].
pub fn enzyme_dtd() -> Dtd {
    parse_dtd(ENZYME_DTD_TEXT).expect("the Figure 5 DTD is well-formed")
}

/// Converts one ENZYME entry to its XML document (the paper's Figure 6).
pub fn enzyme_to_xml(entry: &EnzymeEntry) -> HoundResult<Document> {
    let (mut doc, root) = Document::with_root("hlx_enzyme")?;
    let db_entry = doc.append_element(root, "db_entry")?;

    append_text_element(&mut doc, db_entry, "enzyme_id", &entry.id)?;
    for de in &entry.descriptions {
        append_text_element(&mut doc, db_entry, "enzyme_description", de)?;
    }

    let an_list = doc.append_element(db_entry, "alternate_name_list")?;
    for an in &entry.alternate_names {
        append_text_element(&mut doc, an_list, "alternate_name", an)?;
    }

    for ca in &entry.catalytic_activities {
        append_text_element(&mut doc, db_entry, "catalytic_activity", ca)?;
    }

    let cf_list = doc.append_element(db_entry, "cofactor_list")?;
    for cf in &entry.cofactors {
        append_text_element(&mut doc, cf_list, "cofactor", cf)?;
    }

    let cc_list = doc.append_element(db_entry, "comment_list")?;
    for cc in &entry.comments {
        append_text_element(&mut doc, cc_list, "comment", cc)?;
    }

    for pr in &entry.prosite_refs {
        let el = doc.append_element(db_entry, "prosite_reference")?;
        doc.set_attribute(el, "prosite_accession_number", pr)?;
    }

    let dr_list = doc.append_element(db_entry, "swissprot_reference_list")?;
    for dr in &entry.swissprot_refs {
        let el = doc.append_element(dr_list, "reference")?;
        doc.set_attribute(el, "name", &dr.name)?;
        doc.set_attribute(el, "swissprot_accession_number", &dr.accession)?;
    }

    let di_list = doc.append_element(db_entry, "disease_list")?;
    for di in &entry.diseases {
        let el = doc.append_element(di_list, "disease")?;
        doc.set_attribute(el, "mim_id", &di.mim_id)?;
        doc.append_text(el, &di.description);
    }

    Ok(doc)
}

fn append_text_element(
    doc: &mut Document,
    parent: NodeId,
    name: &str,
    text: &str,
) -> HoundResult<NodeId> {
    let el = doc.append_element(parent, name)?;
    if !text.is_empty() {
        doc.append_text(el, text);
    }
    Ok(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_bioflat::enzyme::{parse_enzyme_file, FIGURE2_SAMPLE};
    use xomatiq_xml::dtd::validate;
    use xomatiq_xml::writer::to_string_pretty;

    fn figure2_entry() -> EnzymeEntry {
        parse_enzyme_file(FIGURE2_SAMPLE).unwrap().remove(0)
    }

    #[test]
    fn figure6_structure() {
        let doc = enzyme_to_xml(&figure2_entry()).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.node(root).name(), Some("hlx_enzyme"));
        let entry = doc.child_element(root, "db_entry").unwrap();
        let id = doc.child_element(entry, "enzyme_id").unwrap();
        assert_eq!(doc.text_content(id), "1.14.17.3");
        let desc = doc.child_element(entry, "enzyme_description").unwrap();
        assert_eq!(doc.text_content(desc), "Peptidylglycine monooxygenase.");
        // Two alternate names under the list element.
        let an_list = doc.child_element(entry, "alternate_name_list").unwrap();
        assert_eq!(doc.child_elements(an_list).count(), 2);
        // Two catalytic_activity elements — one per CA line, as Figure 6.
        let cas: Vec<NodeId> = doc
            .child_elements(entry)
            .filter(|e| doc.node(*e).name() == Some("catalytic_activity"))
            .collect();
        assert_eq!(cas.len(), 2);
        assert!(doc
            .text_content(cas[0])
            .starts_with("Peptidylglycine + ascorbate"));
        // Cofactor.
        let cf_list = doc.child_element(entry, "cofactor_list").unwrap();
        let cf = doc.child_element(cf_list, "cofactor").unwrap();
        assert_eq!(doc.text_content(cf), "Copper");
        // prosite_reference carries its accession as an attribute.
        let pr = doc.child_element(entry, "prosite_reference").unwrap();
        assert_eq!(
            doc.node(pr).attribute("prosite_accession_number"),
            Some("PDOC00080")
        );
        // Five Swiss-Prot references with name + accession attributes.
        let dr_list = doc
            .child_element(entry, "swissprot_reference_list")
            .unwrap();
        let refs: Vec<NodeId> = doc.child_elements(dr_list).collect();
        assert_eq!(refs.len(), 5);
        assert_eq!(doc.node(refs[0]).attribute("name"), Some("AMD_BOVIN"));
        assert_eq!(
            doc.node(refs[0]).attribute("swissprot_accession_number"),
            Some("P10731")
        );
        // Empty disease list is present (Figure 6 shows `<disease_list/>`).
        let di = doc.child_element(entry, "disease_list").unwrap();
        assert_eq!(doc.children(di).count(), 0);
    }

    #[test]
    fn figure6_document_is_valid_per_figure5_dtd() {
        let doc = enzyme_to_xml(&figure2_entry()).unwrap();
        validate(&doc, &enzyme_dtd()).unwrap();
    }

    #[test]
    fn serialized_form_contains_figure6_landmarks() {
        let doc = enzyme_to_xml(&figure2_entry()).unwrap();
        let xml = to_string_pretty(&doc);
        for needle in [
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>",
            "<hlx_enzyme>",
            "<enzyme_id>1.14.17.3</enzyme_id>",
            "<alternate_name>Peptidyl alpha-amidating enzyme</alternate_name>",
            "<cofactor>Copper</cofactor>",
            "prosite_accession_number=\"PDOC00080\"",
            "name=\"AMD_RAT\" swissprot_accession_number=\"P14925\"",
            "<disease_list/>",
        ] {
            assert!(xml.contains(needle), "missing {needle:?} in:\n{xml}");
        }
    }

    #[test]
    fn dtd_text_matches_parsed_model() {
        let dtd = enzyme_dtd();
        assert_eq!(dtd.root(), Some("hlx_enzyme"));
        // Leaf elements carry PCDATA only.
        let leaves = dtd.leaf_elements();
        for l in ["enzyme_id", "cofactor", "comment", "alternate_name"] {
            assert!(leaves.contains(&l), "{l} should be a leaf");
        }
    }

    #[test]
    fn entry_with_disease_validates() {
        let entry = EnzymeEntry {
            id: "1.2.3.4".into(),
            descriptions: vec!["Some enzyme.".into()],
            diseases: vec![xomatiq_bioflat::enzyme::DiseaseRef {
                description: "Alkaptonuria".into(),
                mim_id: "203500".into(),
            }],
            ..EnzymeEntry::default()
        };
        let doc = enzyme_to_xml(&entry).unwrap();
        validate(&doc, &enzyme_dtd()).unwrap();
        let xml = to_string_pretty(&doc);
        assert!(
            xml.contains("<disease mim_id=\"203500\">Alkaptonuria</disease>"),
            "{xml}"
        );
    }
}
