//! The XML-Transformer (paper §2.1).
//!
//! "As biological databases are rarely exactly the same in the structure,
//! converting each one requires a special transformer" — so each source
//! gets its own module here. Every transformer publishes a DTD (the
//! contract XomatiQ's visual interface displays, §3.1) and produces one
//! XML document per source entry ("our algorithm produces one XML file per
//! entry in the sample data"), valid with respect to that DTD.

pub mod embl;
pub mod enzyme;
pub mod interpro;
pub mod relational;
pub mod swissprot;

pub use embl::{embl_dtd, embl_to_xml};
pub use enzyme::{enzyme_dtd, enzyme_to_xml};
pub use interpro::{interpro_dtd, interpro_to_xml};
pub use relational::wrap_relational_table;
pub use swissprot::{swissprot_dtd, swissprot_to_xml};

use xomatiq_xml::dtd::Dtd;
use xomatiq_xml::Document;

use crate::error::HoundResult;

/// A per-source XML transformer: DTD plus entry conversion.
pub trait XmlTransformer {
    /// The typed flat record this transformer consumes.
    type Entry;

    /// The DTD every produced document conforms to.
    fn dtd(&self) -> Dtd;

    /// Converts one entry to an XML document.
    fn to_xml(&self, entry: &Self::Entry) -> HoundResult<Document>;

    /// The stable key identifying an entry across updates (EC number or
    /// accession) — what the incremental updater diffs on.
    fn entry_key(&self, entry: &Self::Entry) -> String;
}

/// Transformer for the ENZYME database.
pub struct EnzymeTransformer;

impl XmlTransformer for EnzymeTransformer {
    type Entry = xomatiq_bioflat::EnzymeEntry;

    fn dtd(&self) -> Dtd {
        enzyme_dtd()
    }

    fn to_xml(&self, entry: &Self::Entry) -> HoundResult<Document> {
        enzyme_to_xml(entry)
    }

    fn entry_key(&self, entry: &Self::Entry) -> String {
        entry.id.clone()
    }
}

/// Transformer for the EMBL nucleotide database.
pub struct EmblTransformer;

impl XmlTransformer for EmblTransformer {
    type Entry = xomatiq_bioflat::EmblEntry;

    fn dtd(&self) -> Dtd {
        embl_dtd()
    }

    fn to_xml(&self, entry: &Self::Entry) -> HoundResult<Document> {
        embl_to_xml(entry)
    }

    fn entry_key(&self, entry: &Self::Entry) -> String {
        entry.accession.clone()
    }
}

/// Transformer for the Swiss-Prot protein knowledge base.
pub struct SwissProtTransformer;

impl XmlTransformer for SwissProtTransformer {
    type Entry = xomatiq_bioflat::SwissProtEntry;

    fn dtd(&self) -> Dtd {
        swissprot_dtd()
    }

    fn to_xml(&self, entry: &Self::Entry) -> HoundResult<Document> {
        swissprot_to_xml(entry)
    }

    fn entry_key(&self, entry: &Self::Entry) -> String {
        entry.accession.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_bioflat::{Corpus, CorpusSpec};
    use xomatiq_xml::dtd::validate;

    /// Every document any transformer produces validates against its DTD —
    /// the §1.1 promise ("creating valid XML documents").
    #[test]
    fn all_transformer_output_is_dtd_valid() {
        let corpus = Corpus::generate(&CorpusSpec::sized(30));
        let enzyme = EnzymeTransformer;
        let dtd = enzyme.dtd();
        for e in &corpus.enzymes {
            let doc = enzyme.to_xml(e).unwrap();
            validate(&doc, &dtd).unwrap_or_else(|err| panic!("enzyme {}: {err}", e.id));
        }
        let embl = EmblTransformer;
        let dtd = embl.dtd();
        for e in &corpus.embl {
            let doc = embl.to_xml(e).unwrap();
            validate(&doc, &dtd).unwrap_or_else(|err| panic!("embl {}: {err}", e.accession));
        }
        let sp = SwissProtTransformer;
        let dtd = sp.dtd();
        for e in &corpus.swissprot {
            let doc = sp.to_xml(e).unwrap();
            validate(&doc, &dtd).unwrap_or_else(|err| panic!("sprot {}: {err}", e.accession));
        }
    }

    #[test]
    fn entry_keys_are_the_primary_identifiers() {
        let corpus = Corpus::generate(&CorpusSpec::sized(3));
        assert_eq!(
            EnzymeTransformer.entry_key(&corpus.enzymes[0]),
            corpus.enzymes[0].id
        );
        assert_eq!(
            EmblTransformer.entry_key(&corpus.embl[0]),
            corpus.embl[0].accession
        );
        assert_eq!(
            SwissProtTransformer.entry_key(&corpus.swissprot[0]),
            corpus.swissprot[0].accession
        );
    }
}
