//! Cached ingestion-metric handles (`datahounds.ingest.*`).
//!
//! Ingestion is entry-granular, not row-granular, so looking the handles
//! up once and ticking them per entry is far below the observability
//! overhead budget (see DESIGN.md "Observability").

use std::sync::OnceLock;
use std::time::Instant;

use xomatiq_obs::{Counter, Histogram};

/// Ingestion metric handles, resolved once.
pub(crate) struct IngestMetrics {
    /// `datahounds.ingest.entries` — entries shredded into the warehouse
    /// (initial loads plus added/modified entries of updates).
    pub entries: Counter,
    /// `datahounds.ingest.quarantined` — dead-letter records written by
    /// the most recent harvests (parse, transform and DTD failures).
    pub quarantined: Counter,
    /// `datahounds.ingest.retries` — harvest fetch attempts beyond the
    /// first (i.e. retried transient failures).
    pub retries: Counter,
    /// `datahounds.ingest.wal_txn` — wall-time of each per-entry atomic
    /// WAL transaction (the `execute_batch` that lands one entry).
    pub wal_txn_ns: Histogram,
}

/// The cached handles.
pub(crate) fn ingest() -> &'static IngestMetrics {
    static CELL: OnceLock<IngestMetrics> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = xomatiq_obs::global();
        IngestMetrics {
            entries: reg.counter("datahounds.ingest.entries"),
            quarantined: reg.counter("datahounds.ingest.quarantined"),
            retries: reg.counter("datahounds.ingest.retries"),
            wal_txn_ns: reg.histogram("datahounds.ingest.wal_txn"),
        }
    })
}

/// Nanoseconds since `start`, saturating.
pub(crate) fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
