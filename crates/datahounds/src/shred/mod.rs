//! The XML2Relational-Transformer (paper §2.2).
//!
//! The paper stores XML in a *generic* relational schema whose exact
//! layout is proprietary; it cites the Edge-table and region-interval
//! literature as its inspiration, so this module implements both and the
//! benches ablate the choice:
//!
//! * [`edge`] — one row per node with `(parent_id, ord)` links, the
//!   classic Edge approach;
//! * [`interval`] — one row per node with `(start, stop, level)` region
//!   encoding (Zhang et al. \[48]), making ancestor/descendant tests a
//!   pair of integer comparisons.
//!
//! Both strategies share the paper's §2.2 design points:
//!
//! * **generic schema** — table shapes are independent of any DTD;
//! * **document order as a data value** — `ord` (and `start`) columns;
//! * **string vs numeric data** — every value row carries a `num_val`
//!   shadow column holding its numeric interpretation when one exists;
//! * **sequence vs non-sequence data** — `sequence` elements are flagged
//!   in `is_seq` so sequence-directed queries can target or avoid them;
//! * **keyword search support** — a keyword index over element text.
//!
//! Element rows additionally carry the concatenated text of their direct
//! text children in `val`, which keeps XQ2SQL's generated SQL flat (no
//! self-join per text access); the discrete text rows still exist for
//! reconstruction and mixed content.

pub mod edge;
pub mod interval;

use xomatiq_relstore::{Database, RelResult, Value};
use xomatiq_xml::Document;

use crate::error::{HoundError, HoundResult};

/// Which generic schema a collection is shredded into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShreddingStrategy {
    /// Parent/ordinal Edge encoding.
    Edge,
    /// Start/stop region-interval encoding.
    Interval,
}

impl ShreddingStrategy {
    /// Stable name used in the warehouse metadata table.
    pub fn name(self) -> &'static str {
        match self {
            ShreddingStrategy::Edge => "edge",
            ShreddingStrategy::Interval => "interval",
        }
    }

    /// Parses a stored strategy name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "edge" => Some(ShreddingStrategy::Edge),
            "interval" => Some(ShreddingStrategy::Interval),
            _ => None,
        }
    }
}

/// Row counts produced by shredding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShredStats {
    /// Documents shredded.
    pub documents: usize,
    /// Element rows inserted.
    pub elements: usize,
    /// Text rows inserted.
    pub texts: usize,
    /// Attribute rows inserted.
    pub attributes: usize,
}

impl std::ops::AddAssign for ShredStats {
    fn add_assign(&mut self, rhs: ShredStats) {
        self.documents += rhs.documents;
        self.elements += rhs.elements;
        self.texts += rhs.texts;
        self.attributes += rhs.attributes;
    }
}

/// Escapes a string for inclusion in a single-quoted SQL literal.
pub fn sql_quote(s: &str) -> String {
    s.replace('\'', "''")
}

/// The table-name prefix for a collection name such as `hlx_embl.inv`.
pub fn collection_prefix(collection: &str) -> String {
    let mut out = String::with_capacity(collection.len());
    for c in collection.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// Creates the tables for a collection under `prefix`.
///
/// The layout is shared between strategies except for the node linkage
/// columns; unused columns hold NULL, which keeps reconstruction and
/// XQ2SQL generation uniform.
pub fn create_collection_tables(db: &Database, prefix: &str) -> RelResult<()> {
    db.query(&format!(
        "CREATE TABLE {prefix}_docs (doc_id INT, entry_key TEXT, root TEXT)"
    ))
    .run()?;
    db.query(&format!(
        "CREATE TABLE {prefix}_nodes (doc_id INT, node_id INT, parent_id INT, ord INT, \
         start INT, stop INT, level INT, kind TEXT, name TEXT, path TEXT, val TEXT, \
         num_val FLOAT, is_seq INT)"
    ))
    .run()?;
    db.query(&format!(
        "CREATE TABLE {prefix}_attrs (doc_id INT, owner INT, aname TEXT, aval TEXT, \
         num_val FLOAT, path TEXT)"
    ))
    .run()?;
    db.query(&format!("CREATE TABLE {prefix}_paths (path TEXT)"))
        .run()?;
    Ok(())
}

/// Creates the paper's §3.2 index set over a collection's tables.
pub fn create_collection_indexes(db: &Database, prefix: &str) -> RelResult<()> {
    db.query(&format!(
        "CREATE INDEX {prefix}_nodes_path ON {prefix}_nodes (path, val)"
    ))
    .run()?;
    db.query(&format!(
        "CREATE INDEX {prefix}_nodes_doc ON {prefix}_nodes (doc_id)"
    ))
    .run()?;
    db.query(&format!(
        "CREATE INDEX {prefix}_attrs_path ON {prefix}_attrs (path, aval)"
    ))
    .run()?;
    db.query(&format!(
        "CREATE INDEX {prefix}_attrs_doc ON {prefix}_attrs (doc_id)"
    ))
    .run()?;
    db.query(&format!(
        "CREATE INDEX {prefix}_docs_doc ON {prefix}_docs (doc_id)"
    ))
    .run()?;
    db.query(&format!(
        "CREATE KEYWORD INDEX {prefix}_nodes_kw ON {prefix}_nodes (val)"
    ))
    .run()?;
    Ok(())
}

/// Drops a collection's tables (used by full re-loads). The keyword
/// summary view, when one was created, must go first — a base table with
/// dependent materialized views refuses to drop.
pub fn drop_collection_tables(db: &Database, prefix: &str) -> RelResult<()> {
    let _ = db
        .query(&format!("DROP MATERIALIZED VIEW {prefix}_kw_summary"))
        .run();
    for table in ["docs", "nodes", "attrs", "paths"] {
        db.query(&format!("DROP TABLE {prefix}_{table}")).run()?;
    }
    Ok(())
}

/// Builds the SQL statements that shred one document into the collection
/// under `prefix`, without executing them.
///
/// Callers fold the returned statements into a larger atomic batch (e.g.
/// together with the collection's `_src` bookkeeping row) so an entry's
/// tuples land in a single WAL transaction. `doc_id` must be unique within
/// the collection; `entry_key` is the stable source identifier (EC number
/// / accession) used by updates.
pub fn shred_statements(
    db: &Database,
    prefix: &str,
    strategy: ShreddingStrategy,
    doc_id: u64,
    entry_key: &str,
    doc: &Document,
) -> HoundResult<(Vec<String>, ShredStats)> {
    let root = doc
        .root_element()
        .ok_or_else(|| HoundError::Pipeline("cannot shred an empty document".into()))?;
    let root_name = doc
        .node(root)
        .name()
        .expect("root is an element")
        .to_string();

    let mut statements: Vec<String> = Vec::new();
    statements.push(format!(
        "INSERT INTO {prefix}_docs VALUES ({doc_id}, '{}', '{}')",
        sql_quote(entry_key),
        sql_quote(&root_name)
    ));

    let rows = match strategy {
        ShreddingStrategy::Edge => edge::emit_rows(doc, doc_id),
        ShreddingStrategy::Interval => interval::emit_rows(doc, doc_id),
    };

    let mut stats = ShredStats {
        documents: 1,
        ..ShredStats::default()
    };
    let mut node_values: Vec<String> = Vec::new();
    let mut attr_values: Vec<String> = Vec::new();
    let mut new_paths: Vec<String> = Vec::new();
    for row in &rows.nodes {
        match row.kind {
            "elem" => stats.elements += 1,
            "text" => stats.texts += 1,
            _ => {}
        }
        node_values.push(row.values_sql(doc_id));
        if row.kind == "elem" {
            new_paths.push(row.path.clone());
        }
    }
    for attr in &rows.attrs {
        stats.attributes += 1;
        attr_values.push(attr.values_sql(doc_id));
        new_paths.push(attr.path.clone());
    }

    if !node_values.is_empty() {
        statements.push(format!(
            "INSERT INTO {prefix}_nodes VALUES {}",
            node_values.join(", ")
        ));
    }
    if !attr_values.is_empty() {
        statements.push(format!(
            "INSERT INTO {prefix}_attrs VALUES {}",
            attr_values.join(", ")
        ));
    }

    // Register any paths not yet in the paths catalog.
    new_paths.sort();
    new_paths.dedup();
    let known: std::collections::HashSet<String> = db
        .query(&format!("SELECT path FROM {prefix}_paths"))
        .run()?
        .rows
        .into_iter()
        .filter_map(|row| row.try_get::<String>("path").ok().flatten())
        .collect();
    let fresh: Vec<String> = new_paths
        .into_iter()
        .filter(|p| !known.contains(p))
        .collect();
    if !fresh.is_empty() {
        let values: Vec<String> = fresh
            .iter()
            .map(|p| format!("('{}')", sql_quote(p)))
            .collect();
        statements.push(format!(
            "INSERT INTO {prefix}_paths VALUES {}",
            values.join(", ")
        ));
    }

    Ok((statements, stats))
}

/// Shreds one document into the collection under `prefix`, executing all
/// of its tuples as a single atomic batch.
pub fn shred_document(
    db: &Database,
    prefix: &str,
    strategy: ShreddingStrategy,
    doc_id: u64,
    entry_key: &str,
    doc: &Document,
) -> HoundResult<ShredStats> {
    let (statements, stats) = shred_statements(db, prefix, strategy, doc_id, entry_key, doc)?;
    let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
    db.execute_batch(&refs)?;
    Ok(stats)
}

/// Builds the SQL statements that delete every tuple belonging to `doc_id`
/// in the collection, without executing them.
pub fn delete_statements(prefix: &str, doc_id: u64) -> Vec<String> {
    vec![
        format!("DELETE FROM {prefix}_nodes WHERE doc_id = {doc_id}"),
        format!("DELETE FROM {prefix}_attrs WHERE doc_id = {doc_id}"),
        format!("DELETE FROM {prefix}_docs WHERE doc_id = {doc_id}"),
    ]
}

/// Deletes every tuple belonging to `doc_id` in the collection.
pub fn delete_document(db: &Database, prefix: &str, doc_id: u64) -> HoundResult<()> {
    let statements = delete_statements(prefix, doc_id);
    let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
    db.execute_batch(&refs)?;
    Ok(())
}

/// Reconstructs document `doc_id` from its tuples — the storage half of
/// the Relation2XML-Transformer (§3.3).
pub fn reconstruct_document(
    db: &Database,
    prefix: &str,
    strategy: ShreddingStrategy,
    doc_id: u64,
) -> HoundResult<Document> {
    match strategy {
        ShreddingStrategy::Edge => edge::reconstruct(db, prefix, doc_id),
        ShreddingStrategy::Interval => interval::reconstruct(db, prefix, doc_id),
    }
}

/// One node row ready for SQL emission; linkage fields depend on strategy.
pub(crate) struct NodeRow {
    pub node_id: u64,
    pub parent_id: Option<u64>,
    pub ord: u32,
    pub start: Option<u64>,
    pub stop: Option<u64>,
    pub level: Option<u32>,
    pub kind: &'static str,
    pub name: Option<String>,
    pub path: String,
    pub val: Option<String>,
    pub is_seq: bool,
}

impl NodeRow {
    fn values_sql(&self, doc_id: u64) -> String {
        format!(
            "({doc_id}, {}, {}, {}, {}, {}, {}, '{}', {}, '{}', {}, {}, {})",
            self.node_id,
            opt_u64(self.parent_id),
            self.ord,
            opt_u64(self.start),
            opt_u64(self.stop),
            self.level
                .map(|l| l.to_string())
                .unwrap_or_else(|| "NULL".into()),
            self.kind,
            opt_text(self.name.as_deref()),
            sql_quote(&self.path),
            opt_text(self.val.as_deref()),
            opt_num(self.val.as_deref()),
            i32::from(self.is_seq),
        )
    }
}

/// One attribute row ready for SQL emission.
pub(crate) struct AttrRow {
    pub owner: u64,
    pub aname: String,
    pub aval: String,
    pub path: String,
}

impl AttrRow {
    fn values_sql(&self, doc_id: u64) -> String {
        format!(
            "({doc_id}, {}, '{}', '{}', {}, '{}')",
            self.owner,
            sql_quote(&self.aname),
            sql_quote(&self.aval),
            opt_num(Some(&self.aval)),
            sql_quote(&self.path),
        )
    }
}

pub(crate) struct EmittedRows {
    pub nodes: Vec<NodeRow>,
    pub attrs: Vec<AttrRow>,
}

fn opt_u64(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "NULL".into())
}

fn opt_text(v: Option<&str>) -> String {
    match v {
        Some(s) => format!("'{}'", sql_quote(s)),
        None => "NULL".into(),
    }
}

/// The numeric shadow value: the paper's string/numeric distinction means
/// values that parse as numbers are *also* stored numerically so range
/// queries compare numbers, not strings (§2.2).
fn opt_num(v: Option<&str>) -> String {
    match v
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|f| f.is_finite())
    {
        Some(f) => format!("{f}"),
        None => "NULL".into(),
    }
}

/// The concatenated direct text content of an element, or `None` if it has
/// no text children.
pub(crate) fn direct_text(doc: &Document, id: xomatiq_xml::NodeId) -> Option<String> {
    let mut out: Option<String> = None;
    for child in doc.children(id) {
        if let Some(t) = doc.node(child).text() {
            out.get_or_insert_with(String::new).push_str(t);
        }
    }
    out
}

/// Whether an element holds biological sequence data (the paper's
/// sequence/non-sequence split, keyed by the transformers' `sequence`
/// element).
pub(crate) fn is_sequence_element(name: &str) -> bool {
    name == "sequence"
}

/// Fetches a value cell as u64 (helper for reconstruction queries).
pub(crate) fn cell_u64(v: &Value) -> HoundResult<u64> {
    v.as_int()
        .map(|i| i as u64)
        .ok_or_else(|| HoundError::Pipeline(format!("expected integer cell, got {v}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sanitization() {
        assert_eq!(collection_prefix("hlx_embl.inv"), "hlx_embl_inv");
        assert_eq!(
            collection_prefix("HLX enzyme.DEFAULT"),
            "hlx_enzyme_default"
        );
    }

    #[test]
    fn quoting() {
        assert_eq!(sql_quote("it's"), "it''s");
        assert_eq!(opt_text(Some("a'b")), "'a''b'");
        assert_eq!(opt_text(None), "NULL");
    }

    #[test]
    fn numeric_shadow_values() {
        assert_eq!(opt_num(Some("42")), "42");
        assert_eq!(opt_num(Some(" 2.5 ")), "2.5");
        assert_eq!(opt_num(Some("1.14.17.3")), "NULL");
        assert_eq!(opt_num(Some("Copper")), "NULL");
        assert_eq!(opt_num(None), "NULL");
        assert_eq!(opt_num(Some("inf")), "NULL");
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [ShreddingStrategy::Edge, ShreddingStrategy::Interval] {
            assert_eq!(ShreddingStrategy::from_name(s.name()), Some(s));
        }
        assert_eq!(ShreddingStrategy::from_name("bogus"), None);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = ShredStats {
            documents: 1,
            elements: 2,
            texts: 3,
            attributes: 4,
        };
        a += ShredStats {
            documents: 1,
            elements: 1,
            texts: 1,
            attributes: 1,
        };
        assert_eq!(
            a,
            ShredStats {
                documents: 2,
                elements: 3,
                texts: 4,
                attributes: 5
            }
        );
    }
}
