//! The Interval (region-encoding) shredding strategy, after Zhang et
//! al. \[48]: each node carries `(start, stop, level)` where `start`/`stop`
//! delimit its region in a pre-order walk. Descendant-or-self is then the
//! pure-SQL test `d.start > a.start AND d.start < a.stop AND d.doc_id =
//! a.doc_id` — no recursion, no path strings — which is what makes
//! containment queries cheap and is the reason the paper's literature
//! favours it for ancestor/descendant-heavy workloads.

use xomatiq_relstore::Database;
use xomatiq_xml::document::NodeKind;
use xomatiq_xml::{Document, NodeId};

use crate::error::{HoundError, HoundResult};
use crate::shred::{cell_u64, direct_text, is_sequence_element, AttrRow, EmittedRows, NodeRow};

/// Emits Interval rows for every node under the document root.
pub(crate) fn emit_rows(doc: &Document, _doc_id: u64) -> EmittedRows {
    let mut nodes = Vec::new();
    let mut attrs = Vec::new();
    let root = doc.root_element().expect("caller checked");
    let mut counter: u64 = 0;
    walk(doc, root, &mut counter, &mut nodes, &mut attrs);
    EmittedRows { nodes, attrs }
}

fn walk(
    doc: &Document,
    id: NodeId,
    counter: &mut u64,
    nodes: &mut Vec<NodeRow>,
    attrs: &mut Vec<AttrRow>,
) {
    let node = doc.node(id);
    let start = *counter;
    *counter += 1;
    let ord = doc.ordinal(id);
    let level = doc.depth(id);
    let path = doc.label_path(id);
    match node.kind() {
        NodeKind::Element { name, attributes } => {
            for attr in attributes {
                attrs.push(AttrRow {
                    owner: start,
                    aname: attr.name.clone(),
                    aval: attr.value.clone(),
                    path: format!("{path}/@{}", attr.name),
                });
            }
            let slot = nodes.len();
            nodes.push(NodeRow {
                node_id: start, // node identity = its start position
                parent_id: None,
                ord,
                start: Some(start),
                stop: Some(0), // patched after children are walked
                level: Some(level),
                kind: "elem",
                name: Some(name.clone()),
                path,
                val: direct_text(doc, id),
                is_seq: is_sequence_element(name),
            });
            for child in doc.children(id) {
                walk(doc, child, counter, nodes, attrs);
            }
            let stop = *counter;
            *counter += 1;
            nodes[slot].stop = Some(stop);
        }
        NodeKind::Text(t) => {
            let stop = *counter;
            *counter += 1;
            nodes.push(NodeRow {
                node_id: start,
                parent_id: None,
                ord,
                start: Some(start),
                stop: Some(stop),
                level: Some(level),
                kind: "text",
                name: None,
                path,
                val: Some(t.clone()),
                is_seq: false,
            });
        }
        NodeKind::Comment(c) => {
            let stop = *counter;
            *counter += 1;
            nodes.push(NodeRow {
                node_id: start,
                parent_id: None,
                ord,
                start: Some(start),
                stop: Some(stop),
                level: Some(level),
                kind: "comment",
                name: None,
                path,
                val: Some(c.clone()),
                is_seq: false,
            });
        }
        NodeKind::ProcessingInstruction { target, data } => {
            let stop = *counter;
            *counter += 1;
            nodes.push(NodeRow {
                node_id: start,
                parent_id: None,
                ord,
                start: Some(start),
                stop: Some(stop),
                level: Some(level),
                kind: "pi",
                name: Some(target.clone()),
                path,
                val: Some(data.clone()),
                is_seq: false,
            });
        }
        NodeKind::Document => unreachable!("walk starts at the root element"),
    }
}

/// Rebuilds document `doc_id` from Interval rows using a region stack.
pub(crate) fn reconstruct(db: &Database, prefix: &str, doc_id: u64) -> HoundResult<Document> {
    let rows = db
        .query(&format!(
            "SELECT start, stop, kind, name, val FROM {prefix}_nodes \
             WHERE doc_id = ? ORDER BY start"
        ))
        .bind(doc_id as i64)
        .run()?
        .rows;
    if rows.rows().is_empty() {
        return Err(HoundError::Pipeline(format!(
            "document {doc_id} has no tuples in {prefix}_nodes"
        )));
    }
    let attrs = db
        .query(&format!(
            "SELECT owner, aname, aval FROM {prefix}_attrs WHERE doc_id = ? ORDER BY owner"
        ))
        .bind(doc_id as i64)
        .run()?
        .rows;

    let mut doc = Document::new();
    // Stack of (rebuilt id, stop): the parent of the next node is the
    // deepest open region containing its start.
    let mut stack: Vec<(NodeId, u64)> = Vec::new();
    let mut id_map: std::collections::HashMap<u64, NodeId> = std::collections::HashMap::new();
    for row in rows.rows() {
        let start = cell_u64(&row[0])?;
        let stop = cell_u64(&row[1])?;
        while let Some((_, open_stop)) = stack.last() {
            if start > *open_stop {
                stack.pop();
            } else {
                break;
            }
        }
        let parent = stack.last().map(|(id, _)| *id).unwrap_or(NodeId::DOCUMENT);
        let kind = row[2].as_text().unwrap_or("");
        let name = row[3].as_text();
        let val = row[4].as_text();
        let new_id = match kind {
            "elem" => {
                let id = doc.append_element(parent, name.unwrap_or(""))?;
                stack.push((id, stop));
                id
            }
            "text" => doc.append_text(parent, val.unwrap_or("")),
            "comment" => doc.append_comment(parent, val.unwrap_or("")),
            "pi" => doc.append_pi(parent, name.unwrap_or(""), val.unwrap_or(""))?,
            other => {
                return Err(HoundError::Pipeline(format!("unknown node kind {other:?}")));
            }
        };
        id_map.insert(start, new_id);
    }
    for row in attrs.rows() {
        let owner = cell_u64(&row[0])?;
        let target = id_map
            .get(&owner)
            .ok_or_else(|| HoundError::Pipeline(format!("attribute owner {owner} missing")))?;
        doc.set_attribute(
            *target,
            row[1].as_text().unwrap_or(""),
            row[2].as_text().unwrap_or(""),
        )?;
    }
    Ok(doc)
}
