//! The Edge shredding strategy: one row per node with parent/ordinal
//! links. Loads fast (ids are assigned in a single pass) and reconstructs
//! directly from the `(parent_id, ord)` columns; descendant navigation
//! needs path information because parent links are one level at a time.

use xomatiq_relstore::Database;
use xomatiq_xml::document::NodeKind;
use xomatiq_xml::{Document, NodeId};

use crate::error::{HoundError, HoundResult};
use crate::shred::{cell_u64, direct_text, is_sequence_element, AttrRow, EmittedRows, NodeRow};

/// Emits Edge rows for every node under the document root.
pub(crate) fn emit_rows(doc: &Document, _doc_id: u64) -> EmittedRows {
    let mut nodes = Vec::new();
    let mut attrs = Vec::new();
    let root = doc.root_element().expect("caller checked");
    for id in doc.descendants(root) {
        let node = doc.node(id);
        let node_id = id.as_u32() as u64;
        let parent_id = doc
            .parent(id)
            .filter(|p| *p != NodeId::DOCUMENT)
            .map(|p| p.as_u32() as u64);
        let ord = doc.ordinal(id);
        let path = doc.label_path(id);
        match node.kind() {
            NodeKind::Element { name, attributes } => {
                for attr in attributes {
                    attrs.push(AttrRow {
                        owner: node_id,
                        aname: attr.name.clone(),
                        aval: attr.value.clone(),
                        path: format!("{path}/@{}", attr.name),
                    });
                }
                nodes.push(NodeRow {
                    node_id,
                    parent_id,
                    ord,
                    start: None,
                    stop: None,
                    level: Some(doc.depth(id)),
                    kind: "elem",
                    name: Some(name.clone()),
                    path,
                    val: direct_text(doc, id),
                    is_seq: is_sequence_element(name),
                });
            }
            NodeKind::Text(t) => nodes.push(NodeRow {
                node_id,
                parent_id,
                ord,
                start: None,
                stop: None,
                level: Some(doc.depth(id)),
                kind: "text",
                name: None,
                path,
                val: Some(t.clone()),
                is_seq: false,
            }),
            NodeKind::Comment(c) => nodes.push(NodeRow {
                node_id,
                parent_id,
                ord,
                start: None,
                stop: None,
                level: Some(doc.depth(id)),
                kind: "comment",
                name: None,
                path,
                val: Some(c.clone()),
                is_seq: false,
            }),
            NodeKind::ProcessingInstruction { target, data } => nodes.push(NodeRow {
                node_id,
                parent_id,
                ord,
                start: None,
                stop: None,
                level: Some(doc.depth(id)),
                kind: "pi",
                name: Some(target.clone()),
                path,
                val: Some(data.clone()),
                is_seq: false,
            }),
            NodeKind::Document => unreachable!("descendants of the root element"),
        }
    }
    EmittedRows { nodes, attrs }
}

/// Rebuilds document `doc_id` from Edge rows.
pub(crate) fn reconstruct(db: &Database, prefix: &str, doc_id: u64) -> HoundResult<Document> {
    // Rows ordered by node_id = document order; parents precede children.
    let rows = db
        .query(&format!(
            "SELECT node_id, parent_id, kind, name, val FROM {prefix}_nodes \
             WHERE doc_id = ? ORDER BY node_id"
        ))
        .bind(doc_id as i64)
        .run()?
        .rows;
    if rows.rows().is_empty() {
        return Err(HoundError::Pipeline(format!(
            "document {doc_id} has no tuples in {prefix}_nodes"
        )));
    }
    let attrs = db
        .query(&format!(
            "SELECT owner, aname, aval FROM {prefix}_attrs WHERE doc_id = ? ORDER BY owner"
        ))
        .bind(doc_id as i64)
        .run()?
        .rows;

    let mut doc = Document::new();
    // Source node_id → rebuilt NodeId.
    let mut id_map: std::collections::HashMap<u64, NodeId> = std::collections::HashMap::new();
    for row in rows.rows() {
        let node_id = cell_u64(&row[0])?;
        let parent = match &row[1] {
            v if v.is_null() => NodeId::DOCUMENT,
            v => *id_map.get(&cell_u64(v)?).ok_or_else(|| {
                HoundError::Pipeline(format!("node {node_id} arrived before its parent"))
            })?,
        };
        let kind = row[2].as_text().unwrap_or("");
        let name = row[3].as_text();
        let val = row[4].as_text();
        let new_id = match kind {
            "elem" => doc.append_element(parent, name.unwrap_or(""))?,
            "text" => doc.append_text(parent, val.unwrap_or("")),
            "comment" => doc.append_comment(parent, val.unwrap_or("")),
            "pi" => doc.append_pi(parent, name.unwrap_or(""), val.unwrap_or(""))?,
            other => {
                return Err(HoundError::Pipeline(format!("unknown node kind {other:?}")));
            }
        };
        id_map.insert(node_id, new_id);
    }
    for row in attrs.rows() {
        let owner = cell_u64(&row[0])?;
        let target = id_map
            .get(&owner)
            .ok_or_else(|| HoundError::Pipeline(format!("attribute owner {owner} missing")))?;
        doc.set_attribute(
            *target,
            row[1].as_text().unwrap_or(""),
            row[2].as_text().unwrap_or(""),
        )?;
    }
    Ok(doc)
}
