#![warn(missing_docs)]

//! # xomatiq-datahounds
//!
//! The Data Hounds component (paper §2): harvesting biological databases
//! into local XML, and shredding that XML into the relational warehouse.
//!
//! * [`transform`] — the per-source **XML-Transformers** (§2.1): each of
//!   ENZYME, EMBL and Swiss-Prot gets a DTD (Figure 5 for ENZYME) and a
//!   converter from its typed flat record to a DTD-valid XML document
//!   (Figure 6). Every produced document validates against its DTD.
//! * [`shred`] — the **XML2Relational-Transformer** (§2.2): two published
//!   shredding strategies bracketing the paper's proprietary generic
//!   schema — the *Edge* approach (one node table with parent/ordinal
//!   columns) and *Interval* region encoding (start/end/level, Zhang et
//!   al. \[48], which the paper cites as an inspiration). Both preserve
//!   document order as a data value, split attributes into their own
//!   table, store a numeric shadow column for values that parse as
//!   numbers, and support full document reconstruction.
//! * [`update`] — incremental re-synchronization against a changed source
//!   plus change **triggers**: "once the changes have been committed to
//!   the local warehouse, the Data Hounds sends out triggers to related
//!   applications" (§2.2 end).
//! * [`source`] — the orchestrator: register a source, load it end-to-end
//!   (flat text → records → XML → validate → shred → index), update it.
//!
//! ```
//! use std::sync::Arc;
//! use xomatiq_datahounds::{DataHounds, SourceKind};
//! use xomatiq_datahounds::source::LoadOptions;
//! use xomatiq_relstore::Database;
//!
//! let db = Arc::new(Database::in_memory());
//! let hounds = DataHounds::new(Arc::clone(&db)).unwrap();
//! hounds
//!     .load_source(
//!         "hlx_enzyme.DEFAULT",
//!         SourceKind::Enzyme,
//!         xomatiq_bioflat::enzyme::FIGURE2_SAMPLE,
//!         LoadOptions::default(),
//!     )
//!     .unwrap();
//! assert_eq!(hounds.doc_count("hlx_enzyme.DEFAULT").unwrap(), 1);
//! let doc = hounds.reconstruct("hlx_enzyme.DEFAULT", "1.14.17.3").unwrap();
//! assert!(xomatiq_xml::to_string(&doc).contains("Peptidylglycine"));
//! ```

pub mod error;
pub(crate) mod metrics;
pub mod retry;
pub mod shred;
pub mod source;
pub mod transform;
pub mod update;

pub use error::{HoundError, HoundResult};
pub use retry::{RecordingSleeper, RetryPolicy, Sleeper, ThreadSleeper};
pub use shred::{ShredStats, ShreddingStrategy};
pub use source::{DataHounds, QuarantineRecord, SourceKind};
pub use update::{ChangeEvent, ChangeKind, TriggerHub};
