//! Retry policy for flaky source downloads.
//!
//! The paper's Data Hounds "periodically download" their sources over the
//! network (§2.2); real FTP mirrors drop connections. [`RetryPolicy`]
//! re-attempts a fallible fetch with capped exponential backoff. Sleeping
//! goes through the [`Sleeper`] trait so tests can record the schedule
//! deterministically instead of touching the wall clock.

use std::time::Duration;

/// How to wait between retry attempts.
pub trait Sleeper {
    /// Blocks (or pretends to block) for `d`.
    fn sleep(&mut self, d: Duration);
}

/// Production sleeper: actually blocks the calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&mut self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Test sleeper: records every requested delay and returns immediately.
#[derive(Debug, Default)]
pub struct RecordingSleeper {
    /// The delays requested so far, in order.
    pub slept: Vec<Duration>,
}

impl Sleeper for RecordingSleeper {
    fn sleep(&mut self, d: Duration) {
        self.slept.push(d);
    }
}

/// Capped exponential backoff: attempt `n` (0-based) waits
/// `min(base_delay_ms << n, max_delay_ms)` before retrying — or, with
/// [`RetryPolicy::with_full_jitter`], a uniformly random slice of that
/// window, which de-synchronizes a fleet of Data Hounds hammering the
/// same recovering mirror (the "thundering herd" fix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (0 behaves as 1).
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single delay, in milliseconds.
    pub max_delay_ms: u64,
    /// When set, each delay is drawn uniformly from `0..=window` (full
    /// jitter) using this deterministic seed; `None` keeps the exact
    /// capped-exponential schedule.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 250,
            max_delay_ms: 5_000,
            jitter_seed: None,
        }
    }
}

/// SplitMix64 — a tiny, high-quality mixer; good enough to decorrelate
/// retry schedules and fully deterministic for a given seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy that tries exactly once — no retries, no sleeping.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
            jitter_seed: None,
        }
    }

    /// Switches the policy to full jitter: each delay becomes a uniform
    /// draw from `0..=delay_for(n)`, derived deterministically from
    /// `seed` so tests can assert exact schedules.
    pub fn with_full_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The backoff delay after failed attempt `attempt` (0-based).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay_ms
            .checked_shl(attempt)
            .unwrap_or(self.max_delay_ms);
        Duration::from_millis(exp.min(self.max_delay_ms))
    }

    /// Runs `op` until it succeeds or `max_attempts` is exhausted, sleeping
    /// via `sleeper` between attempts. Returns the last error on exhaustion.
    pub fn run<T, E, F>(&self, sleeper: &mut dyn Sleeper, mut op: F) -> Result<T, E>
    where
        F: FnMut(u32) -> Result<T, E>,
    {
        let attempts = self.max_attempts.max(1);
        let mut rng = self.jitter_seed;
        let mut last_err = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last_err = Some(e);
                    if attempt + 1 < attempts {
                        let window = self.delay_for(attempt);
                        let delay = match &mut rng {
                            // Full jitter: uniform over the whole window,
                            // inclusive of both edges.
                            Some(state) => {
                                let ms = window.as_millis() as u64;
                                Duration::from_millis(splitmix64(state) % (ms + 1))
                            }
                            None => window,
                        };
                        sleeper.sleep(delay);
                    }
                }
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_skips_sleeping() {
        let mut sleeper = RecordingSleeper::default();
        let got: Result<i32, &str> = RetryPolicy::default().run(&mut sleeper, |_| Ok(42));
        assert_eq!(got, Ok(42));
        assert!(sleeper.slept.is_empty());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 100,
            max_delay_ms: 450,
            jitter_seed: None,
        };
        let mut sleeper = RecordingSleeper::default();
        let got: Result<(), String> = policy.run(&mut sleeper, |n| Err(format!("attempt {n}")));
        // Exhausted: the *last* error comes back.
        assert_eq!(got, Err("attempt 5".to_string()));
        // 5 sleeps between 6 attempts: 100, 200, 400, then capped at 450.
        let ms: Vec<u64> = sleeper.slept.iter().map(|d| d.as_millis() as u64).collect();
        assert_eq!(ms, vec![100, 200, 400, 450, 450]);
    }

    #[test]
    fn succeeds_midway() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 10,
            max_delay_ms: 1_000,
            jitter_seed: None,
        };
        let mut sleeper = RecordingSleeper::default();
        let got: Result<u32, &str> =
            policy.run(
                &mut sleeper,
                |n| {
                    if n < 2 {
                        Err("transient")
                    } else {
                        Ok(n)
                    }
                },
            );
        assert_eq!(got, Ok(2));
        assert_eq!(sleeper.slept.len(), 2);
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let policy = RetryPolicy {
            max_attempts: 0,
            base_delay_ms: 10,
            max_delay_ms: 10,
            jitter_seed: None,
        };
        let mut sleeper = RecordingSleeper::default();
        let mut calls = 0;
        let got: Result<(), &str> = policy.run(&mut sleeper, |_| {
            calls += 1;
            Err("nope")
        });
        assert!(got.is_err());
        assert_eq!(calls, 1);
        assert!(sleeper.slept.is_empty());
    }

    #[test]
    fn shift_overflow_saturates_at_cap() {
        let policy = RetryPolicy {
            max_attempts: 80,
            base_delay_ms: 1,
            max_delay_ms: 700,
            jitter_seed: None,
        };
        assert_eq!(policy.delay_for(70), Duration::from_millis(700));
    }

    #[test]
    fn full_jitter_is_bounded_and_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 100,
            max_delay_ms: 450,
            jitter_seed: None,
        }
        .with_full_jitter(7);
        let mut a = RecordingSleeper::default();
        let _: Result<(), &str> = policy.run(&mut a, |_| Err("down"));
        // Every jittered delay stays inside its un-jittered window...
        let windows = [100u64, 200, 400, 450, 450];
        assert_eq!(a.slept.len(), windows.len());
        for (d, w) in a.slept.iter().zip(windows) {
            assert!(d.as_millis() as u64 <= w, "{d:?} exceeds {w}ms window");
        }
        // ...the same seed reproduces the same schedule exactly...
        let mut b = RecordingSleeper::default();
        let _: Result<(), &str> = policy.run(&mut b, |_| Err("down"));
        assert_eq!(a.slept, b.slept);
        // ...and a different seed decorrelates it.
        let mut c = RecordingSleeper::default();
        let _: Result<(), &str> = policy.with_full_jitter(8).run(&mut c, |_| Err("down"));
        assert_ne!(a.slept, c.slept);
    }
}
