//! Error type spanning the Data Hounds pipeline.

use std::fmt;

use xomatiq_bioflat::FlatError;
use xomatiq_relstore::RelError;
use xomatiq_xml::XmlError;

/// Result alias for Data Hounds operations.
pub type HoundResult<T> = Result<T, HoundError>;

/// An error from any stage of the warehouse pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum HoundError {
    /// Flat-file parsing failed.
    Flat(FlatError),
    /// XML construction or DTD validation failed.
    Xml(XmlError),
    /// The relational engine rejected an operation.
    Rel(RelError),
    /// A registered source or collection was not found.
    UnknownCollection(String),
    /// Pipeline-level misuse.
    Pipeline(String),
}

impl fmt::Display for HoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HoundError::Flat(e) => write!(f, "flat-file error: {e}"),
            HoundError::Xml(e) => write!(f, "XML error: {e}"),
            HoundError::Rel(e) => write!(f, "relational error: {e}"),
            HoundError::UnknownCollection(c) => write!(f, "unknown collection {c:?}"),
            HoundError::Pipeline(m) => write!(f, "pipeline error: {m}"),
        }
    }
}

impl std::error::Error for HoundError {}

impl From<FlatError> for HoundError {
    fn from(e: FlatError) -> Self {
        HoundError::Flat(e)
    }
}

impl From<XmlError> for HoundError {
    fn from(e: XmlError) -> Self {
        HoundError::Xml(e)
    }
}

impl From<RelError> for HoundError {
    fn from(e: RelError) -> Self {
        HoundError::Rel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: HoundError = FlatError::new("ENZYME", "bad").into();
        assert!(e.to_string().contains("flat-file error"));
        let e: HoundError = RelError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("relational error"));
        assert_eq!(
            HoundError::UnknownCollection("x".into()).to_string(),
            "unknown collection \"x\""
        );
    }
}
