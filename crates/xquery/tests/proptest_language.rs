//! Language property test: every query the AST can express prints to text
//! that parses back to the identical AST (the GUI's "Translate Query"
//! output is therefore always a faithful serialization).

use proptest::prelude::*;
use xomatiq_xml::LabelPath;
use xomatiq_xquery::ast::{
    AttrPredicate, Binding, CompOp, Comparison, Condition, FlwrQuery, LetBinding, Literal, Operand,
    PathExpr, ReturnItem,
};
use xomatiq_xquery::parse_query;

const NAMES: &[&str] = &["db_entry", "enzyme_id", "qualifier", "reference", "seq"];
const VARS: &[&str] = &["a", "b", "c"];
const WORDS: &[&str] = &["ketone", "cdc6", "EC number", "1.14.17.3", "copper zinc"];

fn path_expr() -> impl Strategy<Value = PathExpr> {
    (
        0..VARS.len(),
        prop::collection::vec((0..NAMES.len(), any::<bool>()), 0..3),
        prop::option::of((0..NAMES.len(), 0..WORDS.len())),
        prop::option::of(1u32..5),
        prop::option::of(0..NAMES.len()),
    )
        .prop_map(|(var, steps, predicate, position, attribute)| {
            let steps = if steps.is_empty() {
                None
            } else {
                let text: String = steps
                    .iter()
                    .map(|(n, desc)| format!("{}{}", if *desc { "//" } else { "/" }, NAMES[*n]))
                    .collect();
                Some(LabelPath::parse(&text).expect("constructed to be valid"))
            };
            // Predicates only make sense on a path with steps.
            let has_steps = steps.is_some();
            PathExpr {
                var: VARS[var].to_string(),
                steps,
                predicate: predicate.filter(|_| has_steps).map(|(n, v)| AttrPredicate {
                    name: NAMES[n].to_string(),
                    value: WORDS[v].to_string(),
                }),
                position: position.filter(|_| has_steps),
                attribute: attribute
                    .filter(|_| has_steps)
                    .map(|n| NAMES[n].to_string()),
            }
        })
}

fn condition(depth: u32) -> BoxedStrategy<Condition> {
    let leaf = prop_oneof![
        (path_expr(), 0..WORDS.len(), any::<bool>()).prop_map(|(target, kw, any)| {
            // A bare-variable target is normalized to `any` by the parser.
            let any = any || (target.steps.is_none() && target.attribute.is_none());
            Condition::Contains {
                target,
                keyword: WORDS[kw].to_string(),
                any,
            }
        }),
        (path_expr(), 0..WORDS.len()).prop_map(|(target, p)| Condition::Matches {
            target,
            pattern: WORDS[p].to_string(),
        }),
        (path_expr(), comparison_op(), operand())
            .prop_map(|(left, op, right)| { Condition::Compare(Comparison { left, op, right }) }),
        (path_expr(), path_expr(), any::<bool>()).prop_map(|(mut left, mut right, before)| {
            // BEFORE/AFTER applies to elements only.
            left.attribute = None;
            right.attribute = None;
            Condition::Order {
                left,
                right,
                before,
            }
        }),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = condition(depth - 1);
    prop_oneof![
        4 => leaf,
        1 => (inner.clone(), condition(depth - 1))
            .prop_map(|(a, b)| Condition::And(Box::new(a), Box::new(b))),
        1 => (inner.clone(), condition(depth - 1))
            .prop_map(|(a, b)| Condition::Or(Box::new(a), Box::new(b))),
        1 => inner.prop_map(|c| Condition::Not(Box::new(c))),
    ]
    .boxed()
}

fn comparison_op() -> impl Strategy<Value = CompOp> {
    prop::sample::select(vec![
        CompOp::Eq,
        CompOp::Ne,
        CompOp::Lt,
        CompOp::Le,
        CompOp::Gt,
        CompOp::Ge,
    ])
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        path_expr().prop_map(Operand::Path),
        (0..WORDS.len()).prop_map(|w| Operand::Literal(Literal::Text(WORDS[w].to_string()))),
        any::<i32>().prop_map(|i| Operand::Literal(Literal::Int(i64::from(i)))),
    ]
}

fn query() -> impl Strategy<Value = FlwrQuery> {
    (
        1..=VARS.len(),
        prop::collection::vec((0..VARS.len(), path_expr()), 0..2),
        prop::option::of(condition(2)),
        prop::collection::vec((prop::option::of("[A-Z][a-z_]{1,8}"), path_expr()), 1..4),
        prop::option::of("[a-z]{2,8}"),
    )
        .prop_map(|(n_bindings, lets, where_clause, returns, wrapper)| {
            let bindings = (0..n_bindings)
                .map(|i| Binding {
                    var: VARS[i].to_string(),
                    collection: format!("collection_{i}"),
                    path: LabelPath::parse(&format!("/root_{i}")).expect("valid"),
                })
                .collect();
            // LET variable names must not collide with FOR variables.
            let lets = lets
                .into_iter()
                .enumerate()
                .map(|(i, (_, target))| LetBinding {
                    var: format!("let{i}"),
                    target,
                })
                .collect();
            FlwrQuery {
                bindings,
                lets,
                where_clause,
                return_items: returns
                    .into_iter()
                    .map(|(alias, path)| ReturnItem { alias, path })
                    .collect(),
                wrapper,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_round_trip(q in query()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("printed query failed to parse: {e}\n{printed}"));
        prop_assert_eq!(reparsed, q, "round trip diverged for:\n{}", printed);
    }
}
