//! End-to-end XQ2SQL tests: the paper's Figure 8, 9 and 11 queries are
//! parsed, translated to SQL, executed on a warehouse loaded from a
//! synthetic corpus, and checked against the generator's planted ground
//! truth — under BOTH shredding strategies.

use std::collections::BTreeSet;
use std::sync::Arc;

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_datahounds::source::LoadOptions;
use xomatiq_datahounds::{DataHounds, ShreddingStrategy, SourceKind};
use xomatiq_relstore::Database;
use xomatiq_xquery::catalog::StaticCatalog;
use xomatiq_xquery::{parse_query, translate, CollectionCatalog};

const FIGURE8: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_p_sequence
WHERE contains($a, "cdc6", any)
  AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number
"#;

const FIGURE9: &str = r#"
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description
"#;

const FIGURE11: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description
"#;

struct Warehouse {
    db: Arc<Database>,
    catalog: StaticCatalog,
    corpus: Corpus,
}

fn build(strategy: ShreddingStrategy) -> Warehouse {
    let corpus = Corpus::generate(&CorpusSpec {
        enzymes: 40,
        embl: 40,
        swissprot: 40,
        keyword_rate: 0.2,
        link_rate: 0.4,
        ketone_rate: 0.25,
        seed: 7,
    });
    let db = Arc::new(Database::in_memory());
    let dh = DataHounds::new(Arc::clone(&db)).unwrap();
    let options = LoadOptions {
        strategy,
        ..LoadOptions::default()
    };
    dh.load_source(
        "hlx_enzyme.DEFAULT",
        SourceKind::Enzyme,
        &corpus.enzyme_flat(),
        options,
    )
    .unwrap();
    dh.load_source(
        "hlx_embl.inv",
        SourceKind::Embl,
        &corpus.embl_flat(),
        options,
    )
    .unwrap();
    dh.load_source(
        "hlx_sprot.all",
        SourceKind::SwissProt,
        &corpus.swissprot_flat(),
        options,
    )
    .unwrap();
    let mut catalog = StaticCatalog::default();
    for name in ["hlx_enzyme.DEFAULT", "hlx_embl.inv", "hlx_sprot.all"] {
        let prefix = dh.prefix(name).unwrap();
        catalog.push(CollectionCatalog::from_warehouse(&db, name, &prefix, strategy).unwrap());
    }
    Warehouse {
        db,
        catalog,
        corpus,
    }
}

fn run(warehouse: &Warehouse, query_text: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let query = parse_query(query_text).unwrap();
    let translated = translate(&query, &warehouse.catalog).unwrap();
    let rs = warehouse
        .db
        .query(&translated.sql)
        .run()
        .unwrap_or_else(|e| panic!("{e}\nSQL: {}", translated.sql))
        .rows;
    let rows = rs
        .rows()
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    (translated.columns, rows)
}

fn both_strategies(test: impl Fn(&Warehouse, ShreddingStrategy)) {
    for strategy in [ShreddingStrategy::Edge, ShreddingStrategy::Interval] {
        let warehouse = build(strategy);
        test(&warehouse, strategy);
    }
}

#[test]
fn figure9_subtree_search_matches_ground_truth() {
    both_strategies(|w, strategy| {
        let (columns, rows) = run(w, FIGURE9);
        assert_eq!(
            columns,
            vec!["enzyme_id".to_string(), "enzyme_description".to_string()]
        );
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        let expected: BTreeSet<String> = w.corpus.ketone_enzymes.iter().cloned().collect();
        assert_eq!(got, expected, "{strategy:?}");
        assert!(
            !rows.is_empty(),
            "corpus should have planted ketone enzymes"
        );
    });
}

#[test]
fn figure8_keyword_search_matches_ground_truth() {
    both_strategies(|w, strategy| {
        let (columns, rows) = run(w, FIGURE8);
        assert_eq!(
            columns,
            vec![
                "sprot_accession_number".to_string(),
                "embl_accession_number".to_string()
            ]
        );
        // The query returns the cross product of matching Swiss-Prot and
        // EMBL entries (two independent bindings).
        let got_sprot: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        let got_embl: BTreeSet<String> = rows.iter().map(|r| r[1].clone()).collect();
        let want_sprot: BTreeSet<String> = w.corpus.cdc6_swissprot.iter().cloned().collect();
        let want_embl: BTreeSet<String> = w.corpus.cdc6_embl.iter().cloned().collect();
        assert_eq!(got_sprot, want_sprot, "{strategy:?}");
        assert_eq!(got_embl, want_embl, "{strategy:?}");
        assert_eq!(
            rows.len(),
            want_sprot.len() * want_embl.len(),
            "{strategy:?}"
        );
    });
}

#[test]
fn figure11_join_matches_planted_links() {
    both_strategies(|w, strategy| {
        let (columns, rows) = run(w, FIGURE11);
        assert_eq!(
            columns,
            vec![
                "Accession_Number".to_string(),
                "Accession_Description".to_string()
            ]
        );
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        let expected: BTreeSet<String> = w
            .corpus
            .planted_ec_links
            .iter()
            .map(|(acc, _)| acc.clone())
            .collect();
        assert_eq!(got, expected, "{strategy:?}");
        assert!(!rows.is_empty());
        // Descriptions come back alongside the accessions.
        for row in &rows {
            let entry = w
                .corpus
                .embl
                .iter()
                .find(|e| e.accession == row[0])
                .unwrap();
            assert_eq!(row[1], entry.description);
        }
    });
}

#[test]
fn edge_and_interval_agree_on_all_figures() {
    let edge = build(ShreddingStrategy::Edge);
    let interval = build(ShreddingStrategy::Interval);
    for q in [FIGURE8, FIGURE9, FIGURE11] {
        let (_, a) = run(&edge, q);
        let (_, b) = run(&interval, q);
        let sa: BTreeSet<Vec<String>> = a.into_iter().collect();
        let sb: BTreeSet<Vec<String>> = b.into_iter().collect();
        assert_eq!(sa, sb, "strategies diverged on:\n{q}");
    }
}

#[test]
fn numeric_comparison_on_attribute() {
    both_strategies(|w, _| {
        let (_, rows) = run(
            w,
            r#"FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
               WHERE $a//sequence/@length >= 300
               RETURN $a//embl_accession_number"#,
        );
        let expected: BTreeSet<String> = w
            .corpus
            .embl
            .iter()
            .filter(|e| e.sequence.len() >= 300)
            .map(|e| e.accession.clone())
            .collect();
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(got, expected);
        assert!(!expected.is_empty());
    });
}

#[test]
fn disjunction_and_negation() {
    both_strategies(|w, _| {
        let (_, rows) = run(
            w,
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE contains($a//catalytic_activity, "ketone")
                  OR contains($a//catalytic_activity, "pyruvate")
               RETURN $a//enzyme_id"#,
        );
        let expected: BTreeSet<String> = w
            .corpus
            .enzymes
            .iter()
            .filter(|e| {
                e.catalytic_activities.iter().any(|a| {
                    a.to_lowercase().contains("ketone") || a.to_lowercase().contains("pyruvate")
                })
            })
            .map(|e| e.id.clone())
            .collect();
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(got, expected);
    });
}

#[test]
fn equality_against_literal() {
    both_strategies(|w, _| {
        let target = &w.corpus.enzymes[3];
        let (_, rows) = run(
            w,
            &format!(
                r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
                   WHERE $a//enzyme_id = "{}"
                   RETURN $a//enzyme_id, $a//enzyme_description"#,
                target.id
            ),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], target.id);
        assert_eq!(rows[0][1], target.descriptions[0]);
    });
}

#[test]
fn attribute_access_in_return() {
    both_strategies(|w, _| {
        let (_, rows) = run(
            w,
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               RETURN $a//reference/@swissprot_accession_number"#,
        );
        let expected: BTreeSet<String> = w
            .corpus
            .enzymes
            .iter()
            .flat_map(|e| e.swissprot_refs.iter().map(|r| r.accession.clone()))
            .collect();
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(got, expected);
    });
}

#[test]
fn translation_errors() {
    let w = build(ShreddingStrategy::Interval);
    // Unknown collection.
    let q = parse_query(r#"FOR $a IN document("nope")/r RETURN $a//x"#).unwrap();
    assert!(translate(&q, &w.catalog).is_err());
    // Path matching nothing.
    let q = parse_query(
        r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme RETURN $a//nonexistent_element"#,
    )
    .unwrap();
    assert!(translate(&q, &w.catalog).is_err());
    // Unbound variable.
    let q =
        parse_query(r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme RETURN $z//enzyme_id"#)
            .unwrap();
    assert!(translate(&q, &w.catalog).is_err());
}

#[test]
fn generated_sql_uses_indexes() {
    let w = build(ShreddingStrategy::Interval);
    let q = parse_query(FIGURE9).unwrap();
    let t = translate(&q, &w.catalog).unwrap();
    let plan = w.db.plan(&t.sql).unwrap();
    assert!(
        plan.plan.uses_index(),
        "plan should use an index:\n{}",
        plan.plan.explain()
    );
}

#[test]
fn subtree_contains_searches_descendants_of_nonleaf_targets() {
    both_strategies(|w, _| {
        // comment_list has no direct text; the keyword lives in its
        // comment children. The sub-tree mode must still find it.
        let (_, rows) = run(
            w,
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE contains($a//comment_list, "substrates")
               RETURN $a//enzyme_id"#,
        );
        let expected: BTreeSet<String> = w
            .corpus
            .enzymes
            .iter()
            .filter(|e| {
                e.comments
                    .iter()
                    .any(|c| c.to_lowercase().contains("substrates"))
            })
            .map(|e| e.id.clone())
            .collect();
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(got, expected);
        assert!(
            !expected.is_empty(),
            "corpus should contain 'substrates' comments"
        );
    });
}

#[test]
fn whole_entry_subtree_search() {
    both_strategies(|w, _| {
        // Target the db_entry itself: keyword anywhere in the entry.
        let (_, rows) = run(
            w,
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE contains($a//db_entry, "Copper")
               RETURN $a//enzyme_id"#,
        );
        let expected: BTreeSet<String> = w
            .corpus
            .enzymes
            .iter()
            .filter(|e| e.to_flat().contains("Copper"))
            .map(|e| e.id.clone())
            .collect();
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(got, expected);
    });
}

#[test]
fn motif_matching_with_regex() {
    both_strategies(|w, _| {
        // An N-glycosylation-style motif over the protein sequences.
        let (_, rows) = run(
            w,
            r#"FOR $b IN document("hlx_sprot.all")/hlx_p_sequence
               WHERE matches($b//sequence, "N[^P][ST]")
               RETURN $b//sprot_accession_number"#,
        );
        let pattern = xomatiq_relstore::regex::Pattern::compile("N[^P][ST]").unwrap();
        let expected: BTreeSet<String> = w
            .corpus
            .swissprot
            .iter()
            .filter(|e| pattern.is_match(&e.sequence))
            .map(|e| e.accession.clone())
            .collect();
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(got, expected);
        assert!(
            !expected.is_empty(),
            "motif should occur in random protein sequences"
        );
    });
}

#[test]
fn matches_round_trips_through_text_form() {
    let q = parse_query(
        r#"FOR $b IN document("hlx_sprot.all")/hlx_p_sequence
           WHERE matches($b//sequence, "GG[AT]CC")
           RETURN $b//sprot_accession_number"#,
    )
    .unwrap();
    let printed = q.to_string();
    assert!(
        printed.contains("matches($b//sequence, \"GG[AT]CC\")"),
        "{printed}"
    );
    assert_eq!(parse_query(&printed).unwrap(), q);
}

#[test]
fn positional_predicate_selects_first_item() {
    both_strategies(|w, _| {
        // The FIRST Swiss-Prot reference of each enzyme (range predicate,
        // paper §2.2 "order as a data value").
        let (_, rows) = run(
            w,
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               RETURN $a//enzyme_id, $a//reference[1]/@swissprot_accession_number"#,
        );
        let expected: BTreeSet<(String, String)> = w
            .corpus
            .enzymes
            .iter()
            .filter(|e| !e.swissprot_refs.is_empty())
            .map(|e| (e.id.clone(), e.swissprot_refs[0].accession.clone()))
            .collect();
        let got: BTreeSet<(String, String)> =
            rows.iter().map(|r| (r[0].clone(), r[1].clone())).collect();
        assert_eq!(got, expected);
        assert!(!expected.is_empty());
    });
}

#[test]
fn before_and_after_operators() {
    both_strategies(|w, _| {
        // In every enzyme document the id element precedes the reference
        // list, so BEFORE selects all documents with both elements and
        // AFTER selects none.
        let with_refs: BTreeSet<String> = w
            .corpus
            .enzymes
            .iter()
            .filter(|e| !e.swissprot_refs.is_empty())
            .map(|e| e.id.clone())
            .collect();
        let (_, before_rows) = run(
            w,
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE $a//enzyme_id BEFORE $a//reference
               RETURN $a//enzyme_id"#,
        );
        let got: BTreeSet<String> = before_rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(got, with_refs);
        let (_, after_rows) = run(
            w,
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE $a//enzyme_id AFTER $a//reference
               RETURN $a//enzyme_id"#,
        );
        assert!(after_rows.is_empty());
    });
}

#[test]
fn order_operator_restrictions() {
    let w = build(ShreddingStrategy::Interval);
    let q = parse_query(
        r#"FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
           $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
           WHERE $a//description BEFORE $b//enzyme_id
           RETURN $a//embl_accession_number"#,
    )
    .unwrap();
    assert!(matches!(
        translate(&q, &w.catalog),
        Err(xomatiq_xquery::QueryError::Unsupported(_))
    ));
}

#[test]
fn positional_and_order_round_trip_text() {
    for src in [
        r#"FOR $a IN document("c")/r WHERE $a//x BEFORE $a//y RETURN $a//x"#,
        r#"FOR $a IN document("c")/r WHERE $a//x AFTER $a//y RETURN $a//x"#,
        r#"FOR $a IN document("c")/r RETURN $a//item[2]"#,
        r#"FOR $a IN document("c")/r RETURN $a//item[1]/@id"#,
    ] {
        let q = parse_query(src).unwrap();
        assert_eq!(parse_query(&q.to_string()).unwrap(), q, "{src}");
    }
}

#[test]
fn let_bindings_alias_path_expressions() {
    both_strategies(|w, _| {
        // A LET alias for the qualifier element, used with an attribute
        // predicate at the use site — Figure 11 rephrased with LET.
        let (_, rows) = run(
            w,
            r#"FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
                   $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
               LET $q := $a//qualifier[@qualifier_type = "EC number"],
                   $id := $b/enzyme_id
               WHERE $q = $id
               RETURN $Accession_Number = $a//embl_accession_number"#,
        );
        let expected: BTreeSet<String> = w
            .corpus
            .planted_ec_links
            .iter()
            .map(|(acc, _)| acc.clone())
            .collect();
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(got, expected);
    });
}

#[test]
fn let_chains_and_extension_steps() {
    both_strategies(|w, _| {
        // LET of a subtree, extended with further steps at the use site,
        // and a LET referencing an earlier LET.
        let (_, rows) = run(
            w,
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               LET $entry := $a/db_entry
               LET $refs := $entry/swissprot_reference_list
               WHERE contains($entry//catalytic_activity, "ketone")
               RETURN $a//enzyme_id, $refs/reference[1]/@swissprot_accession_number"#,
        );
        let expected: BTreeSet<String> = w
            .corpus
            .enzymes
            .iter()
            .filter(|e| !e.swissprot_refs.is_empty())
            .filter(|e| w.corpus.ketone_enzymes.contains(&e.id))
            .map(|e| e.id.clone())
            .collect();
        let got: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(got, expected);
    });
}

#[test]
fn let_errors() {
    let w = build(ShreddingStrategy::Interval);
    // LET referencing an unbound variable.
    let q = parse_query(
        r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
           LET $x := $zz//enzyme_id
           RETURN $x"#,
    )
    .unwrap();
    assert!(matches!(
        translate(&q, &w.catalog),
        Err(xomatiq_xquery::QueryError::UnboundVariable(_))
    ));
    // Conflicting predicates at target and use site.
    let q2 = parse_query(
        r#"FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
           LET $q := $a//qualifier[@qualifier_type = "gene"]
           WHERE $q[@qualifier_type = "EC number"] = "x"
           RETURN $a//embl_accession_number"#,
    )
    .unwrap();
    assert!(matches!(
        translate(&q2, &w.catalog),
        Err(xomatiq_xquery::QueryError::Unsupported(_))
    ));
}

#[test]
fn let_round_trips_through_text() {
    let q = parse_query(
        r#"FOR $a IN document("c")/r
           LET $x := $a//item[1]
           WHERE $x = "v"
           RETURN $x/@id"#,
    )
    .unwrap();
    assert_eq!(q.lets.len(), 1);
    let printed = q.to_string();
    assert!(printed.contains("LET $x := $a//item[1]"), "{printed}");
    assert_eq!(parse_query(&printed).unwrap(), q);
}

#[test]
fn duplicate_return_names_are_disambiguated() {
    let w = build(ShreddingStrategy::Interval);
    let q = parse_query(
        r#"FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
               $b IN document("hlx_sprot.all")/hlx_p_sequence
           WHERE $a//embl_accession_number = $b//xref/@xref_id
           RETURN $a//organism, $b//organism"#,
    )
    .unwrap();
    let t = translate(&q, &w.catalog).unwrap();
    assert_eq!(
        t.columns,
        vec!["organism".to_string(), "organism_1".to_string()]
    );
    // And it executes.
    w.db.query(&t.sql).run().unwrap();
}
