#![warn(missing_docs)]

//! # xomatiq-xquery
//!
//! The XomatiQ query language and its SQL translation (paper §3).
//!
//! The language is the FLWR subset of the June-2001 XQuery working draft
//! that the paper adopts — `FOR $v IN document("collection")/path`
//! bindings, a `WHERE` clause with conjunctive and disjunctive
//! constraints, and a `RETURN` clause of path expressions — plus the
//! paper's keyword extension `contains(target, "keyword" [, any])`
//! (Figures 8, 9 and 11 are all expressible and covered by tests).
//!
//! * [`lexer`] / [`ast`] / [`parser`] — query text → [`ast::FlwrQuery`];
//!   the AST pretty-prints back to canonical text, which is what the GUI's
//!   "Translate Query" button shows.
//! * [`catalog`] — the slice of warehouse metadata the translator needs
//!   (collection prefixes, shredding strategies, concrete path sets).
//! * [`xq2sql`] — the **XQ2SQL-Transformer** (§3.2): rewrites a FLWR query
//!   into one SQL query over the generic shredding schema, expanding `//`
//!   patterns against the stored path catalog, joining node instances on
//!   document/containment, and lowering `contains` onto the keyword index.

//!
//! ```
//! use xomatiq_xquery::parse_query;
//!
//! let q = parse_query(
//!     r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
//!        WHERE contains($a//catalytic_activity, "ketone")
//!        RETURN $a//enzyme_id"#,
//! )
//! .unwrap();
//! assert_eq!(q.bindings[0].collection, "hlx_enzyme.DEFAULT");
//! // The canonical text form round-trips.
//! assert_eq!(parse_query(&q.to_string()).unwrap(), q);
//! ```

pub mod ast;
pub mod catalog;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod xq2sql;

pub use ast::{Binding, Comparison, Condition, FlwrQuery, PathExpr, ReturnItem};
pub use catalog::{CatalogProvider, CollectionCatalog};
pub use error::{QueryError, QueryResult};
pub use parser::parse_query;
pub use xq2sql::{translate, TranslatedQuery};
