//! Query-language errors.

use std::fmt;

/// Result alias for query operations.
pub type QueryResult<T> = Result<T, QueryError>;

/// An error raised while lexing, parsing or translating a query.
///
/// The enum is `#[non_exhaustive]`: downstream crates must keep a
/// wildcard arm when matching, and can rely on [`QueryError::code`] for
/// a stable machine-readable discriminant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The query text failed to lex or parse.
    Parse(String),
    /// A variable was used without being bound in a FOR clause.
    UnboundVariable(String),
    /// A `document("...")` referenced an unknown collection.
    UnknownCollection(String),
    /// A path pattern matched nothing in the collection's path catalog.
    EmptyPath {
        /// The collection searched.
        collection: String,
        /// The pattern that matched nothing.
        pattern: String,
    },
    /// The query uses a construct the translator does not support.
    Unsupported(String),
    /// An invariant inside the translator itself failed — a bug surfaced
    /// as a typed error rather than a panic, so one bad query cannot take
    /// the process down.
    Internal(String),
}

impl QueryError {
    /// A stable, machine-readable error code: one lowercase snake_case
    /// token per variant, append-only across releases.
    pub fn code(&self) -> &'static str {
        match self {
            QueryError::Parse(_) => "parse",
            QueryError::UnboundVariable(_) => "unbound_variable",
            QueryError::UnknownCollection(_) => "unknown_collection",
            QueryError::EmptyPath { .. } => "empty_path",
            QueryError::Unsupported(_) => "unsupported",
            QueryError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(m) => write!(f, "query parse error: {m}"),
            QueryError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            QueryError::UnknownCollection(c) => write!(f, "unknown collection {c:?}"),
            QueryError::EmptyPath {
                collection,
                pattern,
            } => write!(
                f,
                "path {pattern:?} matches nothing in collection {collection:?}"
            ),
            QueryError::Unsupported(m) => write!(f, "unsupported query construct: {m}"),
            QueryError::Internal(m) => write!(f, "internal translator error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            QueryError::UnboundVariable("a".into()).to_string(),
            "unbound variable $a"
        );
        assert!(QueryError::EmptyPath {
            collection: "c".into(),
            pattern: "//x".into()
        }
        .to_string()
        .contains("matches nothing"));
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(QueryError::Parse("x".into()).code(), "parse");
        assert_eq!(
            QueryError::EmptyPath {
                collection: "c".into(),
                pattern: "//x".into()
            }
            .code(),
            "empty_path"
        );
    }
}
