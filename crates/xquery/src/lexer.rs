//! Tokenizer for the FLWR query language.

use crate::error::{QueryError, QueryResult};

/// A lexical token of the query language.
#[derive(Debug, Clone, PartialEq)]
pub enum QToken {
    /// A bare word: keyword (`FOR`, `IN`, ...), function name or element
    /// name (keywords are matched case-insensitively by the parser).
    Word(String),
    /// A `$variable` reference (without the dollar sign).
    Var(String),
    /// A `"double-quoted"` string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// Punctuation: `( ) [ ] , / // @ = != < <= > >= < >` plus the element
    /// constructor markers `<tag>` handled as Open/Close.
    Sym(&'static str),
    /// `<name>` — opening tag of a RETURN element constructor.
    OpenTag(String),
    /// `</name>` — closing tag of a RETURN element constructor.
    CloseTag(String),
}

impl QToken {
    /// Whether this token is the keyword `kw` (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, QToken::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.' || c == '-'
}

/// Tokenizes query text.
pub fn tokenize_query(input: &str) -> QueryResult<Vec<QToken>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        match c {
            '$' => {
                i += 1;
                let start = i;
                while i < chars.len() && is_word_char(chars[i]) {
                    i += 1;
                }
                if start == i {
                    return Err(QueryError::Parse("'$' without a variable name".into()));
                }
                tokens.push(QToken::Var(chars[start..i].iter().collect()));
            }
            '"' => {
                i += 1;
                let start = i;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(QueryError::Parse("unterminated string literal".into()));
                }
                tokens.push(QToken::Str(chars[start..i].iter().collect()));
                i += 1;
            }
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    tokens.push(QToken::Sym("//"));
                    i += 2;
                } else {
                    tokens.push(QToken::Sym("/"));
                    i += 1;
                }
            }
            '<' => {
                // Could be an element-constructor tag, a close tag, or a
                // comparison. A tag is `<name>` or `</name>` with no
                // spaces; anything else is a comparison operator.
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(QToken::Sym("<="));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    tokens.push(QToken::Sym("!="));
                    i += 2;
                } else {
                    let closing = chars.get(i + 1) == Some(&'/');
                    let name_start = if closing { i + 2 } else { i + 1 };
                    let mut j = name_start;
                    while j < chars.len() && is_word_char(chars[j]) {
                        j += 1;
                    }
                    if j > name_start && chars.get(j) == Some(&'>') {
                        let name: String = chars[name_start..j].iter().collect();
                        tokens.push(if closing {
                            QToken::CloseTag(name)
                        } else {
                            QToken::OpenTag(name)
                        });
                        i = j + 1;
                    } else {
                        tokens.push(QToken::Sym("<"));
                        i += 1;
                    }
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(QToken::Sym(">="));
                    i += 2;
                } else {
                    tokens.push(QToken::Sym(">"));
                    i += 1;
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(QToken::Sym("!="));
                    i += 2;
                } else {
                    return Err(QueryError::Parse("unexpected '!'".into()));
                }
            }
            '=' => {
                tokens.push(QToken::Sym("="));
                i += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(QToken::Sym(":="));
                    i += 2;
                } else {
                    return Err(QueryError::Parse("expected ':='".into()));
                }
            }
            '(' | ')' | '[' | ']' | ',' | '@' => {
                tokens.push(QToken::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    '[' => "[",
                    ']' => "]",
                    ',' => ",",
                    _ => "@",
                }));
                i += 1;
            }
            d if d.is_ascii_digit()
                || (d == '-' && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())) =>
            {
                let start = i;
                if d == '-' {
                    i += 1;
                }
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if let Ok(n) = text.parse::<i64>() {
                    tokens.push(QToken::Int(n));
                } else if let Ok(f) = text.parse::<f64>() {
                    tokens.push(QToken::Float(f));
                } else {
                    // Dotted identifiers like EC numbers are words.
                    tokens.push(QToken::Word(text));
                }
            }
            w if is_word_char(w) => {
                let start = i;
                while i < chars.len() && is_word_char(chars[i]) {
                    i += 1;
                }
                tokens.push(QToken::Word(chars[start..i].iter().collect()));
            }
            other => {
                return Err(QueryError::Parse(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_figure9_query() {
        let toks = tokenize_query(
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE contains($a//catalytic_activity, "ketone")
               RETURN $a//enzyme_id, $a//enzyme_description"#,
        )
        .unwrap();
        assert!(toks.contains(&QToken::Word("FOR".into())));
        assert!(toks.contains(&QToken::Var("a".into())));
        assert!(toks.contains(&QToken::Str("hlx_enzyme.DEFAULT".into())));
        assert!(toks.contains(&QToken::Sym("//")));
        assert!(toks.contains(&QToken::Word("contains".into())));
        assert!(toks.contains(&QToken::Str("ketone".into())));
    }

    #[test]
    fn variables_and_paths() {
        let toks = tokenize_query("$a//qualifier[@qualifier_type = \"EC number\"]").unwrap();
        assert_eq!(
            toks,
            vec![
                QToken::Var("a".into()),
                QToken::Sym("//"),
                QToken::Word("qualifier".into()),
                QToken::Sym("["),
                QToken::Sym("@"),
                QToken::Word("qualifier_type".into()),
                QToken::Sym("="),
                QToken::Str("EC number".into()),
                QToken::Sym("]"),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize_query("a = b != c < d <= e > f >= g <> h").unwrap();
        let syms: Vec<&QToken> = toks
            .iter()
            .filter(|t| matches!(t, QToken::Sym(_)))
            .collect();
        assert_eq!(
            syms,
            vec![
                &QToken::Sym("="),
                &QToken::Sym("!="),
                &QToken::Sym("<"),
                &QToken::Sym("<="),
                &QToken::Sym(">"),
                &QToken::Sym(">="),
                &QToken::Sym("!="),
            ]
        );
    }

    #[test]
    fn element_constructor_tags() {
        let toks = tokenize_query("RETURN <result> $a </result>").unwrap();
        assert_eq!(toks[1], QToken::OpenTag("result".into()));
        assert_eq!(toks[3], QToken::CloseTag("result".into()));
    }

    #[test]
    fn tag_vs_less_than_disambiguation() {
        let toks = tokenize_query("$a < 5").unwrap();
        assert_eq!(toks[1], QToken::Sym("<"));
        // `<name ` without closing angle is a comparison, then a word.
        let toks2 = tokenize_query("x <y z").unwrap();
        assert_eq!(toks2[1], QToken::Sym("<"));
        assert_eq!(toks2[2], QToken::Word("y".into()));
    }

    #[test]
    fn numbers_and_ec_like_words() {
        let toks = tokenize_query("42 2.5 1.14.17.3").unwrap();
        assert_eq!(
            toks,
            vec![
                QToken::Int(42),
                QToken::Float(2.5),
                QToken::Word("1.14.17.3".into()),
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize_query("$ ").is_err());
        assert!(tokenize_query("\"unterminated").is_err());
        assert!(tokenize_query("a ! b").is_err());
        assert!(tokenize_query("a ; b").is_err());
    }
}
