//! Abstract syntax of the FLWR subset, with canonical pretty-printing.
//!
//! The `Display` implementations render the textual form the paper's
//! figures show and the GUI's "Translate Query" button produces; parsing
//! the printed form yields the same AST (round-trip tested).

use std::fmt;

use xomatiq_xml::LabelPath;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompOp {
    /// The SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Ne => "<>",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        })
    }
}

/// A literal operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A string literal.
    Text(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Text(s) => write!(f, "\"{s}\""),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
        }
    }
}

/// An attribute predicate inside a step: `[@name = "value"]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrPredicate {
    /// Attribute name.
    pub name: String,
    /// Required value.
    pub value: String,
}

/// A path expression rooted at a bound variable, e.g.
/// `$a//qualifier[@qualifier_type = "EC number"]` or
/// `$a//reference/@swissprot_accession_number` or bare `$a`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// The variable the path starts from (without `$`).
    pub var: String,
    /// Relative steps from the variable's binding (None for bare `$v`).
    pub steps: Option<LabelPath>,
    /// Optional attribute predicate on the final element step.
    pub predicate: Option<AttrPredicate>,
    /// Terminal attribute access (`/@name`), mutually exclusive with a
    /// text-value reading of the final element.
    pub attribute: Option<String>,
    /// Positional (range) predicate `[N]` (1-based) on the final element
    /// step — one of the paper's §2.2 order-based functionalities, served
    /// by the stored ordinal. Sound when the element's siblings share its
    /// name, which holds for every list container the transformers emit.
    pub position: Option<u32>,
}

impl PathExpr {
    /// A bare variable reference `$var`.
    pub fn bare(var: &str) -> Self {
        PathExpr {
            var: var.to_string(),
            steps: None,
            predicate: None,
            attribute: None,
            position: None,
        }
    }

    /// A variable plus relative steps (no predicates).
    pub fn steps(var: &str, steps: LabelPath) -> Self {
        PathExpr {
            var: var.to_string(),
            steps: Some(steps),
            predicate: None,
            attribute: None,
            position: None,
        }
    }

    /// The trailing element label, used for deriving output column names.
    pub fn leaf_label(&self) -> Option<&str> {
        match &self.attribute {
            Some(a) => Some(a.as_str()),
            None => self.steps.as_ref().and_then(|s| s.leaf_label()),
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.var)?;
        if let Some(steps) = &self.steps {
            // Relative steps always attach with their own separators; an
            // unanchored first step renders as `//`.
            let printed = steps.to_string();
            if printed.starts_with('/') {
                write!(f, "{printed}")?;
            } else {
                write!(f, "//{printed}")?;
            }
        }
        if let Some(p) = &self.predicate {
            write!(f, "[@{} = \"{}\"]", p.name, p.value)?;
        }
        if let Some(n) = self.position {
            write!(f, "[{n}]")?;
        }
        if let Some(a) = &self.attribute {
            write!(f, "/@{a}")?;
        }
        Ok(())
    }
}

/// The right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Another path expression (a join).
    Path(PathExpr),
    /// A literal.
    Literal(Literal),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Path(p) => write!(f, "{p}"),
            Operand::Literal(l) => write!(f, "{l}"),
        }
    }
}

/// A comparison condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Left-hand path expression.
    pub left: PathExpr,
    /// Operator.
    pub op: CompOp,
    /// Right-hand operand.
    pub right: Operand,
}

/// A WHERE-clause condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
    /// A comparison.
    Compare(Comparison),
    /// The keyword extension `contains(target, "kw" [, any])`. With
    /// `any = true` (or a bare `$v` target) the keyword may occur anywhere
    /// in the document; otherwise it must occur in the targeted sub-tree.
    Contains {
        /// What to search.
        target: PathExpr,
        /// The keyword(s).
        keyword: String,
        /// Whole-document (`any`) search.
        any: bool,
    },
    /// Regular-expression matching `matches(target, "pattern")` — the
    /// capability the paper highlights against SQL-only integration
    /// systems (§4), primarily for sequence motifs (§2.2).
    Matches {
        /// The value to match (element text or attribute).
        target: PathExpr,
        /// The pattern (see `xomatiq_relstore::regex` for the syntax).
        pattern: String,
    },
    /// The order-based operators of §2.2: `left BEFORE right` /
    /// `left AFTER right` compare document positions of two path
    /// expressions bound to the same variable.
    Order {
        /// Left path expression.
        left: PathExpr,
        /// Right path expression.
        right: PathExpr,
        /// `true` for BEFORE, `false` for AFTER.
        before: bool,
    },
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::And(a, b) => {
                // Parenthesize nested conjunctions so the printed form
                // reparses to the identical tree shape.
                let wrap = |c: &Condition| matches!(c, Condition::And(..));
                if wrap(a) {
                    write!(f, "({a})")?;
                } else {
                    write!(f, "{a}")?;
                }
                write!(f, " AND ")?;
                if wrap(b) {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Condition::Or(a, b) => {
                // Parenthesize disjunctions so precedence survives a
                // print/parse round trip.
                write!(f, "({a} OR {b})")
            }
            Condition::Not(c) => write!(f, "NOT ({c})"),
            Condition::Compare(c) => write!(f, "{} {} {}", c.left, c.op, c.right),
            Condition::Contains {
                target,
                keyword,
                any,
            } => {
                if *any {
                    write!(f, "contains({target}, \"{keyword}\", any)")
                } else {
                    write!(f, "contains({target}, \"{keyword}\")")
                }
            }
            Condition::Matches { target, pattern } => {
                write!(f, "matches({target}, \"{pattern}\")")
            }
            Condition::Order {
                left,
                right,
                before,
            } => {
                write!(
                    f,
                    "{left} {} {right}",
                    if *before { "BEFORE" } else { "AFTER" }
                )
            }
        }
    }
}

/// A `FOR $var IN document("collection")/path` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The variable name (without `$`).
    pub var: String,
    /// The warehoused collection named in `document(...)`.
    pub collection: String,
    /// The rooted binding path after `document(...)`.
    pub path: LabelPath,
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "${} IN document(\"{}\"){}",
            self.var, self.collection, self.path
        )
    }
}

/// One item of the RETURN clause: `[$Alias =] pathexpr`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnItem {
    /// Optional output name (`$Accession_Number = ...` in Figure 11).
    pub alias: Option<String>,
    /// The returned path expression.
    pub path: PathExpr,
}

impl ReturnItem {
    /// The output column name: the alias, else the leaf label, else the
    /// variable name.
    pub fn output_name(&self) -> String {
        self.alias
            .clone()
            .or_else(|| self.path.leaf_label().map(str::to_string))
            .unwrap_or_else(|| self.path.var.clone())
    }
}

impl fmt::Display for ReturnItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(alias) = &self.alias {
            write!(f, "${alias} = ")?;
        }
        write!(f, "{}", self.path)
    }
}

/// A complete FLWR query.
#[derive(Debug, Clone, PartialEq)]
pub struct FlwrQuery {
    /// FOR bindings, in order.
    pub bindings: Vec<Binding>,
    /// LET bindings, in order (each may reference FOR variables and
    /// earlier LET variables) — the "let" of the paper's for-let-where-
    /// return expressions (§3).
    pub lets: Vec<LetBinding>,
    /// Optional WHERE condition.
    pub where_clause: Option<Condition>,
    /// RETURN items.
    pub return_items: Vec<ReturnItem>,
    /// Optional element-constructor wrapper around the RETURN list.
    pub wrapper: Option<String>,
}

/// A `LET $var := pathexpr` binding: the variable becomes an alias for the
/// path expression, usable in WHERE and RETURN (optionally extended with
/// further steps).
#[derive(Debug, Clone, PartialEq)]
pub struct LetBinding {
    /// The bound variable name (without `$`).
    pub var: String,
    /// The aliased path expression.
    pub target: PathExpr,
}

impl fmt::Display for LetBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${} := {}", self.var, self.target)
    }
}

impl fmt::Display for FlwrQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FOR ")?;
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ",\n    ")?;
            }
            write!(f, "{b}")?;
        }
        for l in &self.lets {
            write!(f, "\nLET {l}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, "\nWHERE {w}")?;
        }
        write!(f, "\nRETURN ")?;
        if let Some(tag) = &self.wrapper {
            write!(f, "<{tag}> ")?;
        }
        for (i, item) in self.return_items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(tag) = &self.wrapper {
            write!(f, " </{tag}>")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_expr_display() {
        let p = PathExpr {
            var: "a".into(),
            steps: Some(LabelPath::parse("//qualifier").unwrap()),
            predicate: Some(AttrPredicate {
                name: "qualifier_type".into(),
                value: "EC number".into(),
            }),
            attribute: None,
            position: None,
        };
        assert_eq!(
            p.to_string(),
            "$a//qualifier[@qualifier_type = \"EC number\"]"
        );
        let bare = PathExpr::bare("b");
        assert_eq!(bare.to_string(), "$b");
        let attr = PathExpr {
            var: "a".into(),
            steps: Some(LabelPath::parse("//reference").unwrap()),
            predicate: None,
            attribute: Some("swissprot_accession_number".into()),
            position: None,
        };
        assert_eq!(
            attr.to_string(),
            "$a//reference/@swissprot_accession_number"
        );
    }

    #[test]
    fn leaf_labels() {
        let p = PathExpr::steps("a", LabelPath::parse("//enzyme_id").unwrap());
        assert_eq!(p.leaf_label(), Some("enzyme_id"));
        assert_eq!(PathExpr::bare("a").leaf_label(), None);
    }

    #[test]
    fn return_item_output_names() {
        let item = ReturnItem {
            alias: Some("Accession_Number".into()),
            path: PathExpr::bare("a"),
        };
        assert_eq!(item.output_name(), "Accession_Number");
        let item2 = ReturnItem {
            alias: None,
            path: PathExpr::steps("a", LabelPath::parse("//enzyme_id").unwrap()),
        };
        assert_eq!(item2.output_name(), "enzyme_id");
        assert_eq!(
            ReturnItem {
                alias: None,
                path: PathExpr::bare("v")
            }
            .output_name(),
            "v"
        );
    }

    #[test]
    fn query_display_matches_figure_layout() {
        let q = FlwrQuery {
            bindings: vec![Binding {
                var: "a".into(),
                collection: "hlx_enzyme.DEFAULT".into(),
                path: LabelPath::parse("/hlx_enzyme").unwrap(),
            }],
            lets: Vec::new(),
            where_clause: Some(Condition::Contains {
                target: PathExpr::steps("a", LabelPath::parse("//catalytic_activity").unwrap()),
                keyword: "ketone".into(),
                any: false,
            }),
            return_items: vec![ReturnItem {
                alias: None,
                path: PathExpr::steps("a", LabelPath::parse("//enzyme_id").unwrap()),
            }],
            wrapper: None,
        };
        let text = q.to_string();
        assert!(text.starts_with("FOR $a IN document(\"hlx_enzyme.DEFAULT\")/hlx_enzyme"));
        assert!(text.contains("WHERE contains($a//catalytic_activity, \"ketone\")"));
        assert!(text.contains("RETURN $a//enzyme_id"));
    }
}
