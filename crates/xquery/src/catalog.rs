//! Warehouse metadata for the translator.
//!
//! XQ2SQL needs three facts per collection: which tables hold it (the
//! prefix), which shredding strategy laid those tables out, and the set of
//! concrete label paths occurring in it (so `//` patterns can be expanded
//! to indexed equality predicates instead of runtime path matching —
//! exactly the kind of rewrite §3.2's "meticulous analysis of the query
//! plans" is about).

use xomatiq_datahounds::ShreddingStrategy;
use xomatiq_relstore::Database;

use crate::error::{QueryError, QueryResult};

/// Metadata for one warehoused collection.
#[derive(Debug, Clone)]
pub struct CollectionCatalog {
    /// The collection name as used in `document("...")`.
    pub name: String,
    /// Table-name prefix (`hlx_embl_inv`).
    pub prefix: String,
    /// The shredding strategy the collection was loaded with.
    pub strategy: ShreddingStrategy,
    /// Every concrete element label path in the collection.
    pub element_paths: Vec<String>,
    /// Every concrete attribute path (`/a/b/@attr`).
    pub attribute_paths: Vec<String>,
}

impl CollectionCatalog {
    /// Loads a collection's catalog from the warehouse's paths table.
    pub fn from_warehouse(
        db: &Database,
        name: &str,
        prefix: &str,
        strategy: ShreddingStrategy,
    ) -> QueryResult<CollectionCatalog> {
        let rows = db
            .query(&format!("SELECT path FROM {prefix}_paths"))
            .run()
            .map_err(|_| QueryError::UnknownCollection(name.to_string()))?
            .rows;
        let mut element_paths = Vec::new();
        let mut attribute_paths = Vec::new();
        for row in rows {
            if let Ok(path) = row.get::<String>("path") {
                if path.contains("/@") {
                    attribute_paths.push(path);
                } else {
                    element_paths.push(path);
                }
            }
        }
        Ok(CollectionCatalog {
            name: name.to_string(),
            prefix: prefix.to_string(),
            strategy,
            element_paths,
            attribute_paths,
        })
    }
}

/// Resolves `document("...")` names to collection metadata.
pub trait CatalogProvider {
    /// Looks up a collection by name.
    fn collection(&self, name: &str) -> QueryResult<CollectionCatalog>;
}

/// A static provider over a fixed set of catalogs (used in tests and by
/// callers that pre-resolve their collections).
#[derive(Debug, Clone, Default)]
pub struct StaticCatalog {
    entries: Vec<CollectionCatalog>,
}

impl StaticCatalog {
    /// Creates a provider over `entries`.
    pub fn new(entries: Vec<CollectionCatalog>) -> Self {
        StaticCatalog { entries }
    }

    /// Adds a collection.
    pub fn push(&mut self, entry: CollectionCatalog) {
        self.entries.push(entry);
    }
}

impl CatalogProvider for StaticCatalog {
    fn collection(&self, name: &str) -> QueryResult<CollectionCatalog> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .cloned()
            .ok_or_else(|| QueryError::UnknownCollection(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CollectionCatalog {
        CollectionCatalog {
            name: "c".into(),
            prefix: "c".into(),
            strategy: ShreddingStrategy::Edge,
            element_paths: vec!["/r".into(), "/r/x".into()],
            attribute_paths: vec!["/r/x/@id".into()],
        }
    }

    #[test]
    fn static_catalog_lookup() {
        let provider = StaticCatalog::new(vec![sample()]);
        assert_eq!(provider.collection("c").unwrap().prefix, "c");
        assert!(matches!(
            provider.collection("missing"),
            Err(QueryError::UnknownCollection(_))
        ));
    }
}
