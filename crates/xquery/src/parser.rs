//! Recursive-descent parser for the FLWR subset.

use xomatiq_xml::LabelPath;

use crate::ast::{
    AttrPredicate, Binding, CompOp, Comparison, Condition, FlwrQuery, LetBinding, Literal, Operand,
    PathExpr, ReturnItem,
};
use crate::error::{QueryError, QueryResult};
use crate::lexer::{tokenize_query, QToken};

/// Parses query text into a [`FlwrQuery`].
pub fn parse_query(input: &str) -> QueryResult<FlwrQuery> {
    let tokens = tokenize_query(input)?;
    let mut p = QueryParser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(QueryError::Parse(format!(
            "unexpected trailing input near {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(q)
}

struct QueryParser {
    tokens: Vec<QToken>,
    pos: usize,
}

impl QueryParser {
    fn peek(&self) -> Option<&QToken> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<QToken> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> QueryResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(QToken::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> QueryResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn word(&mut self) -> QueryResult<String> {
        match self.next() {
            Some(QToken::Word(w)) => Ok(w),
            other => Err(QueryError::Parse(format!(
                "expected a name, found {other:?}"
            ))),
        }
    }

    fn var(&mut self) -> QueryResult<String> {
        match self.next() {
            Some(QToken::Var(v)) => Ok(v),
            other => Err(QueryError::Parse(format!(
                "expected $variable, found {other:?}"
            ))),
        }
    }

    fn string(&mut self) -> QueryResult<String> {
        match self.next() {
            Some(QToken::Str(s)) => Ok(s),
            other => Err(QueryError::Parse(format!(
                "expected a string, found {other:?}"
            ))),
        }
    }

    fn query(&mut self) -> QueryResult<FlwrQuery> {
        self.expect_kw("FOR")?;
        let mut bindings = vec![self.binding()?];
        while self.eat_sym(",") {
            bindings.push(self.binding()?);
        }
        let mut lets = Vec::new();
        while self.eat_kw("LET") {
            loop {
                let var = self.var()?;
                self.expect_sym(":=")?;
                let target = self.path_expr()?;
                lets.push(LetBinding { var, target });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.condition()?)
        } else {
            None
        };
        self.expect_kw("RETURN")?;
        let wrapper = match self.peek() {
            Some(QToken::OpenTag(tag)) => {
                let tag = tag.clone();
                self.pos += 1;
                Some(tag)
            }
            _ => None,
        };
        let mut return_items = vec![self.return_item()?];
        while self.eat_sym(",") {
            return_items.push(self.return_item()?);
        }
        if let Some(tag) = &wrapper {
            match self.next() {
                Some(QToken::CloseTag(close)) if close == *tag => {}
                other => {
                    return Err(QueryError::Parse(format!(
                        "expected </{tag}>, found {other:?}"
                    )))
                }
            }
        }
        Ok(FlwrQuery {
            bindings,
            lets,
            where_clause,
            return_items,
            wrapper,
        })
    }

    fn binding(&mut self) -> QueryResult<Binding> {
        let var = self.var()?;
        self.expect_kw("IN")?;
        // document("collection")
        let doc = self.word()?;
        if !doc.eq_ignore_ascii_case("document") {
            return Err(QueryError::Parse(format!(
                "expected document(...), found {doc}"
            )));
        }
        self.expect_sym("(")?;
        let collection = self.string()?;
        self.expect_sym(")")?;
        // Rooted path: /name(/name | //name)*
        let path = self.rooted_path()?;
        Ok(Binding {
            var,
            collection,
            path,
        })
    }

    fn rooted_path(&mut self) -> QueryResult<LabelPath> {
        let mut text = String::new();
        loop {
            if self.eat_sym("//") {
                text.push_str("//");
            } else if self.eat_sym("/") {
                text.push('/');
            } else {
                break;
            }
            text.push_str(&self.word()?);
        }
        if text.is_empty() {
            return Err(QueryError::Parse(
                "expected a path after document(...)".into(),
            ));
        }
        LabelPath::parse(&text).map_err(|e| QueryError::Parse(e.to_string()))
    }

    /// Parses `$var(step)*([@attr = "v"])?(/@attr)?`.
    fn path_expr(&mut self) -> QueryResult<PathExpr> {
        let var = self.var()?;
        let mut text = String::new();
        let mut attribute = None;
        loop {
            let descendant = if self.eat_sym("//") {
                true
            } else if self.eat_sym("/") {
                false
            } else {
                break;
            };
            if self.eat_sym("@") {
                attribute = Some(self.word()?);
                break;
            }
            text.push_str(if descendant { "//" } else { "/" });
            text.push_str(&self.word()?);
        }
        let steps = if text.is_empty() {
            None
        } else {
            Some(LabelPath::parse(&text).map_err(|e| QueryError::Parse(e.to_string()))?)
        };
        // Optional predicates — `[@attr = v]` and/or positional `[N]` —
        // then an optional trailing /@attr.
        let mut predicate = None;
        let mut position = None;
        while attribute.is_none() && self.eat_sym("[") {
            if self.eat_sym("@") {
                if predicate.is_some() {
                    return Err(QueryError::Parse(
                        "at most one attribute predicate per step".into(),
                    ));
                }
                let name = self.word()?;
                self.expect_sym("=")?;
                let value = match self.next() {
                    Some(QToken::Str(s)) => s,
                    Some(QToken::Word(w)) => w,
                    Some(QToken::Int(i)) => i.to_string(),
                    other => {
                        return Err(QueryError::Parse(format!(
                            "expected a predicate value, found {other:?}"
                        )))
                    }
                };
                self.expect_sym("]")?;
                predicate = Some(AttrPredicate { name, value });
            } else {
                match self.next() {
                    Some(QToken::Int(n)) if n >= 1 => {
                        if position.is_some() {
                            return Err(QueryError::Parse(
                                "at most one positional predicate per step".into(),
                            ));
                        }
                        position = Some(n as u32);
                        self.expect_sym("]")?;
                    }
                    other => {
                        return Err(QueryError::Parse(format!(
                            "expected '@attr = value' or a 1-based position, found {other:?}"
                        )))
                    }
                }
            }
            if self.eat_sym("/") {
                self.expect_sym("@")?;
                attribute = Some(self.word()?);
                break;
            }
        }
        Ok(PathExpr {
            var,
            steps,
            predicate,
            attribute,
            position,
        })
    }

    fn return_item(&mut self) -> QueryResult<ReturnItem> {
        // `$Alias = $v//path` vs plain `$v//path`: decide by lookahead for
        // `= $` after the variable.
        let save = self.pos;
        let first = self.var()?;
        if self.eat_sym("=") {
            if matches!(self.peek(), Some(QToken::Var(_))) {
                let path = self.path_expr()?;
                return Ok(ReturnItem {
                    alias: Some(first),
                    path,
                });
            }
            return Err(QueryError::Parse(
                "expected a path expression after '=' in RETURN".into(),
            ));
        }
        self.pos = save;
        let path = self.path_expr()?;
        Ok(ReturnItem { alias: None, path })
    }

    // Conditions: OR < AND < NOT < primary.
    fn condition(&mut self) -> QueryResult<Condition> {
        let mut left = self.and_condition()?;
        while self.eat_kw("OR") {
            let right = self.and_condition()?;
            left = Condition::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_condition(&mut self) -> QueryResult<Condition> {
        let mut left = self.not_condition()?;
        while self.eat_kw("AND") {
            let right = self.not_condition()?;
            left = Condition::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_condition(&mut self) -> QueryResult<Condition> {
        if self.eat_kw("NOT") {
            return Ok(Condition::Not(Box::new(self.not_condition()?)));
        }
        self.primary_condition()
    }

    fn primary_condition(&mut self) -> QueryResult<Condition> {
        if self.peek().is_some_and(|t| t.is_kw("matches")) {
            self.pos += 1;
            self.expect_sym("(")?;
            let target = self.path_expr()?;
            self.expect_sym(",")?;
            let pattern = self.string()?;
            self.expect_sym(")")?;
            return Ok(Condition::Matches { target, pattern });
        }
        if self.peek().is_some_and(|t| t.is_kw("contains")) {
            self.pos += 1;
            self.expect_sym("(")?;
            let target = self.path_expr()?;
            self.expect_sym(",")?;
            let keyword = self.string()?;
            let mut any = false;
            if self.eat_sym(",") {
                self.expect_kw("any")?;
                any = true;
            }
            self.expect_sym(")")?;
            // A bare-variable target is inherently a whole-document search.
            let any = any || (target.steps.is_none() && target.attribute.is_none());
            return Ok(Condition::Contains {
                target,
                keyword,
                any,
            });
        }
        if self.eat_sym("(") {
            let inner = self.condition()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        // Comparison: pathexpr op operand — or an order-based condition.
        let left = self.path_expr()?;
        if self.eat_kw("BEFORE") {
            let right = self.path_expr()?;
            return Ok(Condition::Order {
                left,
                right,
                before: true,
            });
        }
        if self.eat_kw("AFTER") {
            let right = self.path_expr()?;
            return Ok(Condition::Order {
                left,
                right,
                before: false,
            });
        }
        let op = match self.next() {
            Some(QToken::Sym("=")) => CompOp::Eq,
            Some(QToken::Sym("!=")) => CompOp::Ne,
            Some(QToken::Sym("<")) => CompOp::Lt,
            Some(QToken::Sym("<=")) => CompOp::Le,
            Some(QToken::Sym(">")) => CompOp::Gt,
            Some(QToken::Sym(">=")) => CompOp::Ge,
            other => {
                return Err(QueryError::Parse(format!(
                    "expected a comparison operator, found {other:?}"
                )))
            }
        };
        let right = match self.peek() {
            Some(QToken::Var(_)) => Operand::Path(self.path_expr()?),
            Some(QToken::Str(_)) => Operand::Literal(Literal::Text(self.string()?)),
            Some(QToken::Int(i)) => {
                let v = *i;
                self.pos += 1;
                Operand::Literal(Literal::Int(v))
            }
            Some(QToken::Float(x)) => {
                let v = *x;
                self.pos += 1;
                Operand::Literal(Literal::Float(v))
            }
            Some(QToken::Word(w)) => {
                // Unquoted words (EC numbers in hand-written queries).
                let v = w.clone();
                self.pos += 1;
                Operand::Literal(Literal::Text(v))
            }
            other => {
                return Err(QueryError::Parse(format!(
                    "expected a comparison operand, found {other:?}"
                )))
            }
        };
        Ok(Condition::Compare(Comparison { left, op, right }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 8 keyword query (names made valid XML).
    pub const FIGURE8: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_p_sequence
WHERE contains($a, "cdc6", any)
  AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number
"#;

    /// The paper's Figure 9 sub-tree query.
    pub const FIGURE9: &str = r#"
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description
"#;

    /// The paper's Figure 11 join query.
    pub const FIGURE11: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description
"#;

    #[test]
    fn parses_figure8() {
        let q = parse_query(FIGURE8).unwrap();
        assert_eq!(q.bindings.len(), 2);
        assert_eq!(q.bindings[0].collection, "hlx_embl.inv");
        assert_eq!(q.bindings[0].path.to_string(), "/hlx_n_sequence");
        match q.where_clause.as_ref().unwrap() {
            Condition::And(a, b) => {
                assert!(matches!(**a, Condition::Contains { any: true, .. }));
                assert!(matches!(**b, Condition::Contains { any: true, .. }));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(q.return_items.len(), 2);
        assert_eq!(q.return_items[0].output_name(), "sprot_accession_number");
    }

    #[test]
    fn parses_figure9() {
        let q = parse_query(FIGURE9).unwrap();
        assert_eq!(q.bindings.len(), 1);
        match q.where_clause.as_ref().unwrap() {
            Condition::Contains {
                target,
                keyword,
                any,
            } => {
                assert_eq!(target.to_string(), "$a//catalytic_activity");
                assert_eq!(keyword, "ketone");
                assert!(!any);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_figure11() {
        let q = parse_query(FIGURE11).unwrap();
        assert_eq!(q.bindings[0].path.to_string(), "/hlx_n_sequence/db_entry");
        match q.where_clause.as_ref().unwrap() {
            Condition::Compare(c) => {
                assert_eq!(
                    c.left.to_string(),
                    "$a//qualifier[@qualifier_type = \"EC number\"]"
                );
                assert_eq!(c.op, CompOp::Eq);
                assert!(matches!(&c.right, Operand::Path(p) if p.to_string() == "$b/enzyme_id"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(q.return_items[0].alias.as_deref(), Some("Accession_Number"));
        assert_eq!(q.return_items[1].output_name(), "Accession_Description");
    }

    #[test]
    fn display_parse_round_trip() {
        for src in [FIGURE8, FIGURE9, FIGURE11] {
            let q = parse_query(src).unwrap();
            let printed = q.to_string();
            let reparsed = parse_query(&printed).unwrap();
            assert_eq!(q, reparsed, "round trip failed for:\n{printed}");
        }
    }

    #[test]
    fn parses_wrapper_element() {
        let q = parse_query(r#"FOR $a IN document("c")/r RETURN <result> $a//x, $a//y </result>"#)
            .unwrap();
        assert_eq!(q.wrapper.as_deref(), Some("result"));
        assert_eq!(q.return_items.len(), 2);
        // Mismatched close tag is an error.
        assert!(
            parse_query(r#"FOR $a IN document("c")/r RETURN <result> $a//x </other>"#).is_err()
        );
    }

    #[test]
    fn parses_logical_operators_and_precedence() {
        let q = parse_query(
            r#"FOR $a IN document("c")/r
               WHERE $a//x = "1" OR $a//y = "2" AND NOT $a//z = "3"
               RETURN $a//x"#,
        )
        .unwrap();
        // OR at top; AND under its right arm; NOT inside.
        match q.where_clause.unwrap() {
            Condition::Or(_, right) => match *right {
                Condition::And(_, inner_right) => {
                    assert!(matches!(*inner_right, Condition::Not(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_numeric_comparisons() {
        let q = parse_query(
            r#"FOR $a IN document("c")/r WHERE $a//sequence/@length > 100 RETURN $a//x"#,
        )
        .unwrap();
        match q.where_clause.unwrap() {
            Condition::Compare(c) => {
                assert_eq!(c.left.attribute.as_deref(), Some("length"));
                assert_eq!(c.op, CompOp::Gt);
                assert_eq!(c.right, Operand::Literal(Literal::Int(100)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "FOR $a",
            r#"FOR $a IN doc("c")/r RETURN $a"#,
            r#"FOR $a IN document("c") RETURN $a"#, // missing path
            r#"FOR $a IN document("c")/r WHERE RETURN $a"#,
            r#"FOR $a IN document("c")/r RETURN"#,
            r#"FOR $a IN document("c")/r WHERE contains($a) RETURN $a"#,
            r#"FOR $a IN document("c")/r RETURN $x = 5"#,
        ] {
            assert!(parse_query(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        let q =
            parse_query(r#"for $a in document("c")/r where contains($a, "kw", ANY) return $a//x"#)
                .unwrap();
        assert!(matches!(
            q.where_clause.unwrap(),
            Condition::Contains { any: true, .. }
        ));
    }
}
