//! The XQ2SQL-Transformer (paper §3.2): FLWR → SQL over the generic
//! shredding schema.
//!
//! Translation is join-graph based. Every `FOR` binding becomes a node
//! table instance pinned to its (expanded) binding path; every distinct
//! path expression becomes a further instance joined to its binding by
//! `doc_id` (plus, under Interval shredding, the structural containment
//! predicate `start > base.start AND start < base.stop`); attribute
//! predicates and attribute accesses join the attribute table on the
//! owner id. The WHERE tree then compiles to a boolean expression over
//! instance columns — string comparisons against `val`, numeric
//! comparisons against the `num_val` shadow column, and `contains` against
//! the keyword-indexed `val`.
//!
//! The generated statement is always `SELECT DISTINCT`: the instance join
//! graph can produce one row per *witness* of a path expression, and
//! XQuery's existential semantics ask for each binding combination once.
//!
//! Known deviation (documented in DESIGN.md): predicates attached to
//! *optional* sub-elements use inner joins, so a disjunction over an
//! element that is absent from a document cannot select that document.
//! The paper's published queries (Figures 8, 9, 11) are unaffected.

use std::collections::HashMap;

use xomatiq_datahounds::ShreddingStrategy;
use xomatiq_xml::LabelPath;

use crate::ast::{Comparison, Condition, FlwrQuery, Literal, Operand, PathExpr};
use crate::catalog::{CatalogProvider, CollectionCatalog};
use crate::error::{QueryError, QueryResult};

/// The output of translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslatedQuery {
    /// The SQL text to run on the relational engine.
    pub sql: String,
    /// Output column names, in select-list order.
    pub columns: Vec<String>,
}

/// Translates a parsed query against the warehouse catalog.
pub fn translate(
    query: &FlwrQuery,
    provider: &dyn CatalogProvider,
) -> QueryResult<TranslatedQuery> {
    let _span = xomatiq_obs::span!("xquery.xq2sql.translate");
    let result = (|| {
        let inlined = inline_lets(query)?;
        let mut t = Translator::new(provider);
        t.run(&inlined)
    })();
    if result.is_err() {
        // A bad query is a counter tick, never a panic.
        xomatiq_obs::global().counter("xquery.xq2sql.errors").inc();
    }
    result
}

/// Rewrites LET variables away: every use of a LET variable becomes the
/// LET target extended with the use site's own steps/predicates. LETs may
/// reference earlier LETs; the final base of every chain must be a FOR
/// variable.
fn inline_lets(query: &FlwrQuery) -> QueryResult<FlwrQuery> {
    if query.lets.is_empty() {
        return Ok(query.clone());
    }
    let mut map: HashMap<String, PathExpr> = HashMap::new();
    for l in &query.lets {
        let target = substitute_path(&l.target, &map)?;
        if !query.bindings.iter().any(|b| b.var == target.var) {
            return Err(QueryError::UnboundVariable(target.var.clone()));
        }
        map.insert(l.var.clone(), target);
    }
    let where_clause = match &query.where_clause {
        Some(c) => Some(substitute_condition(c, &map)?),
        None => None,
    };
    let return_items = query
        .return_items
        .iter()
        .map(|item| {
            Ok(crate::ast::ReturnItem {
                alias: item.alias.clone(),
                path: substitute_path(&item.path, &map)?,
            })
        })
        .collect::<QueryResult<_>>()?;
    Ok(FlwrQuery {
        bindings: query.bindings.clone(),
        lets: Vec::new(),
        where_clause,
        return_items,
        wrapper: query.wrapper.clone(),
    })
}

fn substitute_path(pe: &PathExpr, map: &HashMap<String, PathExpr>) -> QueryResult<PathExpr> {
    let Some(base) = map.get(&pe.var) else {
        return Ok(pe.clone());
    };
    if base.attribute.is_some() && (pe.steps.is_some() || pe.attribute.is_some()) {
        return Err(QueryError::Unsupported(
            "cannot navigate below an attribute-valued LET variable".into(),
        ));
    }
    let steps = match (&base.steps, &pe.steps) {
        (Some(b), Some(u)) => Some(b.join(u)),
        (Some(b), None) => Some(b.clone()),
        (None, Some(u)) => Some(u.clone()),
        (None, None) => None,
    };
    let pick = |a: &Option<String>, b: &Option<String>, what: &str| match (a, b) {
        (Some(_), Some(_)) => Err(QueryError::Unsupported(format!(
            "both the LET target and its use carry {what}"
        ))),
        (Some(v), None) | (None, Some(v)) => Ok(Some(v.clone())),
        (None, None) => Ok(None),
    };
    let predicate = match (&base.predicate, &pe.predicate) {
        (Some(_), Some(_)) => {
            return Err(QueryError::Unsupported(
                "both the LET target and its use carry an attribute predicate".into(),
            ))
        }
        (Some(p), None) | (None, Some(p)) => Some(p.clone()),
        (None, None) => None,
    };
    let position = match (base.position, pe.position) {
        (Some(_), Some(_)) => {
            return Err(QueryError::Unsupported(
                "both the LET target and its use carry a positional predicate".into(),
            ))
        }
        (p, q) => p.or(q),
    };
    Ok(PathExpr {
        var: base.var.clone(),
        steps,
        predicate,
        attribute: pick(&base.attribute, &pe.attribute, "an attribute access")?,
        position,
    })
}

fn substitute_condition(
    cond: &Condition,
    map: &HashMap<String, PathExpr>,
) -> QueryResult<Condition> {
    Ok(match cond {
        Condition::And(a, b) => Condition::And(
            Box::new(substitute_condition(a, map)?),
            Box::new(substitute_condition(b, map)?),
        ),
        Condition::Or(a, b) => Condition::Or(
            Box::new(substitute_condition(a, map)?),
            Box::new(substitute_condition(b, map)?),
        ),
        Condition::Not(c) => Condition::Not(Box::new(substitute_condition(c, map)?)),
        Condition::Compare(c) => Condition::Compare(Comparison {
            left: substitute_path(&c.left, map)?,
            op: c.op,
            right: match &c.right {
                Operand::Path(p) => Operand::Path(substitute_path(p, map)?),
                lit @ Operand::Literal(_) => lit.clone(),
            },
        }),
        Condition::Contains {
            target,
            keyword,
            any,
        } => Condition::Contains {
            target: substitute_path(target, map)?,
            keyword: keyword.clone(),
            any: *any,
        },
        Condition::Matches { target, pattern } => Condition::Matches {
            target: substitute_path(target, map)?,
            pattern: pattern.clone(),
        },
        Condition::Order {
            left,
            right,
            before,
        } => Condition::Order {
            left: substitute_path(left, map)?,
            right: substitute_path(right, map)?,
            before: *before,
        },
    })
}

fn quote(s: &str) -> String {
    s.replace('\'', "''")
}

/// A resolved reference to a queryable value.
struct ValueRef {
    /// SQL expression for the textual value.
    text: String,
    /// SQL expression for the numeric shadow value, when one exists.
    num: Option<String>,
}

struct BindingInfo {
    catalog: CollectionCatalog,
    /// SQL alias of the binding's node-table instance.
    alias: String,
    /// The binding's rooted path pattern (relative steps join onto it).
    path: LabelPath,
}

struct Translator<'a> {
    provider: &'a dyn CatalogProvider,
    bindings: HashMap<String, BindingInfo>,
    /// FROM-clause entries: `table alias`.
    from: Vec<String>,
    /// Always-true linking conjuncts (instance definitions).
    links: Vec<String>,
    /// Instance cache: dedup key → value reference alias info.
    instances: HashMap<String, String>,
    next_node: usize,
    next_attr: usize,
}

impl<'a> Translator<'a> {
    fn new(provider: &'a dyn CatalogProvider) -> Self {
        Translator {
            provider,
            bindings: HashMap::new(),
            from: Vec::new(),
            links: Vec::new(),
            instances: HashMap::new(),
            next_node: 0,
            next_attr: 0,
        }
    }

    fn node_alias(&mut self) -> String {
        let a = format!("n{}", self.next_node);
        self.next_node += 1;
        a
    }

    fn attr_alias(&mut self) -> String {
        let a = format!("a{}", self.next_attr);
        self.next_attr += 1;
        a
    }

    fn run(&mut self, query: &FlwrQuery) -> QueryResult<TranslatedQuery> {
        // 1. Bind FOR variables to base instances.
        for binding in &query.bindings {
            let catalog = self.provider.collection(&binding.collection)?;
            let matched = expand(&catalog, &binding.path);
            if matched.is_empty() {
                return Err(QueryError::EmptyPath {
                    collection: binding.collection.clone(),
                    pattern: binding.path.to_string(),
                });
            }
            let alias = self.node_alias();
            self.from.push(format!("{}_nodes {alias}", catalog.prefix));
            self.links.push(path_condition(&alias, &matched));
            self.bindings.insert(
                binding.var.clone(),
                BindingInfo {
                    catalog,
                    alias,
                    path: binding.path.clone(),
                },
            );
        }

        // 2. WHERE tree → boolean SQL.
        let where_sql = match &query.where_clause {
            Some(cond) => Some(self.condition_sql(cond)?),
            None => None,
        };

        // 3. RETURN items → select list.
        let mut select = Vec::new();
        let mut columns = Vec::new();
        let mut used_names: HashMap<String, usize> = HashMap::new();
        for item in &query.return_items {
            let vr = self.resolve(&item.path)?;
            let base = sanitize_column(&item.output_name());
            // Deduplicate output names via the entry's own counter; no
            // second lookup that could miss and panic.
            let n = used_names.entry(base.clone()).or_insert(0);
            let name = if *n > 0 {
                format!("{base}_{n}")
            } else {
                base.clone()
            };
            *n += 1;
            select.push(format!("{} AS {name}", vr.text));
            columns.push(name);
        }
        if select.is_empty() {
            return Err(QueryError::Unsupported("RETURN clause is empty".into()));
        }

        // 4. Assemble.
        let mut sql = format!(
            "SELECT DISTINCT {} FROM {}",
            select.join(", "),
            self.from.join(", ")
        );
        let mut conjuncts = self.links.clone();
        if let Some(w) = where_sql {
            conjuncts.push(format!("({w})"));
        }
        if !conjuncts.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conjuncts.join(" AND "));
        }
        // Deterministic output order: by the first returned column.
        sql.push_str(&format!(" ORDER BY {}", columns[0]));
        Ok(TranslatedQuery { sql, columns })
    }

    fn binding(&self, var: &str) -> QueryResult<&BindingInfo> {
        self.bindings
            .get(var)
            .ok_or_else(|| QueryError::UnboundVariable(var.to_string()))
    }

    /// The node-table instance holding a path expression's target element
    /// (cached by expression shape). Positional predicates pin the stored
    /// ordinal — order as a data value at work (§2.2).
    fn elem_instance(&mut self, pe: &PathExpr) -> QueryResult<String> {
        let base = {
            let b = self.binding(&pe.var)?;
            (b.alias.clone(), b.catalog.clone())
        };
        let (base_alias, catalog) = base;
        let elem_alias = if let Some(steps) = &pe.steps {
            let key = format!("{}|{}|pos{:?}", pe.var, steps, pe.position);
            if let Some(existing) = self.instances.get(&key) {
                existing.clone()
            } else {
                // Expand binding-path ⨝ steps against the path catalog.
                let full = self.binding(&pe.var)?.path.join(steps);
                let matched = expand(&catalog, &full);
                if matched.is_empty() {
                    return Err(QueryError::EmptyPath {
                        collection: catalog.name.clone(),
                        pattern: full.to_string(),
                    });
                }
                let alias = self.node_alias();
                self.from.push(format!("{}_nodes {alias}", catalog.prefix));
                self.links
                    .push(format!("{alias}.doc_id = {base_alias}.doc_id"));
                self.links.push(path_condition(&alias, &matched));
                if catalog.strategy == ShreddingStrategy::Interval {
                    // Structural containment: the target must lie inside
                    // the binding element's region.
                    self.links
                        .push(format!("{alias}.start > {base_alias}.start"));
                    self.links
                        .push(format!("{alias}.start < {base_alias}.stop"));
                }
                if let Some(n) = pe.position {
                    self.links.push(format!("{alias}.ord = {}", n - 1));
                }
                self.instances.insert(key, alias.clone());
                alias
            }
        } else {
            base_alias.clone()
        };
        Ok(elem_alias)
    }

    /// Resolves a path expression to a value reference, materializing node
    /// and attribute instances (cached by expression shape) as needed.
    fn resolve(&mut self, pe: &PathExpr) -> QueryResult<ValueRef> {
        let catalog = self.binding(&pe.var)?.catalog.clone();
        let elem_alias = self.elem_instance(pe)?;

        // Attribute predicate: join the attrs table on the owner.
        if let Some(pred) = &pe.predicate {
            let key = format!("{}|{}|[{}={}]", pe.var, elem_alias, pred.name, pred.value);
            if !self.instances.contains_key(&key) {
                let alias = self.attr_alias();
                self.from.push(format!("{}_attrs {alias}", catalog.prefix));
                self.links
                    .push(format!("{alias}.doc_id = {elem_alias}.doc_id"));
                self.links
                    .push(format!("{alias}.owner = {elem_alias}.node_id"));
                self.links
                    .push(format!("{alias}.aname = '{}'", quote(&pred.name)));
                self.links
                    .push(format!("{alias}.aval = '{}'", quote(&pred.value)));
                self.instances.insert(key, alias);
            }
        }

        // Terminal attribute access: value comes from the attrs table.
        if let Some(attr) = &pe.attribute {
            let key = format!("{}|{}|@{}", pe.var, elem_alias, attr);
            let alias = if let Some(existing) = self.instances.get(&key) {
                existing.clone()
            } else {
                let alias = self.attr_alias();
                self.from.push(format!("{}_attrs {alias}", catalog.prefix));
                self.links
                    .push(format!("{alias}.doc_id = {elem_alias}.doc_id"));
                self.links
                    .push(format!("{alias}.owner = {elem_alias}.node_id"));
                self.links
                    .push(format!("{alias}.aname = '{}'", quote(attr)));
                self.instances.insert(key, alias.clone());
                alias
            };
            return Ok(ValueRef {
                text: format!("{alias}.aval"),
                num: Some(format!("{alias}.num_val")),
            });
        }

        Ok(ValueRef {
            text: format!("{elem_alias}.val"),
            num: Some(format!("{elem_alias}.num_val")),
        })
    }

    fn condition_sql(&mut self, cond: &Condition) -> QueryResult<String> {
        match cond {
            Condition::And(a, b) => Ok(format!(
                "({} AND {})",
                self.condition_sql(a)?,
                self.condition_sql(b)?
            )),
            Condition::Or(a, b) => Ok(format!(
                "({} OR {})",
                self.condition_sql(a)?,
                self.condition_sql(b)?
            )),
            Condition::Not(c) => Ok(format!("NOT ({})", self.condition_sql(c)?)),
            Condition::Compare(c) => self.comparison_sql(c),
            Condition::Matches { target, pattern } => {
                let vr = self.resolve(target)?;
                Ok(format!("MATCHES({}, '{}')", vr.text, quote(pattern)))
            }
            Condition::Order {
                left,
                right,
                before,
            } => {
                if left.var != right.var {
                    return Err(QueryError::Unsupported(
                        "BEFORE/AFTER compares positions within one bound document;                          both sides must use the same variable"
                            .into(),
                    ));
                }
                if left.attribute.is_some() || right.attribute.is_some() {
                    return Err(QueryError::Unsupported(
                        "BEFORE/AFTER applies to elements, not attributes".into(),
                    ));
                }
                // node_id is assigned in document order by both shredding
                // strategies (Interval stores the pre-order start there).
                let l = self.elem_instance(left)?;
                let r = self.elem_instance(right)?;
                let op = if *before { "<" } else { ">" };
                Ok(format!("{l}.node_id {op} {r}.node_id"))
            }
            Condition::Contains {
                target,
                keyword,
                any,
            } => {
                if *any || (target.steps.is_none() && target.attribute.is_none()) {
                    // Whole-document search: a fresh node instance scoped
                    // only by doc_id, matched by the keyword index.
                    let base_alias = self.binding(&target.var)?.alias.clone();
                    let catalog = self.binding(&target.var)?.catalog.clone();
                    let key = format!("{}|contains-any|{}", target.var, keyword);
                    let alias = if let Some(existing) = self.instances.get(&key) {
                        existing.clone()
                    } else {
                        let alias = self.node_alias();
                        self.from.push(format!("{}_nodes {alias}", catalog.prefix));
                        self.links
                            .push(format!("{alias}.doc_id = {base_alias}.doc_id"));
                        self.instances.insert(key, alias.clone());
                        alias
                    };
                    Ok(format!("CONTAINS({alias}.val, '{}')", quote(keyword)))
                } else if target.attribute.is_some() {
                    // Keyword search over an attribute value.
                    let vr = self.resolve(target)?;
                    Ok(format!("CONTAINS({}, '{}')", vr.text, quote(keyword)))
                } else {
                    // Sub-tree search (§3.1): the keyword may occur in the
                    // targeted element OR anywhere beneath it, so the
                    // witness instance's path set covers the whole
                    // sub-tree, not just the target's own text.
                    let base_alias = self.binding(&target.var)?.alias.clone();
                    let catalog = self.binding(&target.var)?.catalog.clone();
                    let full = match &target.steps {
                        Some(steps) => self.binding(&target.var)?.path.join(steps),
                        None => self.binding(&target.var)?.path.clone(),
                    };
                    let mut matched = expand(&catalog, &full);
                    let below = full.join(&LabelPath::parse("//*").map_err(|e| {
                        QueryError::Internal(format!("subtree pattern failed to parse: {e}"))
                    })?);
                    matched.extend(expand(&catalog, &below));
                    matched.sort();
                    matched.dedup();
                    if matched.is_empty() {
                        return Err(QueryError::EmptyPath {
                            collection: catalog.name.clone(),
                            pattern: full.to_string(),
                        });
                    }
                    let key = format!("{}|{}|subtree", target.var, full);
                    let alias = if let Some(existing) = self.instances.get(&key) {
                        existing.clone()
                    } else {
                        let alias = self.node_alias();
                        self.from.push(format!("{}_nodes {alias}", catalog.prefix));
                        self.links
                            .push(format!("{alias}.doc_id = {base_alias}.doc_id"));
                        self.links.push(path_condition(&alias, &matched));
                        if catalog.strategy == ShreddingStrategy::Interval {
                            self.links
                                .push(format!("{alias}.start > {base_alias}.start"));
                            self.links
                                .push(format!("{alias}.start < {base_alias}.stop"));
                        }
                        self.instances.insert(key, alias.clone());
                        alias
                    };
                    Ok(format!("CONTAINS({alias}.val, '{}')", quote(keyword)))
                }
            }
        }
    }

    fn comparison_sql(&mut self, c: &Comparison) -> QueryResult<String> {
        let left = self.resolve(&c.left)?;
        match &c.right {
            Operand::Path(p) => {
                let right = self.resolve(p)?;
                Ok(format!("{} {} {}", left.text, c.op.sql(), right.text))
            }
            Operand::Literal(Literal::Text(s)) => {
                Ok(format!("{} {} '{}'", left.text, c.op.sql(), quote(s)))
            }
            Operand::Literal(Literal::Int(i)) => {
                let num = left.num.ok_or_else(|| {
                    QueryError::Unsupported("numeric comparison on a non-value path".into())
                })?;
                Ok(format!("{num} {} {i}", c.op.sql()))
            }
            Operand::Literal(Literal::Float(f)) => {
                let num = left.num.ok_or_else(|| {
                    QueryError::Unsupported("numeric comparison on a non-value path".into())
                })?;
                Ok(format!("{num} {} {f}", c.op.sql()))
            }
        }
    }
}

/// Expands a rooted pattern against a catalog's element paths.
fn expand(catalog: &CollectionCatalog, pattern: &LabelPath) -> Vec<String> {
    catalog
        .element_paths
        .iter()
        .filter(|p| pattern.matches_path(p))
        .cloned()
        .collect()
}

/// `alias.path = 'p'` or an OR over multiple matched paths.
fn path_condition(alias: &str, paths: &[String]) -> String {
    if paths.len() == 1 {
        format!("{alias}.path = '{}'", quote(&paths[0]))
    } else {
        let parts: Vec<String> = paths
            .iter()
            .map(|p| format!("{alias}.path = '{}'", quote(p)))
            .collect();
        format!("({})", parts.join(" OR "))
    }
}

fn sanitize_column(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'c');
    }
    out
}
