//! Morsel-driven parallel execution over the segmented column store.
//!
//! Table scans are split into *segment-aligned* morsels — slot ranges
//! within a single column-store segment — so a worker touches one
//! segment's column vectors at a time and no per-morsel row
//! materialization happens up front. Zone maps prune non-matching
//! segments before any morsel is formed, the sargable conjuncts of the
//! innermost filter run as vectorized kernels over each morsel's
//! selection vector, and only surviving slots are materialized (through
//! the same column mask the streaming access path uses). A reusable
//! [`WorkerPool`] fans the morsels across workers and the per-morsel
//! outputs are reassembled in morsel order, which makes every parallel
//! plan produce byte-identical rows — and identical [`ExecStats`],
//! including `segments_pruned` — to the streaming executor in `exec.rs`.
//! Only plan shapes whose output order is a pure function of morsel order
//! are eligible (see [`parallel_eligible`]); anything else (sorts, limits,
//! nested-loop joins, index access paths) falls back to the sequential
//! streaming executor, a decision the planner surfaces as the
//! `parallel=N` line of `EXPLAIN`. Tables too small to amortize the
//! hand-off (fewer than two morsels' worth of rows) also run
//! sequentially; see [`should_parallelize`].
//!
//! Error semantics match streaming exactly: the streaming executor stops
//! at the first failing row in scan order, so workers here track the
//! lowest-numbered morsel that failed, keep processing *earlier* morsels
//! (one of them may fail even earlier), skip later ones, and report the
//! error from the lowest morsel index — which is the error the sequential
//! executor would have raised.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::colstore::ColStore;
use crate::db::Storage;
use crate::error::{RelError, RelResult};
use crate::exec::{
    column_fast_paths, column_mask, compile_sargs, eval_join_keys, expr_infallible,
    materialize_aggregates, projected_schema, ExecStats,
};
use crate::expr::{eval, eval_predicate, RowSchema};
use crate::plan::{Plan, ProjectItem};
use crate::pool::WorkerPool;
use crate::segment::SimplePred;
use crate::sql::ast::Expr;
use crate::table::Row;
use crate::value::Value;

/// A parallel-eligible access chain: `Filter*(Scan)`.
struct ChainShape<'p> {
    table: &'p str,
    alias: &'p str,
    /// Filter predicates in evaluation (innermost-first) order.
    predicates: Vec<&'p Expr>,
}

/// A hash join whose both sides are chains: left probes, right builds.
struct JoinShape<'p> {
    probe: ChainShape<'p>,
    build: ChainShape<'p>,
    left_keys: &'p [Expr],
    right_keys: &'p [Expr],
    residual: Option<&'p Expr>,
    semi: bool,
}

/// The parallel-eligible plan grammar.
enum Shape<'p> {
    Chain(ChainShape<'p>),
    Project {
        chain: ChainShape<'p>,
        items: &'p [ProjectItem],
    },
    Join {
        join: JoinShape<'p>,
        /// Projection applied on top of the join output, if any.
        items: Option<&'p [ProjectItem]>,
    },
    Aggregate {
        chain: ChainShape<'p>,
        group_by: &'p [Expr],
        items: &'p [ProjectItem],
    },
}

/// A parsed eligible plan: a shape, optionally under a `Distinct` that is
/// applied as an order-preserving post-merge pass.
struct Parsed<'p> {
    shape: Shape<'p>,
    distinct: Option<usize>,
}

fn parse_chain(plan: &Plan) -> Option<ChainShape<'_>> {
    let mut predicates = Vec::new();
    let mut node = plan;
    loop {
        match node {
            Plan::Filter { input, predicate } => {
                predicates.push(predicate);
                node = input;
            }
            Plan::Scan { table, alias } => {
                // Collected outermost-first; evaluation is innermost-first.
                predicates.reverse();
                return Some(ChainShape {
                    table,
                    alias,
                    predicates,
                });
            }
            _ => return None,
        }
    }
}

fn parse_join(plan: &Plan) -> Option<JoinShape<'_>> {
    let Plan::HashJoin {
        left,
        right,
        left_keys,
        right_keys,
        residual,
        semi,
    } = plan
    else {
        return None;
    };
    Some(JoinShape {
        probe: parse_chain(left)?,
        build: parse_chain(right)?,
        left_keys,
        right_keys,
        residual: residual.as_ref(),
        semi: *semi,
    })
}

fn parse_shape(plan: &Plan) -> Option<Parsed<'_>> {
    let (inner, distinct) = match plan {
        Plan::Distinct { input, visible } => (&**input, Some(*visible)),
        other => (other, None),
    };
    let shape = match inner {
        Plan::Scan { .. } | Plan::Filter { .. } => Shape::Chain(parse_chain(inner)?),
        Plan::Project { input, items, .. } => match &**input {
            Plan::HashJoin { .. } => Shape::Join {
                join: parse_join(input)?,
                items: Some(items),
            },
            _ => Shape::Project {
                chain: parse_chain(input)?,
                items,
            },
        },
        Plan::HashJoin { .. } => Shape::Join {
            join: parse_join(inner)?,
            items: None,
        },
        Plan::Aggregate {
            input,
            group_by,
            items,
            ..
        } => Shape::Aggregate {
            chain: parse_chain(input)?,
            group_by,
            items,
        },
        _ => return None,
    };
    Some(Parsed { shape, distinct })
}

/// Whether the plan can run on the morsel-parallel executor while
/// preserving the engine's documented row order. This is the single
/// source of truth for both the execution dispatch and the `parallel=N`
/// line `EXPLAIN` prints.
pub(crate) fn parallel_eligible(plan: &Plan) -> bool {
    parse_shape(plan).is_some()
}

/// Whether splitting work of estimated cost `cost` (in rows processed)
/// across workers is worth the hand-off: below two morsels' worth there
/// is at most one morsel per worker pair and the scan itself is cheaper
/// than scheduling it.
pub(crate) fn should_parallelize(cost: f64, workers: usize, morsel_size: usize) -> bool {
    workers >= 2 && cost >= 2.0 * morsel_size as f64
}

/// Total live rows the shape will scan, used by the small-table fallback.
/// Unknown tables report `usize::MAX` so the parallel path (not the
/// heuristic) surfaces the error — identically to the sequential one.
fn shape_rows(shape: &Shape<'_>, storage: &Storage) -> usize {
    let table_len = |name: &str| storage.table(name).map(|t| t.len()).unwrap_or(usize::MAX);
    match shape {
        Shape::Chain(c) | Shape::Project { chain: c, .. } | Shape::Aggregate { chain: c, .. } => {
            table_len(c.table)
        }
        Shape::Join { join, .. } => {
            table_len(join.probe.table).saturating_add(table_len(join.build.table))
        }
    }
}

/// Executes an eligible plan across the pool, or returns `None` when the
/// plan is not eligible (or fewer than two workers were requested, or the
/// work is too small for parallelism to pay for itself), in which case
/// the caller falls back to the streaming executor.
///
/// The cutover uses the planner's estimated cost when available, floored
/// by the snapshot's exact input row count: a query whose estimated work
/// (joins, filters) exceeds the raw scan size parallelizes even when its
/// base table alone would not, while a stale (low) cached estimate can
/// never suppress parallelism the input size already justifies.
pub(crate) fn execute_plan_parallel(
    plan: &Plan,
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
    est_cost: Option<f64>,
) -> Option<RelResult<(RowSchema, Vec<Row>, ExecStats)>> {
    if workers < 2 {
        return None;
    }
    let parsed = parse_shape(plan)?;
    let morsel_size = morsel_size.max(1);
    let input_rows = shape_rows(&parsed.shape, storage) as f64;
    let cost = est_cost.map_or(input_rows, |c| c.max(input_rows));
    if !should_parallelize(cost, workers, morsel_size) {
        return None;
    }
    Some(run_parsed(&parsed, storage, pool, workers, morsel_size))
}

/// A chain bound to the table's segment store: segment-aligned morsels
/// over the zone-map-surviving segments, the compiled sargable conjuncts,
/// the materialization column mask, and the filter predicates.
struct BoundChain<'a> {
    store: &'a ColStore,
    schema: RowSchema,
    predicates: Vec<&'a Expr>,
    /// Sargable conjuncts of the innermost predicate (compiled only when
    /// the whole predicate is infallible), mirroring the streaming access
    /// path's kernel pre-filter.
    sargs: Vec<SimplePred>,
    /// True when the sargs fully cover the innermost predicate: the
    /// kernels enforce it row-exactly, so [`Self::passes`] skips its
    /// re-evaluation (same rule as the streaming `FilterCursor`).
    sargs_cover_first: bool,
    /// Columns the consumer reads; `None` materializes every column.
    mask: Option<Vec<bool>>,
    /// Segment-aligned morsels: `(segment index, slot range)`, in scan
    /// (document) order.
    morsels: Vec<(usize, Range<usize>)>,
    /// Live rows in visited segments — the chain's `rows_scanned`.
    rows_scanned: u64,
    segments_pruned: u64,
}

impl BoundChain<'_> {
    fn passes(&self, row: &[Value]) -> RelResult<bool> {
        let skip = usize::from(self.sargs_cover_first);
        for p in &self.predicates[skip..] {
            if !eval_predicate(p, &self.schema, row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Runs `f` over every surviving row of morsel `i`: live slots,
    /// vectorized kernel pre-filter, masked materialization, then the
    /// full predicate re-evaluation (kernels only cover the sargable
    /// conjuncts of the innermost filter).
    fn for_each_row<F>(&self, i: usize, mut f: F) -> RelResult<()>
    where
        F: FnMut(Row) -> RelResult<()>,
    {
        let (seg_idx, range) = &self.morsels[i];
        let seg = &self.store.segments()[*seg_idx];
        let mut sel = Vec::new();
        seg.live_slots(range.clone(), &mut sel);
        for pred in &self.sargs {
            if sel.is_empty() {
                break;
            }
            seg.apply_pred(pred, &mut sel);
        }
        for &slot in &sel {
            let mut row = Vec::new();
            seg.row_into(slot as usize, self.mask.as_deref(), &mut row);
            if !self.passes(&row)? {
                continue;
            }
            f(row)?;
        }
        Ok(())
    }
}

/// Binds a chain to its table's segment store: compiles sargs from the
/// innermost predicate, prunes segments through their zone maps (when
/// enabled), and carves the survivors into `morsel_size`-slot morsels.
/// `needed` lists the consumer's expressions for column masking; `None`
/// materializes full rows (chain output, join sides).
fn bind_chain<'a>(
    chain: &ChainShape<'a>,
    storage: &'a Storage,
    morsel_size: usize,
    needed: Option<&[&Expr]>,
) -> RelResult<BoundChain<'a>> {
    let t = storage.table(chain.table)?;
    let schema = RowSchema::for_table(
        chain.alias,
        t.schema().columns.iter().map(|c| c.name.clone()),
    );
    let mask = needed.and_then(|exprs| {
        column_mask(
            exprs
                .iter()
                .copied()
                .chain(chain.predicates.iter().copied()),
            &schema,
            schema.len(),
        )
    });
    let (sargs, covered) = match chain.predicates.first() {
        Some(p) if expr_infallible(p, &schema) => compile_sargs(p, &schema),
        _ => (Vec::new(), false),
    };
    let sargs_cover_first = covered && !sargs.is_empty();
    let store = t.store();
    let prune_with: &[SimplePred] = if sargs.is_empty() || !storage.zone_map_pruning() {
        &[]
    } else {
        &sargs
    };
    let (visited, segments_pruned) = store.prune_segments(prune_with);
    let mut morsels = Vec::new();
    let mut rows_scanned = 0u64;
    for seg_idx in visited {
        let seg = &store.segments()[seg_idx];
        rows_scanned += seg.live_count() as u64;
        let mut lo = 0;
        while lo < seg.len() {
            let hi = (lo + morsel_size).min(seg.len());
            morsels.push((seg_idx, lo..hi));
            lo = hi;
        }
    }
    Ok(BoundChain {
        store,
        schema,
        predicates: chain.predicates.clone(),
        sargs,
        sargs_cover_first,
        mask,
        morsels,
        rows_scanned,
        segments_pruned,
    })
}

fn run_parsed(
    parsed: &Parsed<'_>,
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats)> {
    let (schema, mut rows, mut stats) = match &parsed.shape {
        Shape::Chain(chain) => run_chain(chain, None, storage, pool, workers, morsel_size)?,
        Shape::Project { chain, items } => {
            run_chain(chain, Some(items), storage, pool, workers, morsel_size)?
        }
        Shape::Join { join, items } => run_join(join, *items, storage, pool, workers, morsel_size)?,
        Shape::Aggregate {
            chain,
            group_by,
            items,
        } => run_aggregate(chain, group_by, items, storage, pool, workers, morsel_size)?,
    };
    if let Some(visible) = parsed.distinct {
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        rows.retain(|row| {
            // Probe with the borrowed prefix; allocate the owned key only
            // for rows seen for the first time.
            let key = &row[..visible.min(row.len())];
            if seen.contains(key) {
                false
            } else {
                seen.insert(key.to_vec());
                true
            }
        });
        // The streaming DistinctCursor retains one buffered row per
        // distinct key and never shrinks; under an Aggregate child the
        // aggregate's output buffer drains exactly as Distinct fills, so
        // the peak does not move.
        if !matches!(parsed.shape, Shape::Aggregate { .. }) {
            stats.buffered_peak += rows.len() as u64;
        }
        stats.rows_emitted = rows.len() as u64;
    }
    Ok((schema, rows, stats))
}

/// `Scan`/`Filter` chain, optionally with a projection on top.
fn run_chain(
    chain: &ChainShape<'_>,
    items: Option<&[ProjectItem]>,
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats)> {
    let needed: Option<Vec<&Expr>> = items.map(|items| items.iter().map(|it| &it.expr).collect());
    let bc = bind_chain(chain, storage, morsel_size, needed.as_deref())?;
    // Same per-item column fast path as the streaming ProjectCursor.
    let cols = items.map(|items| column_fast_paths(items.iter().map(|it| &it.expr), &bc.schema));
    let parts = morsel_map(pool, workers, 1, bc.morsels.len(), |range| {
        let mut out: Vec<Row> = Vec::new();
        for i in range {
            bc.for_each_row(i, |row| {
                match (items, &cols) {
                    (Some(items), Some(cols)) => out.push(
                        items
                            .iter()
                            .zip(cols)
                            .map(|(it, col)| match col {
                                Some(i) => Ok(row[*i].clone()),
                                None => eval(&it.expr, &bc.schema, &row),
                            })
                            .collect::<RelResult<_>>()?,
                    ),
                    _ => out.push(row),
                }
                Ok(())
            })?;
        }
        Ok(out)
    })?;
    let rows = parts.concat();
    let stats = ExecStats {
        rows_scanned: bc.rows_scanned,
        buffered_peak: 0,
        rows_emitted: rows.len() as u64,
        segments_pruned: bc.segments_pruned,
        ..ExecStats::default()
    };
    let schema = match items {
        Some(items) => projected_schema(items),
        None => bc.schema,
    };
    Ok((schema, rows, stats))
}

fn run_join(
    join: &JoinShape<'_>,
    items: Option<&[ProjectItem]>,
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats)> {
    // Join sides feed key evaluation, residuals and projections over the
    // combined schema, so both chains materialize full rows (no mask).
    let probe = bind_chain(&join.probe, storage, morsel_size, None)?;
    let build = bind_chain(&join.build, storage, morsel_size, None)?;
    let scanned = probe.rows_scanned + build.rows_scanned;
    let pruned = probe.segments_pruned + build.segments_pruned;

    // Build phase: evaluate keys morsel-parallel, then merge in morsel
    // order so match lists enumerate build rows in arrival order, exactly
    // like the streaming `BuildSide`.
    let built = morsel_map(pool, workers, 1, build.morsels.len(), |range| {
        let mut out: Vec<(Vec<Value>, Row)> = Vec::new();
        for i in range {
            build.for_each_row(i, |row| {
                if let Some(key) = eval_join_keys(join.right_keys, &build.schema, &row)? {
                    out.push((key, row));
                }
                Ok(())
            })?;
        }
        Ok(out)
    })?;

    if join.semi {
        let mut keys: HashSet<Vec<Value>> = HashSet::new();
        for part in built {
            for (key, _) in part {
                keys.insert(key);
            }
        }
        let buffered = keys.len() as u64;
        let out_schema = match items {
            Some(items) => projected_schema(items),
            None => probe.schema.clone(),
        };
        let parts = morsel_map(pool, workers, 1, probe.morsels.len(), |range| {
            let mut out: Vec<Row> = Vec::new();
            for i in range {
                probe.for_each_row(i, |lrow| {
                    let Some(key) = eval_join_keys(join.left_keys, &probe.schema, &lrow)? else {
                        return Ok(());
                    };
                    if !keys.contains(&key) {
                        return Ok(());
                    }
                    match items {
                        Some(items) => out.push(
                            items
                                .iter()
                                .map(|it| eval(&it.expr, &probe.schema, &lrow))
                                .collect::<RelResult<_>>()?,
                        ),
                        None => out.push(lrow),
                    }
                    Ok(())
                })?;
            }
            Ok(out)
        })?;
        let rows = parts.concat();
        let stats = ExecStats {
            rows_scanned: scanned,
            buffered_peak: buffered,
            rows_emitted: rows.len() as u64,
            segments_pruned: pruned,
            ..ExecStats::default()
        };
        return Ok((out_schema, rows, stats));
    }

    let mut build_rows: Vec<Row> = Vec::new();
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for part in built {
        for (key, row) in part {
            index.entry(key).or_default().push(build_rows.len());
            build_rows.push(row);
        }
    }
    let buffered = build_rows.len() as u64;
    let combined = probe.schema.join(&build.schema);
    let out_schema = match items {
        Some(items) => projected_schema(items),
        None => combined.clone(),
    };
    let parts = morsel_map(pool, workers, 1, probe.morsels.len(), |range| {
        let mut out: Vec<Row> = Vec::new();
        for i in range {
            probe.for_each_row(i, |lrow| {
                let Some(key) = eval_join_keys(join.left_keys, &probe.schema, &lrow)? else {
                    return Ok(());
                };
                let Some(matches) = index.get(&key) else {
                    return Ok(());
                };
                for &m in matches {
                    let mut row = lrow.clone();
                    row.extend(build_rows[m].iter().cloned());
                    if let Some(res) = join.residual {
                        if !eval_predicate(res, &combined, &row)? {
                            continue;
                        }
                    }
                    match items {
                        Some(items) => out.push(
                            items
                                .iter()
                                .map(|it| eval(&it.expr, &combined, &row))
                                .collect::<RelResult<_>>()?,
                        ),
                        None => out.push(row),
                    }
                }
                Ok(())
            })?;
        }
        Ok(out)
    })?;
    let rows = parts.concat();
    let stats = ExecStats {
        rows_scanned: scanned,
        buffered_peak: buffered,
        rows_emitted: rows.len() as u64,
        segments_pruned: pruned,
        ..ExecStats::default()
    };
    Ok((out_schema, rows, stats))
}

/// Two-phase parallel aggregation.
///
/// Phase 1 groups each morsel independently (keys in first-seen order);
/// the sequential merge concatenates per-group row lists in morsel order,
/// which reproduces the streaming executor's global first-seen group
/// order *and* each group's row order. Phase 2 evaluates the aggregate
/// items per group, fanned across workers in contiguous group chunks, so
/// the first erroring group in group order still wins.
fn run_aggregate(
    chain: &ChainShape<'_>,
    group_by: &[Expr],
    items: &[ProjectItem],
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats)> {
    let needed: Vec<&Expr> = group_by
        .iter()
        .chain(items.iter().map(|it| &it.expr))
        .collect();
    let bc = bind_chain(chain, storage, morsel_size, Some(&needed))?;
    type MorselGroups = Vec<(Vec<Value>, Vec<Row>)>;
    let parts: Vec<MorselGroups> = morsel_map(pool, workers, 1, bc.morsels.len(), |range| {
        let mut groups: MorselGroups = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for i in range {
            bc.for_each_row(i, |row| {
                let key: Vec<Value> = group_by
                    .iter()
                    .map(|e| eval(e, &bc.schema, &row))
                    .collect::<RelResult<_>>()?;
                match index.entry(key.clone()) {
                    Entry::Occupied(slot) => groups[*slot.get()].1.push(row),
                    Entry::Vacant(slot) => {
                        slot.insert(groups.len());
                        groups.push((key, vec![row]));
                    }
                }
                Ok(())
            })?;
        }
        Ok(groups)
    })?;

    let mut groups: MorselGroups = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for part in parts {
        for (key, rows) in part {
            match index.entry(key.clone()) {
                Entry::Occupied(slot) => groups[*slot.get()].1.extend(rows),
                Entry::Vacant(slot) => {
                    slot.insert(groups.len());
                    groups.push((key, rows));
                }
            }
        }
    }
    let surviving: u64 = groups.iter().map(|g| g.1.len() as u64).sum();
    if groups.is_empty() && group_by.is_empty() {
        // Global aggregate over empty input yields one row.
        groups.push((Vec::new(), Vec::new()));
    }

    let chunk = groups
        .len()
        .div_ceil(workers.min(groups.len()).max(1))
        .max(1);
    let parts = morsel_map(pool, workers, chunk, groups.len(), |range| {
        let mut out: Vec<Row> = Vec::with_capacity(range.len());
        for (_, group_rows) in &groups[range] {
            let null_row;
            let representative: &[Value] = match group_rows.first() {
                Some(r) => r,
                None => {
                    null_row = vec![Value::Null; bc.schema.len()];
                    &null_row
                }
            };
            let mut result_row = Vec::with_capacity(items.len());
            for item in items {
                let materialized = materialize_aggregates(&item.expr, &bc.schema, group_rows)?;
                result_row.push(eval(&materialized, &bc.schema, representative)?);
            }
            out.push(result_row);
        }
        Ok(out)
    })?;
    let rows = parts.concat();
    let stats = ExecStats {
        rows_scanned: bc.rows_scanned,
        buffered_peak: surviving.max(rows.len() as u64),
        rows_emitted: rows.len() as u64,
        segments_pruned: bc.segments_pruned,
        ..ExecStats::default()
    };
    Ok((projected_schema(items), rows, stats))
}

/// Fans `work` over `total` items split into `morsel_size`-sized ranges,
/// returning per-morsel results assembled in morsel order.
///
/// On error, workers keep processing morsels *before* the lowest failed
/// index (an earlier one may fail too), skip later ones, and the error
/// from the lowest morsel index is returned — matching the error the
/// sequential executor, which stops at the first failing row, would raise.
fn morsel_map<T, F>(
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
    total: usize,
    work: F,
) -> RelResult<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> RelResult<T> + Sync,
{
    let morsel_count = total.div_ceil(morsel_size);
    if morsel_count == 0 {
        return Ok(Vec::new());
    }
    let next = AtomicUsize::new(0);
    let error_floor = AtomicUsize::new(usize::MAX);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(morsel_count));
    let first_error: Mutex<Option<(usize, RelError)>> = Mutex::new(None);
    let run = |_task: usize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= morsel_count {
            break;
        }
        if i > error_floor.load(Ordering::Relaxed) {
            continue;
        }
        let lo = i * morsel_size;
        let hi = (lo + morsel_size).min(total);
        match work(lo..hi) {
            Ok(t) => results
                .lock()
                .expect("morsel results poisoned")
                .push((i, t)),
            Err(e) => {
                error_floor.fetch_min(i, Ordering::Relaxed);
                let mut slot = first_error.lock().expect("morsel error slot poisoned");
                let replace = match slot.as_ref() {
                    Some((j, _)) => i < *j,
                    None => true,
                };
                if replace {
                    *slot = Some((i, e));
                }
            }
        }
    };
    let tasks = workers.min(morsel_count).max(1);
    if tasks == 1 {
        run(0);
    } else {
        let run = &run;
        let boxed: Vec<Box<dyn FnOnce() + Send + '_>> = (0..tasks)
            .map(|k| Box::new(move || run(k)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.scope(boxed);
    }
    if let Some((_, e)) = first_error
        .into_inner()
        .expect("morsel error slot poisoned")
    {
        return Err(e);
    }
    let mut out = results.into_inner().expect("morsel results poisoned");
    out.sort_unstable_by_key(|(i, _)| *i);
    Ok(out.into_iter().map(|(_, t)| t).collect())
}

#[cfg(test)]
mod tests {
    use super::should_parallelize;

    #[test]
    fn small_workloads_stay_sequential() {
        assert!(!should_parallelize(0.0, 4, 8));
        assert!(!should_parallelize(15.0, 4, 8));
        assert!(should_parallelize(16.0, 4, 8));
        assert!(should_parallelize(100.0, 2, 8));
        assert!(!should_parallelize(1_000_000.0, 1, 8));
    }
}
