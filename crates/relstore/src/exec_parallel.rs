//! Morsel-driven parallel execution.
//!
//! Table scans are split into fixed-size row-range *morsels*; a reusable
//! [`WorkerPool`] fans the morsels across workers and the per-morsel
//! outputs are reassembled in morsel order, which makes every parallel
//! plan produce byte-identical rows — and identical [`ExecStats`] — to the
//! streaming executor in `exec.rs`. Only plan shapes whose output order is
//! a pure function of morsel order are eligible (see [`parallel_eligible`]);
//! anything else (sorts, limits, nested-loop joins, index access paths)
//! falls back to the sequential streaming executor, a decision the planner
//! surfaces as the `parallel=N` line of `EXPLAIN`.
//!
//! Error semantics match streaming exactly: the streaming executor stops
//! at the first failing row in scan order, so workers here track the
//! lowest-numbered morsel that failed, keep processing *earlier* morsels
//! (one of them may fail even earlier), skip later ones, and report the
//! error from the lowest morsel index — which is the error the sequential
//! executor would have raised.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::db::Storage;
use crate::error::{RelError, RelResult};
use crate::exec::{eval_join_keys, materialize_aggregates, projected_schema, ExecStats};
use crate::expr::{eval, eval_predicate, RowSchema};
use crate::plan::{Plan, ProjectItem};
use crate::pool::WorkerPool;
use crate::sql::ast::Expr;
use crate::table::Row;
use crate::value::Value;

/// A parallel-eligible access chain: `Filter*(Scan)`.
struct ChainShape<'p> {
    table: &'p str,
    alias: &'p str,
    /// Filter predicates in evaluation (innermost-first) order.
    predicates: Vec<&'p Expr>,
}

/// A hash join whose both sides are chains: left probes, right builds.
struct JoinShape<'p> {
    probe: ChainShape<'p>,
    build: ChainShape<'p>,
    left_keys: &'p [Expr],
    right_keys: &'p [Expr],
    residual: Option<&'p Expr>,
    semi: bool,
}

/// The parallel-eligible plan grammar.
enum Shape<'p> {
    Chain(ChainShape<'p>),
    Project {
        chain: ChainShape<'p>,
        items: &'p [ProjectItem],
    },
    Join {
        join: JoinShape<'p>,
        /// Projection applied on top of the join output, if any.
        items: Option<&'p [ProjectItem]>,
    },
    Aggregate {
        chain: ChainShape<'p>,
        group_by: &'p [Expr],
        items: &'p [ProjectItem],
    },
}

/// A parsed eligible plan: a shape, optionally under a `Distinct` that is
/// applied as an order-preserving post-merge pass.
struct Parsed<'p> {
    shape: Shape<'p>,
    distinct: Option<usize>,
}

fn parse_chain(plan: &Plan) -> Option<ChainShape<'_>> {
    let mut predicates = Vec::new();
    let mut node = plan;
    loop {
        match node {
            Plan::Filter { input, predicate } => {
                predicates.push(predicate);
                node = input;
            }
            Plan::Scan { table, alias } => {
                // Collected outermost-first; evaluation is innermost-first.
                predicates.reverse();
                return Some(ChainShape {
                    table,
                    alias,
                    predicates,
                });
            }
            _ => return None,
        }
    }
}

fn parse_join(plan: &Plan) -> Option<JoinShape<'_>> {
    let Plan::HashJoin {
        left,
        right,
        left_keys,
        right_keys,
        residual,
        semi,
    } = plan
    else {
        return None;
    };
    Some(JoinShape {
        probe: parse_chain(left)?,
        build: parse_chain(right)?,
        left_keys,
        right_keys,
        residual: residual.as_ref(),
        semi: *semi,
    })
}

fn parse_shape(plan: &Plan) -> Option<Parsed<'_>> {
    let (inner, distinct) = match plan {
        Plan::Distinct { input, visible } => (&**input, Some(*visible)),
        other => (other, None),
    };
    let shape = match inner {
        Plan::Scan { .. } | Plan::Filter { .. } => Shape::Chain(parse_chain(inner)?),
        Plan::Project { input, items, .. } => match &**input {
            Plan::HashJoin { .. } => Shape::Join {
                join: parse_join(input)?,
                items: Some(items),
            },
            _ => Shape::Project {
                chain: parse_chain(input)?,
                items,
            },
        },
        Plan::HashJoin { .. } => Shape::Join {
            join: parse_join(inner)?,
            items: None,
        },
        Plan::Aggregate {
            input,
            group_by,
            items,
            ..
        } => Shape::Aggregate {
            chain: parse_chain(input)?,
            group_by,
            items,
        },
        _ => return None,
    };
    Some(Parsed { shape, distinct })
}

/// Whether the plan can run on the morsel-parallel executor while
/// preserving the engine's documented row order. This is the single
/// source of truth for both the execution dispatch and the `parallel=N`
/// line `EXPLAIN` prints.
pub(crate) fn parallel_eligible(plan: &Plan) -> bool {
    parse_shape(plan).is_some()
}

/// Executes an eligible plan across the pool, or returns `None` when the
/// plan is not eligible (or fewer than two workers were requested), in
/// which case the caller falls back to the streaming executor.
pub(crate) fn execute_plan_parallel(
    plan: &Plan,
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
) -> Option<RelResult<(RowSchema, Vec<Row>, ExecStats)>> {
    if workers < 2 {
        return None;
    }
    let parsed = parse_shape(plan)?;
    Some(run_parsed(
        &parsed,
        storage,
        pool,
        workers,
        morsel_size.max(1),
    ))
}

/// A chain bound to storage: the table's rows (in insertion order, same
/// as `ScanCursor`), its schema, and the filter predicates.
struct BoundChain<'a> {
    rows: Vec<&'a Row>,
    schema: RowSchema,
    predicates: Vec<&'a Expr>,
}

impl BoundChain<'_> {
    fn passes(&self, row: &[Value]) -> RelResult<bool> {
        for p in &self.predicates {
            if !eval_predicate(p, &self.schema, row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

fn bind_chain<'a>(chain: &ChainShape<'a>, storage: &'a Storage) -> RelResult<BoundChain<'a>> {
    let t = storage.table(chain.table)?;
    let schema = RowSchema::for_table(
        chain.alias,
        t.schema().columns.iter().map(|c| c.name.clone()),
    );
    Ok(BoundChain {
        rows: t.rows().collect(),
        schema,
        predicates: chain.predicates.clone(),
    })
}

fn run_parsed(
    parsed: &Parsed<'_>,
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats)> {
    let (schema, mut rows, mut stats) = match &parsed.shape {
        Shape::Chain(chain) => run_chain(chain, None, storage, pool, workers, morsel_size)?,
        Shape::Project { chain, items } => {
            run_chain(chain, Some(items), storage, pool, workers, morsel_size)?
        }
        Shape::Join { join, items } => run_join(join, *items, storage, pool, workers, morsel_size)?,
        Shape::Aggregate {
            chain,
            group_by,
            items,
        } => run_aggregate(chain, group_by, items, storage, pool, workers, morsel_size)?,
    };
    if let Some(visible) = parsed.distinct {
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        rows.retain(|row| seen.insert(row.iter().take(visible).cloned().collect()));
        // The streaming DistinctCursor retains one buffered row per
        // distinct key and never shrinks; under an Aggregate child the
        // aggregate's output buffer drains exactly as Distinct fills, so
        // the peak does not move.
        if !matches!(parsed.shape, Shape::Aggregate { .. }) {
            stats.buffered_peak += rows.len() as u64;
        }
        stats.rows_emitted = rows.len() as u64;
    }
    Ok((schema, rows, stats))
}

/// `Scan`/`Filter` chain, optionally with a projection on top.
fn run_chain(
    chain: &ChainShape<'_>,
    items: Option<&[ProjectItem]>,
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats)> {
    let bc = bind_chain(chain, storage)?;
    let parts = morsel_map(pool, workers, morsel_size, bc.rows.len(), |range| {
        let mut out: Vec<Row> = Vec::new();
        for &row in &bc.rows[range] {
            if !bc.passes(row)? {
                continue;
            }
            match items {
                Some(items) => out.push(
                    items
                        .iter()
                        .map(|it| eval(&it.expr, &bc.schema, row))
                        .collect::<RelResult<_>>()?,
                ),
                None => out.push(row.clone()),
            }
        }
        Ok(out)
    })?;
    let rows = parts.concat();
    let stats = ExecStats {
        rows_scanned: bc.rows.len() as u64,
        buffered_peak: 0,
        rows_emitted: rows.len() as u64,
        ..ExecStats::default()
    };
    let schema = match items {
        Some(items) => projected_schema(items),
        None => bc.schema,
    };
    Ok((schema, rows, stats))
}

fn run_join(
    join: &JoinShape<'_>,
    items: Option<&[ProjectItem]>,
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats)> {
    let probe = bind_chain(&join.probe, storage)?;
    let build = bind_chain(&join.build, storage)?;
    let scanned = (probe.rows.len() + build.rows.len()) as u64;

    // Build phase: evaluate keys morsel-parallel, then merge in morsel
    // order so match lists enumerate build rows in arrival order, exactly
    // like the streaming `BuildSide`.
    let built = morsel_map(pool, workers, morsel_size, build.rows.len(), |range| {
        let mut out: Vec<(Vec<Value>, &Row)> = Vec::new();
        for &row in &build.rows[range] {
            if !build.passes(row)? {
                continue;
            }
            if let Some(key) = eval_join_keys(join.right_keys, &build.schema, row)? {
                out.push((key, row));
            }
        }
        Ok(out)
    })?;

    if join.semi {
        let mut keys: HashSet<Vec<Value>> = HashSet::new();
        for part in built {
            for (key, _) in part {
                keys.insert(key);
            }
        }
        let buffered = keys.len() as u64;
        let out_schema = match items {
            Some(items) => projected_schema(items),
            None => probe.schema.clone(),
        };
        let parts = morsel_map(pool, workers, morsel_size, probe.rows.len(), |range| {
            let mut out: Vec<Row> = Vec::new();
            for &lrow in &probe.rows[range] {
                if !probe.passes(lrow)? {
                    continue;
                }
                let Some(key) = eval_join_keys(join.left_keys, &probe.schema, lrow)? else {
                    continue;
                };
                if !keys.contains(&key) {
                    continue;
                }
                match items {
                    Some(items) => out.push(
                        items
                            .iter()
                            .map(|it| eval(&it.expr, &probe.schema, lrow))
                            .collect::<RelResult<_>>()?,
                    ),
                    None => out.push(lrow.clone()),
                }
            }
            Ok(out)
        })?;
        let rows = parts.concat();
        let stats = ExecStats {
            rows_scanned: scanned,
            buffered_peak: buffered,
            rows_emitted: rows.len() as u64,
            ..ExecStats::default()
        };
        return Ok((out_schema, rows, stats));
    }

    let mut build_rows: Vec<&Row> = Vec::new();
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for part in built {
        for (key, row) in part {
            index.entry(key).or_default().push(build_rows.len());
            build_rows.push(row);
        }
    }
    let buffered = build_rows.len() as u64;
    let combined = probe.schema.join(&build.schema);
    let out_schema = match items {
        Some(items) => projected_schema(items),
        None => combined.clone(),
    };
    let parts = morsel_map(pool, workers, morsel_size, probe.rows.len(), |range| {
        let mut out: Vec<Row> = Vec::new();
        for &lrow in &probe.rows[range] {
            if !probe.passes(lrow)? {
                continue;
            }
            let Some(key) = eval_join_keys(join.left_keys, &probe.schema, lrow)? else {
                continue;
            };
            let Some(matches) = index.get(&key) else {
                continue;
            };
            for &m in matches {
                let mut row = lrow.clone();
                row.extend(build_rows[m].iter().cloned());
                if let Some(res) = join.residual {
                    if !eval_predicate(res, &combined, &row)? {
                        continue;
                    }
                }
                match items {
                    Some(items) => out.push(
                        items
                            .iter()
                            .map(|it| eval(&it.expr, &combined, &row))
                            .collect::<RelResult<_>>()?,
                    ),
                    None => out.push(row),
                }
            }
        }
        Ok(out)
    })?;
    let rows = parts.concat();
    let stats = ExecStats {
        rows_scanned: scanned,
        buffered_peak: buffered,
        rows_emitted: rows.len() as u64,
        ..ExecStats::default()
    };
    Ok((out_schema, rows, stats))
}

/// Two-phase parallel aggregation.
///
/// Phase 1 groups each morsel independently (keys in first-seen order);
/// the sequential merge concatenates per-group row lists in morsel order,
/// which reproduces the streaming executor's global first-seen group
/// order *and* each group's row order. Phase 2 evaluates the aggregate
/// items per group, fanned across workers in contiguous group chunks, so
/// the first erroring group in group order still wins.
fn run_aggregate(
    chain: &ChainShape<'_>,
    group_by: &[Expr],
    items: &[ProjectItem],
    storage: &Storage,
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats)> {
    let bc = bind_chain(chain, storage)?;
    type MorselGroups<'a> = Vec<(Vec<Value>, Vec<&'a Row>)>;
    let parts: Vec<MorselGroups<'_>> =
        morsel_map(pool, workers, morsel_size, bc.rows.len(), |range| {
            let mut groups: MorselGroups<'_> = Vec::new();
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            for &row in &bc.rows[range] {
                if !bc.passes(row)? {
                    continue;
                }
                let key: Vec<Value> = group_by
                    .iter()
                    .map(|e| eval(e, &bc.schema, row))
                    .collect::<RelResult<_>>()?;
                match index.entry(key.clone()) {
                    Entry::Occupied(slot) => groups[*slot.get()].1.push(row),
                    Entry::Vacant(slot) => {
                        slot.insert(groups.len());
                        groups.push((key, vec![row]));
                    }
                }
            }
            Ok(groups)
        })?;

    let mut groups: MorselGroups<'_> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for part in parts {
        for (key, rows) in part {
            match index.entry(key.clone()) {
                Entry::Occupied(slot) => groups[*slot.get()].1.extend(rows),
                Entry::Vacant(slot) => {
                    slot.insert(groups.len());
                    groups.push((key, rows));
                }
            }
        }
    }
    let surviving: u64 = groups.iter().map(|g| g.1.len() as u64).sum();
    if groups.is_empty() && group_by.is_empty() {
        // Global aggregate over empty input yields one row.
        groups.push((Vec::new(), Vec::new()));
    }

    let chunk = groups
        .len()
        .div_ceil(workers.min(groups.len()).max(1))
        .max(1);
    let parts = morsel_map(pool, workers, chunk, groups.len(), |range| {
        let mut out: Vec<Row> = Vec::with_capacity(range.len());
        for (_, group_rows) in &groups[range] {
            let null_row;
            let representative: &[Value] = match group_rows.first() {
                Some(r) => r.as_slice(),
                None => {
                    null_row = vec![Value::Null; bc.schema.len()];
                    &null_row
                }
            };
            let mut result_row = Vec::with_capacity(items.len());
            for item in items {
                let materialized = materialize_aggregates(&item.expr, &bc.schema, group_rows)?;
                result_row.push(eval(&materialized, &bc.schema, representative)?);
            }
            out.push(result_row);
        }
        Ok(out)
    })?;
    let rows = parts.concat();
    let stats = ExecStats {
        rows_scanned: bc.rows.len() as u64,
        buffered_peak: surviving.max(rows.len() as u64),
        rows_emitted: rows.len() as u64,
        ..ExecStats::default()
    };
    Ok((projected_schema(items), rows, stats))
}

/// Fans `work` over `total` items split into `morsel_size`-sized ranges,
/// returning per-morsel results assembled in morsel order.
///
/// On error, workers keep processing morsels *before* the lowest failed
/// index (an earlier one may fail too), skip later ones, and the error
/// from the lowest morsel index is returned — matching the error the
/// sequential executor, which stops at the first failing row, would raise.
fn morsel_map<T, F>(
    pool: &WorkerPool,
    workers: usize,
    morsel_size: usize,
    total: usize,
    work: F,
) -> RelResult<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> RelResult<T> + Sync,
{
    let morsel_count = total.div_ceil(morsel_size);
    if morsel_count == 0 {
        return Ok(Vec::new());
    }
    let next = AtomicUsize::new(0);
    let error_floor = AtomicUsize::new(usize::MAX);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(morsel_count));
    let first_error: Mutex<Option<(usize, RelError)>> = Mutex::new(None);
    let run = |_task: usize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= morsel_count {
            break;
        }
        if i > error_floor.load(Ordering::Relaxed) {
            continue;
        }
        let lo = i * morsel_size;
        let hi = (lo + morsel_size).min(total);
        match work(lo..hi) {
            Ok(t) => results
                .lock()
                .expect("morsel results poisoned")
                .push((i, t)),
            Err(e) => {
                error_floor.fetch_min(i, Ordering::Relaxed);
                let mut slot = first_error.lock().expect("morsel error slot poisoned");
                let replace = match slot.as_ref() {
                    Some((j, _)) => i < *j,
                    None => true,
                };
                if replace {
                    *slot = Some((i, e));
                }
            }
        }
    };
    let tasks = workers.min(morsel_count).max(1);
    if tasks == 1 {
        run(0);
    } else {
        let run = &run;
        let boxed: Vec<Box<dyn FnOnce() + Send + '_>> = (0..tasks)
            .map(|k| Box::new(move || run(k)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.scope(boxed);
    }
    if let Some((_, e)) = first_error
        .into_inner()
        .expect("morsel error slot poisoned")
    {
        return Err(e);
    }
    let mut out = results.into_inner().expect("morsel results poisoned");
    out.sort_unstable_by_key(|(i, _)| *i);
    Ok(out.into_iter().map(|(_, t)| t).collect())
}
