//! Table and column statistics for the cost-based planner.
//!
//! The paper's query pipeline bottoms out in SQL over the generic schema,
//! where join order and access-path choice decide whether a proteome-scale
//! query is interactive or not. This module lifts the per-segment zone
//! maps up to durable *per-table* statistics the planner can consult:
//!
//! * exact row counts, maintained incrementally on every commit,
//! * per-column min/max bounds and null counts,
//! * a distinct-value (NDV) estimate per column, backed by a
//!   HyperLogLog-style sketch (zero dependencies, 4 KiB per column).
//!
//! Column-level statistics are collected by `ANALYZE [TABLE <t>]` and are
//! rebuilt lazily: mutations only bump a staleness counter, and once the
//! churn since the last scan crosses [`REBUILD_FRACTION`] of the analyzed
//! row count the next mutation rescans that table and bumps the stats
//! generation. The whole catalog lives on the MVCC `Storage` root, so a
//! pinned query always plans against the statistics of *its* snapshot,
//! and the plan cache tags entries with [`StatsCatalog::generation`] so
//! `ANALYZE` invalidates stale plans.

use std::collections::BTreeMap;

use crate::schema::TableSchema;
use crate::value::Value;

/// Register-index bits of the NDV sketch: 2^12 = 4096 registers, which
/// puts the standard error around `1.04 / sqrt(4096)` ≈ 1.6%.
const SKETCH_BITS: u32 = 12;
const SKETCH_REGISTERS: usize = 1 << SKETCH_BITS;

/// Fraction of the analyzed row count that may churn before the next
/// mutation rebuilds a table's column statistics in place.
const REBUILD_FRACTION: u64 = 5; // denominator: rebuild after rows/5 churn

/// A HyperLogLog-style distinct-count sketch over hashed [`Value`]s.
///
/// Insertion routes each hash to one of 4096 registers by its low bits
/// and records the longest run of leading zeros seen in the remaining
/// bits; the harmonic mean of the registers estimates the cardinality.
/// Small cardinalities fall back to linear counting over the empty
/// registers, which keeps the estimate exact-ish well below 4096.
#[derive(Clone, Debug)]
pub struct NdvSketch {
    registers: Vec<u8>,
}

impl Default for NdvSketch {
    fn default() -> Self {
        NdvSketch {
            registers: vec![0; SKETCH_REGISTERS],
        }
    }
}

impl NdvSketch {
    /// Records one value occurrence.
    pub fn insert(&mut self, value: &Value) {
        let h = hash_value(value);
        let idx = (h & (SKETCH_REGISTERS as u64 - 1)) as usize;
        // Rank of the first set bit in the remaining 52 hash bits, 1-based.
        let rest = h >> SKETCH_BITS;
        let rank = (rest.trailing_zeros().min(64 - SKETCH_BITS) + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// The estimated number of distinct inserted values (at least 1 once
    /// anything was inserted).
    pub fn estimate(&self) -> u64 {
        let m = SKETCH_REGISTERS as f64;
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / f64::from(1u32 << u32::from(r.min(63)));
            if r == 0 {
                zeros += 1;
            }
        }
        if zeros == SKETCH_REGISTERS {
            return 0;
        }
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        // Linear counting handles the small-cardinality regime where the
        // harmonic estimator biases high.
        let est = if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        (est.round() as u64).max(1)
    }
}

/// A 64-bit mix of one value, stable across runs (no per-process seeds):
/// the sketch must estimate identically whether it was built in one
/// `ANALYZE` or rebuilt after recovery.
fn hash_value(value: &Value) -> u64 {
    fn mix(mut h: u64, word: u64) -> u64 {
        // splitmix64-style avalanche per word.
        h = (h ^ word).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }
    match value {
        Value::Null => mix(0x9e37_79b9_7f4a_7c15, 0),
        // Int and Float hash through f64 bits exactly like `Value::hash`,
        // so `2` and `2.0` count as one distinct value here too.
        Value::Int(i) => mix(1, (*i as f64).to_bits()),
        Value::Float(f) => mix(1, f.to_bits()),
        Value::Text(s) => {
            let mut h = 2u64;
            for chunk in s.as_bytes().chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                h = mix(h, u64::from_le_bytes(word));
            }
            mix(h, s.len() as u64)
        }
    }
}

/// Statistics for one column of an analyzed table.
#[derive(Clone, Debug)]
pub struct ColumnStats {
    /// Column name (lowercase not required; matched case-insensitively).
    pub name: String,
    /// Smallest non-null value seen at the last scan.
    pub min: Option<Value>,
    /// Largest non-null value seen at the last scan.
    pub max: Option<Value>,
    /// NULLs seen at the last scan.
    pub null_count: u64,
    /// Cached NDV estimate from `sketch`.
    pub ndv: u64,
    /// The distinct-count sketch behind `ndv`.
    pub(crate) sketch: NdvSketch,
}

impl ColumnStats {
    /// Fraction of rows that were NULL at the last scan, in `[0, 1]`.
    pub fn null_fraction(&self, analyzed_rows: u64) -> f64 {
        if analyzed_rows == 0 {
            0.0
        } else {
            self.null_count as f64 / analyzed_rows as f64
        }
    }
}

/// Statistics for one table.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    /// Live rows right now — maintained exactly on every mutation, so it
    /// is trustworthy even when the column statistics are stale.
    pub row_count: u64,
    /// Live rows when the column statistics were last scanned.
    pub analyzed_rows: u64,
    /// Mutations since the last scan; drives the lazy rebuild.
    pub(crate) churn: u64,
    /// Per-column statistics, in schema order. Empty until `ANALYZE`.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Whether column statistics have been collected (via `ANALYZE` or a
    /// lazy rebuild) and may inform selectivity estimates.
    pub fn analyzed(&self) -> bool {
        !self.columns.is_empty()
    }

    /// Statistics for `column`, when analyzed.
    pub fn column(&self, column: &str) -> Option<&ColumnStats> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(column))
    }

    /// Whether enough churn accumulated since the last scan that the
    /// column statistics should be rebuilt. A small floor stops tiny
    /// tables from rescanning on every statement.
    pub(crate) fn needs_rebuild(&self) -> bool {
        self.analyzed() && self.churn >= (self.analyzed_rows / REBUILD_FRACTION).max(16)
    }

    /// Scans `rows` and replaces the column statistics.
    pub(crate) fn rescan<I, R>(&mut self, schema: &TableSchema, rows: I)
    where
        I: Iterator<Item = R>,
        R: AsRef<[Value]>,
    {
        let mut columns: Vec<ColumnStats> = schema
            .columns
            .iter()
            .map(|c| ColumnStats {
                name: c.name.clone(),
                min: None,
                max: None,
                null_count: 0,
                ndv: 0,
                sketch: NdvSketch::default(),
            })
            .collect();
        let mut scanned = 0u64;
        for row in rows {
            scanned += 1;
            for (col, value) in columns.iter_mut().zip(row.as_ref().iter()) {
                if value.is_null() {
                    col.null_count += 1;
                    continue;
                }
                col.sketch.insert(value);
                let lower = match &col.min {
                    Some(m) => value.total_cmp(m).is_lt(),
                    None => true,
                };
                if lower {
                    col.min = Some(value.clone());
                }
                let higher = match &col.max {
                    Some(m) => value.total_cmp(m).is_gt(),
                    None => true,
                };
                if higher {
                    col.max = Some(value.clone());
                }
            }
        }
        for col in &mut columns {
            col.ndv = if scanned == col.null_count {
                0
            } else {
                col.sketch.estimate().min(scanned - col.null_count)
            };
        }
        self.row_count = scanned;
        self.analyzed_rows = scanned;
        self.churn = 0;
        self.columns = columns;
    }
}

/// All table statistics of one `Storage` snapshot, plus the generation
/// counter the plan cache keys off.
#[derive(Clone, Debug, Default)]
pub struct StatsCatalog {
    tables: BTreeMap<String, TableStats>,
    /// Bumped whenever column statistics change (ANALYZE, lazy rebuild,
    /// DROP TABLE of an analyzed table): cached plans made under an older
    /// generation are discarded on lookup.
    pub generation: u64,
}

impl StatsCatalog {
    /// Statistics for `table` (case-insensitive), when tracked.
    pub fn table(&self, table: &str) -> Option<&TableStats> {
        self.tables.get(&table.to_ascii_lowercase())
    }

    pub(crate) fn table_mut(&mut self, table: &str) -> &mut TableStats {
        self.tables.entry(table.to_ascii_lowercase()).or_default()
    }

    /// Mutable statistics for `table` only when already tracked — keeps
    /// code paths that bypass `create_table` (e.g. legacy replay) from
    /// creating entries with undercounted rows.
    pub(crate) fn existing_mut(&mut self, table: &str) -> Option<&mut TableStats> {
        self.tables.get_mut(&table.to_ascii_lowercase())
    }

    pub(crate) fn remove(&mut self, table: &str) {
        if let Some(stats) = self.tables.remove(&table.to_ascii_lowercase()) {
            if stats.analyzed() {
                self.generation += 1;
            }
        }
    }

    /// Tables with collected statistics, in name order.
    pub fn analyzed_tables(&self) -> impl Iterator<Item = (&str, &TableStats)> {
        self.tables
            .iter()
            .filter(|(_, t)| t.analyzed())
            .map(|(n, t)| (n.as_str(), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: impl Iterator<Item = Value>) -> NdvSketch {
        let mut s = NdvSketch::default();
        for v in values {
            s.insert(&v);
        }
        s
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        assert_eq!(NdvSketch::default().estimate(), 0);
    }

    #[test]
    fn sketch_is_exactish_at_small_cardinalities() {
        for n in [1u64, 5, 50, 500] {
            let est = sketch_of((0..n).map(|i| Value::Int(i as i64))).estimate();
            let err = est.abs_diff(n) as f64 / n as f64;
            assert!(err <= 0.05, "n={n} est={est}");
        }
    }

    #[test]
    fn sketch_within_15_percent_at_100k_distinct_ints() {
        let n = 100_000u64;
        let est = sketch_of((0..n).map(|i| Value::Int(i as i64))).estimate();
        let err = est.abs_diff(n) as f64 / n as f64;
        assert!(err <= 0.15, "est={est} err={err:.3}");
    }

    #[test]
    fn sketch_within_15_percent_at_100k_distinct_texts() {
        let n = 100_000u64;
        let est = sketch_of((0..n).map(|i| Value::Text(format!("path/{i}/val")))).estimate();
        let err = est.abs_diff(n) as f64 / n as f64;
        assert!(err <= 0.15, "est={est} err={err:.3}");
    }

    #[test]
    fn sketch_ignores_duplicates() {
        let est = sketch_of((0..200_000).map(|i| Value::Int(i % 100))).estimate();
        let err = est.abs_diff(100) as f64 / 100.0;
        assert!(err <= 0.15, "est={est}");
    }

    #[test]
    fn int_and_float_count_as_one_distinct_value() {
        let mut s = NdvSketch::default();
        s.insert(&Value::Int(7));
        s.insert(&Value::Float(7.0));
        assert_eq!(s.estimate(), 1);
    }

    #[test]
    fn rescan_collects_min_max_nulls_and_ndv() {
        use crate::schema::Column;
        use crate::value::DataType;
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Text),
            ],
        );
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    if i % 10 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i % 7)
                    },
                    Value::Text(format!("k{}", i % 3)),
                ]
            })
            .collect();
        let mut stats = TableStats::default();
        stats.rescan(&schema, rows.iter().map(|r| r.as_slice()));
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.analyzed_rows, 100);
        let a = stats.column("a").unwrap();
        assert_eq!(a.null_count, 10);
        assert_eq!(a.min, Some(Value::Int(0)));
        assert_eq!(a.max, Some(Value::Int(6)));
        assert_eq!(a.ndv, 7);
        let b = stats.column("B").unwrap();
        assert_eq!(b.ndv, 3);
        assert_eq!(b.min, Some(Value::Text("k0".into())));
        assert_eq!(b.max, Some(Value::Text("k2".into())));
    }

    #[test]
    fn rebuild_threshold_has_a_floor() {
        let mut stats = TableStats {
            analyzed_rows: 10,
            columns: vec![ColumnStats {
                name: "a".into(),
                min: None,
                max: None,
                null_count: 0,
                ndv: 1,
                sketch: NdvSketch::default(),
            }],
            ..TableStats::default()
        };
        stats.churn = 10;
        assert!(!stats.needs_rebuild(), "small tables do not thrash");
        stats.churn = 16;
        assert!(stats.needs_rebuild());
        stats.columns.clear();
        assert!(!stats.needs_rebuild(), "unanalyzed tables never rebuild");
    }
}
