//! A reusable scoped worker pool (std threads only).
//!
//! The pool owns `workers - 1` persistent threads; [`WorkerPool::scope`]
//! fans a batch of closures across them while the calling thread runs the
//! first closure inline and then helps drain the queue, so a pool is never
//! slower than running the closures sequentially and a batch larger than
//! the pool still completes. `scope` blocks until every closure of the
//! batch finished, which is what makes handing non-`'static` borrows to
//! the worker threads sound (see the safety note on [`WorkerPool::scope`]).
//!
//! Worker panics are caught, carried across the thread boundary and
//! resumed on the caller once the whole batch has drained — a panicking
//! task can therefore never leave a borrow alive on a detached thread.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue shared between the pool threads and scoping callers.
struct Shared {
    queue: Mutex<QueueState>,
    /// Signals pool threads that work (or shutdown) is available.
    work_ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl Shared {
    /// Pops one job without blocking.
    fn try_pop(&self) -> Option<Job> {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .pop_front()
    }
}

/// Completion tracking for one `scope` batch.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    /// The first panic payload raised by a batch task, if any.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Arc<Latch> {
        Arc::new(Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    /// Runs `f` under `catch_unwind`, then marks one task complete. The
    /// completion mark lives in a drop guard so even a panic inside the
    /// bookkeeping cannot leave the latch hanging.
    fn run(&self, f: impl FnOnce()) {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
            let mut s = self.state.lock().expect("latch poisoned");
            s.panic.get_or_insert(payload);
        }
        let mut s = self.state.lock().expect("latch poisoned");
        s.remaining -= 1;
        if s.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("latch poisoned").remaining == 0
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// `workers` counts the calling thread too: a pool built for `n` workers
/// spawns `n - 1` threads, and `workers = 1` spawns none (every scope then
/// runs inline, with zero synchronization beyond one mutex lock).
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Builds a pool sized for `workers` total workers (min 1).
    pub(crate) fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        static POOL_SEQ: AtomicUsize = AtomicUsize::new(0);
        let pool_id = POOL_SEQ.fetch_add(1, Ordering::Relaxed);
        let handles = (0..workers - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("relstore-pool{pool_id}-w{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// Total worker count (pool threads + the scoping caller).
    #[allow(dead_code)] // exercised by tests; kept as the pool's natural API
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every closure in `tasks` to completion before returning.
    ///
    /// The caller executes the first task inline, queues the rest for the
    /// pool threads, then helps drain the queue until the batch is done.
    /// If any task panicked, the first panic is resumed on the caller
    /// after the whole batch has drained.
    ///
    /// # Safety argument
    ///
    /// Tasks may borrow from the caller's stack (`'scope` need not be
    /// `'static`); the transmute below erases that lifetime so the job can
    /// sit in the shared queue. This is sound because `scope` does not
    /// return — normally or by unwinding — until the latch counts every
    /// task as finished, so no borrow outlives the frame it came from.
    pub(crate) fn scope<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        let mut tasks = tasks;
        let Some(first) = tasks.pop() else {
            return;
        };
        let latch = Latch::new(tasks.len() + 1);
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            for task in tasks {
                let latch = Arc::clone(&latch);
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || latch.run(task));
                // SAFETY: see the function-level safety argument — the
                // latch wait below keeps every borrow alive until the job
                // has run (or the queue is drained by this very caller).
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
                q.jobs.push_back(job);
            }
            self.shared.work_ready.notify_all();
        }
        latch.run(first);
        // Help drain the queue while waiting: this also guarantees forward
        // progress when a batch is larger than the pool, or when several
        // scopes contend for the same threads.
        while !latch.is_done() {
            match self.shared.try_pop() {
                Some(job) => job(),
                None => {
                    let s = self.latch_wait(&latch);
                    if s {
                        break;
                    }
                }
            }
        }
        let payload = {
            let mut s = latch.state.lock().expect("latch poisoned");
            s.panic.take()
        };
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }

    /// Blocks briefly on the latch; returns true when the batch is done.
    fn latch_wait(&self, latch: &Latch) -> bool {
        let guard = latch.state.lock().expect("latch poisoned");
        if guard.remaining == 0 {
            return true;
        }
        // A short timeout keeps the caller responsive to new queue entries
        // (another scope's jobs it could help with) without spinning.
        let (guard, _) = latch
            .done
            .wait_timeout(guard, std::time::Duration::from_millis(1))
            .expect("latch poisoned");
        guard.remaining == 0
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

/// A one-shot stop flag with timed waits, built from the same
/// mutex+condvar machinery as the pool queue. Background threads (the
/// maintenance loop in [`crate::db`]) sleep on it between passes and wake
/// immediately when [`StopSignal::stop`] fires, so shutdown never has to
/// wait out a full interval.
#[derive(Debug, Default)]
pub(crate) struct StopSignal {
    stopped: Mutex<bool>,
    changed: Condvar,
}

impl StopSignal {
    /// A fresh, unstopped signal.
    pub(crate) fn new() -> StopSignal {
        StopSignal::default()
    }

    /// Trips the flag and wakes every waiter.
    pub(crate) fn stop(&self) {
        let mut stopped = self.stopped.lock().expect("stop signal poisoned");
        *stopped = true;
        self.changed.notify_all();
    }

    /// Whether the flag has been tripped.
    #[cfg(test)]
    pub(crate) fn is_stopped(&self) -> bool {
        *self.stopped.lock().expect("stop signal poisoned")
    }

    /// Sleeps up to `timeout`, returning early — with `true` — if the
    /// signal stops. `false` means the timeout elapsed.
    pub(crate) fn wait_timeout(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut stopped = self.stopped.lock().expect("stop signal poisoned");
        loop {
            if *stopped {
                return true;
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, _) = self
                .changed
                .wait_timeout(stopped, remaining)
                .expect("stop signal poisoned");
            stopped = guard;
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.work_ready.wait(q).expect("pool queue poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_runs_every_task() {
        let pool = WorkerPool::new(4);
        let counter = AtomicU64::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), (0..16).sum::<u64>());
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let mut hits = AtomicU64::new(0);
        pool.scope(vec![Box::new(|| {
            hits.fetch_add(1, Ordering::Relaxed);
        })]);
        assert_eq!(*hits.get_mut(), 1);
    }

    #[test]
    fn batches_larger_than_pool_complete() {
        let pool = WorkerPool::new(2);
        let counter = AtomicU64::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn stop_signal_wakes_waiters_early() {
        let signal = Arc::new(StopSignal::new());
        assert!(!signal.is_stopped());
        // Timeout path: nothing stopped it.
        assert!(!signal.wait_timeout(std::time::Duration::from_millis(1)));
        let waiter = {
            let signal = Arc::clone(&signal);
            std::thread::spawn(move || signal.wait_timeout(std::time::Duration::from_secs(60)))
        };
        signal.stop();
        assert!(waiter.join().unwrap());
        assert!(signal.is_stopped());
        // Stopped signals return immediately.
        assert!(signal.wait_timeout(std::time::Duration::from_secs(60)));
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = WorkerPool::new(3);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(vec![
                Box::new(|| {}),
                Box::new(|| panic!("worker exploded")),
                Box::new(|| {}),
            ]);
        }));
        assert!(result.is_err());
        // The pool survives a panicking batch and keeps working.
        let hits = AtomicU64::new(0);
        pool.scope(vec![
            Box::new(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            }),
            Box::new(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            }),
        ]);
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
