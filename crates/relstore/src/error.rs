//! Engine error type.

use std::fmt;

/// Result alias for engine operations.
pub type RelResult<T> = Result<T, RelError>;

/// An error raised by the relational engine.
///
/// The enum is `#[non_exhaustive]`: downstream crates must keep a
/// wildcard arm when matching, and should use [`RelError::code`] when a
/// stable machine-readable discriminant is needed (e.g. for federation
/// error routing) instead of string-prefix matching on `Display` output.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RelError {
    /// SQL text failed to lex or parse.
    Parse(String),
    /// A statement referenced an unknown table.
    UnknownTable(String),
    /// A statement referenced an unknown column.
    UnknownColumn(String),
    /// A column reference was ambiguous across joined tables.
    AmbiguousColumn(String),
    /// A table or index already exists.
    AlreadyExists(String),
    /// An index name was not found.
    UnknownIndex(String),
    /// A row's arity or types did not match the table schema.
    SchemaMismatch(String),
    /// A runtime evaluation error (type mismatch, division by zero, ...).
    Eval(String),
    /// Write-ahead log I/O or corruption.
    Wal(String),
    /// A prepared-statement parameter could not be bound: wrong value
    /// count, or a value that does not coerce to the inferred column type.
    Bind(String),
    /// A write targeted a read-only relation (a `sys_*` system table).
    ReadOnly(String),
    /// Anything else.
    Internal(String),
}

impl RelError {
    /// A stable, machine-readable error code: one lowercase snake_case
    /// token per variant. Codes are append-only across releases, so
    /// downstream crates can match on them without tracking new variants
    /// behind `#[non_exhaustive]`.
    pub fn code(&self) -> &'static str {
        match self {
            RelError::Parse(_) => "parse",
            RelError::UnknownTable(_) => "unknown_table",
            RelError::UnknownColumn(_) => "unknown_column",
            RelError::AmbiguousColumn(_) => "ambiguous_column",
            RelError::AlreadyExists(_) => "already_exists",
            RelError::UnknownIndex(_) => "unknown_index",
            RelError::SchemaMismatch(_) => "schema_mismatch",
            RelError::Eval(_) => "eval",
            RelError::Wal(_) => "wal",
            RelError::Bind(_) => "bind",
            RelError::ReadOnly(_) => "read_only",
            RelError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Parse(m) => write!(f, "SQL parse error: {m}"),
            RelError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            RelError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            RelError::AmbiguousColumn(c) => write!(f, "ambiguous column {c:?}"),
            RelError::AlreadyExists(n) => write!(f, "{n:?} already exists"),
            RelError::UnknownIndex(n) => write!(f, "unknown index {n:?}"),
            RelError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            RelError::Eval(m) => write!(f, "evaluation error: {m}"),
            RelError::Wal(m) => write!(f, "write-ahead log error: {m}"),
            RelError::Bind(m) => write!(f, "bind error: {m}"),
            RelError::ReadOnly(m) => write!(f, "read-only: {m}"),
            RelError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            RelError::UnknownTable("t".into()).to_string(),
            "unknown table \"t\""
        );
        assert_eq!(
            RelError::Parse("x".into()).to_string(),
            "SQL parse error: x"
        );
        assert_eq!(
            RelError::AmbiguousColumn("id".into()).to_string(),
            "ambiguous column \"id\""
        );
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(RelError::Parse("x".into()).code(), "parse");
        assert_eq!(RelError::Bind("x".into()).code(), "bind");
        assert_eq!(RelError::Wal("x".into()).code(), "wal");
        assert_eq!(RelError::UnknownTable("t".into()).code(), "unknown_table");
    }
}
