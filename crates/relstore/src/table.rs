//! The row store.
//!
//! Rows live in an append-only segmented column store ([`ColStore`])
//! keyed by a monotonically increasing [`RowId`], so a full scan returns
//! rows in insertion order — which, for shredded XML, is document order.
//! That makes "order as a data value" (paper §2.2) cheap: the shredder
//! stores ordinals, and the storage layer never reorders underneath them.
//! Executors that want columnar access (zone-map pruning, vectorized
//! predicate kernels, segment-aligned morsels) reach the segments through
//! [`Table::store`]; everything else sees the same row-oriented API as
//! before, with `get`/`scan` now materializing owned rows out of the
//! column vectors.

use crate::colstore::ColStore;
use crate::error::{RelError, RelResult};
use crate::schema::TableSchema;
use crate::value::Value;

/// Stable identifier of a row within its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

/// A stored row.
pub type Row = Vec<Value>;

/// A table: schema plus segmented columnar rows.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    store: ColStore,
    next_row_id: u64,
}

impl Table {
    /// Creates an empty table with `schema`.
    pub fn new(schema: TableSchema) -> Self {
        let types = schema.columns.iter().map(|c| c.ty).collect();
        Table {
            schema,
            store: ColStore::new(types),
            next_row_id: 0,
        }
    }

    /// As [`Table::new`] with a custom segment capacity, so tests can
    /// exercise many-segment layouts without millions of rows.
    #[doc(hidden)]
    pub fn with_segment_capacity(schema: TableSchema, seg_capacity: usize) -> Self {
        let types = schema.columns.iter().map(|c| c.ty).collect();
        Table {
            schema,
            store: ColStore::with_segment_capacity(types, seg_capacity),
            next_row_id: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The underlying segmented column store (scan cursors, morsels).
    pub fn store(&self) -> &ColStore {
        &self.store
    }

    /// Sets the CSN stamped onto subsequent mutations (MVCC versioning).
    pub fn set_stamp(&mut self, csn: u64) {
        self.store.set_stamp(csn);
    }

    /// Rewrites segments whose dead-slot fraction exceeds
    /// `max_dead_ratio`, reclaiming tombstones and re-tightening zone
    /// maps. Returns the number of segments rewritten or removed.
    pub fn compact_store(&mut self, max_dead_ratio: f64) -> usize {
        self.store.compact(max_dead_ratio)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Validates, coerces and appends `row`, returning its new id.
    pub fn insert(&mut self, row: Row) -> RelResult<RowId> {
        let row = self.schema.check_row(row)?;
        let id = RowId(self.next_row_id);
        self.next_row_id += 1;
        self.store.insert(id.0, &row);
        Ok(id)
    }

    /// Re-inserts a row under a specific id (WAL replay and rollback).
    ///
    /// Keeps `next_row_id` ahead of every replayed id so post-recovery
    /// inserts never collide. An id below the store's high-water mark is
    /// spliced back in at document order.
    pub fn insert_at(&mut self, id: RowId, row: Row) -> RelResult<()> {
        let row = self.schema.check_row(row)?;
        self.next_row_id = self.next_row_id.max(id.0 + 1);
        self.store.insert(id.0, &row);
        Ok(())
    }

    /// Removes the row `id`, returning it.
    pub fn delete(&mut self, id: RowId) -> RelResult<Row> {
        self.store.delete(id.0).ok_or_else(|| {
            RelError::Internal(format!("row {id:?} not found in {}", self.schema.name))
        })
    }

    /// Replaces the row `id`, returning the previous value.
    pub fn update(&mut self, id: RowId, row: Row) -> RelResult<Row> {
        let row = self.schema.check_row(row)?;
        self.store.update(id.0, &row).ok_or_else(|| {
            RelError::Internal(format!("row {id:?} not found in {}", self.schema.name))
        })
    }

    /// Materializes the row `id`.
    pub fn get(&self, id: RowId) -> Option<Row> {
        self.store.get(id.0)
    }

    /// Iterates over `(id, row)` in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, Row)> + '_ {
        self.store.scan().map(|(id, row)| (RowId(id), row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Text),
            ],
        ))
    }

    #[test]
    fn insert_scan_order() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Text(format!("r{i}"))])
                .unwrap();
        }
        let scanned: Vec<i64> = t.scan().map(|(_, r)| r[0].as_int().unwrap()).collect();
        assert_eq!(scanned, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn row_ids_are_stable_across_deletes() {
        let mut t = table();
        let a = t
            .insert(vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        let b = t
            .insert(vec![Value::Int(2), Value::Text("y".into())])
            .unwrap();
        t.delete(a).unwrap();
        let c = t
            .insert(vec![Value::Int(3), Value::Text("z".into())])
            .unwrap();
        assert!(c > b);
        assert!(t.get(a).is_none());
        assert_eq!(t.get(b).unwrap()[0], Value::Int(2));
    }

    #[test]
    fn update_replaces_and_returns_old() {
        let mut t = table();
        let id = t
            .insert(vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        let old = t
            .update(id, vec![Value::Int(9), Value::Text("y".into())])
            .unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.get(id).unwrap()[0], Value::Int(9));
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        let id = t
            .insert(vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        assert!(t
            .update(id, vec![Value::Text("no".into()), Value::Null])
            .is_err());
    }

    #[test]
    fn insert_coerces_text_to_int() {
        let mut t = table();
        let id = t
            .insert(vec![Value::Text("12".into()), Value::Text("x".into())])
            .unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Int(12));
    }

    #[test]
    fn insert_at_keeps_next_id_monotone() {
        let mut t = table();
        t.insert_at(RowId(10), vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        let next = t
            .insert(vec![Value::Int(2), Value::Text("y".into())])
            .unwrap();
        assert!(next > RowId(10));
    }

    #[test]
    fn delete_missing_row_errors() {
        let mut t = table();
        assert!(t.delete(RowId(99)).is_err());
        assert!(t
            .update(RowId(99), vec![Value::Int(1), Value::Text("x".into())])
            .is_err());
    }

    #[test]
    fn scan_spans_many_segments_in_document_order() {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Text),
            ],
        );
        let mut t = Table::with_segment_capacity(schema, 3);
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Text(format!("r{i}"))])
                .unwrap();
        }
        // Delete across segment boundaries, update in the middle.
        t.delete(RowId(0)).unwrap();
        t.delete(RowId(4)).unwrap();
        t.update(RowId(7), vec![Value::Int(70), Value::Text("r70".into())])
            .unwrap();
        let scanned: Vec<i64> = t.scan().map(|(_, r)| r[0].as_int().unwrap()).collect();
        assert_eq!(scanned, vec![1, 2, 3, 5, 6, 70, 8, 9]);
        assert_eq!(t.store().segments().len(), 4);
    }
}
