//! The row store.
//!
//! Rows are kept in a `BTreeMap` keyed by a monotonically increasing
//! [`RowId`], so a full scan returns rows in insertion order — which, for
//! shredded XML, is document order. That makes "order as a data value"
//! (paper §2.2) cheap: the shredder stores ordinals, and the storage layer
//! never reorders underneath them.

use std::collections::BTreeMap;

use crate::error::{RelError, RelResult};
use crate::schema::TableSchema;
use crate::value::Value;

/// Stable identifier of a row within its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

/// A stored row.
pub type Row = Vec<Value>;

/// A table: schema plus rows.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: BTreeMap<RowId, Row>,
    next_row_id: u64,
}

impl Table {
    /// Creates an empty table with `schema`.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: BTreeMap::new(),
            next_row_id: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates, coerces and appends `row`, returning its new id.
    pub fn insert(&mut self, row: Row) -> RelResult<RowId> {
        let row = self.schema.check_row(row)?;
        let id = RowId(self.next_row_id);
        self.next_row_id += 1;
        self.rows.insert(id, row);
        Ok(id)
    }

    /// Re-inserts a row under a specific id (WAL replay only).
    ///
    /// Keeps `next_row_id` ahead of every replayed id so post-recovery
    /// inserts never collide.
    pub fn insert_at(&mut self, id: RowId, row: Row) -> RelResult<()> {
        let row = self.schema.check_row(row)?;
        self.next_row_id = self.next_row_id.max(id.0 + 1);
        self.rows.insert(id, row);
        Ok(())
    }

    /// Removes the row `id`, returning it.
    pub fn delete(&mut self, id: RowId) -> RelResult<Row> {
        self.rows.remove(&id).ok_or_else(|| {
            RelError::Internal(format!("row {id:?} not found in {}", self.schema.name))
        })
    }

    /// Replaces the row `id`, returning the previous value.
    pub fn update(&mut self, id: RowId, row: Row) -> RelResult<Row> {
        let row = self.schema.check_row(row)?;
        let slot = self.rows.get_mut(&id).ok_or_else(|| {
            RelError::Internal(format!("row {id:?} not found in {}", self.schema.name))
        })?;
        Ok(std::mem::replace(slot, row))
    }

    /// Borrows the row `id`.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.rows.get(&id)
    }

    /// Iterates over `(id, row)` in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().map(|(id, row)| (*id, row))
    }

    /// Borrows the rows in insertion order (streaming scan cursors).
    ///
    /// The concrete iterator type is exposed so executor cursors can hold
    /// it in a named struct field without boxing.
    pub fn rows(&self) -> std::collections::btree_map::Values<'_, RowId, Row> {
        self.rows.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Text),
            ],
        ))
    }

    #[test]
    fn insert_scan_order() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Text(format!("r{i}"))])
                .unwrap();
        }
        let scanned: Vec<i64> = t.scan().map(|(_, r)| r[0].as_int().unwrap()).collect();
        assert_eq!(scanned, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn row_ids_are_stable_across_deletes() {
        let mut t = table();
        let a = t
            .insert(vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        let b = t
            .insert(vec![Value::Int(2), Value::Text("y".into())])
            .unwrap();
        t.delete(a).unwrap();
        let c = t
            .insert(vec![Value::Int(3), Value::Text("z".into())])
            .unwrap();
        assert!(c > b);
        assert!(t.get(a).is_none());
        assert_eq!(t.get(b).unwrap()[0], Value::Int(2));
    }

    #[test]
    fn update_replaces_and_returns_old() {
        let mut t = table();
        let id = t
            .insert(vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        let old = t
            .update(id, vec![Value::Int(9), Value::Text("y".into())])
            .unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.get(id).unwrap()[0], Value::Int(9));
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        let id = t
            .insert(vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        assert!(t
            .update(id, vec![Value::Text("no".into()), Value::Null])
            .is_err());
    }

    #[test]
    fn insert_coerces_text_to_int() {
        let mut t = table();
        let id = t
            .insert(vec![Value::Text("12".into()), Value::Text("x".into())])
            .unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Int(12));
    }

    #[test]
    fn insert_at_keeps_next_id_monotone() {
        let mut t = table();
        t.insert_at(RowId(10), vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        let next = t
            .insert(vec![Value::Int(2), Value::Text("y".into())])
            .unwrap();
        assert!(next > RowId(10));
    }

    #[test]
    fn delete_missing_row_errors() {
        let mut t = table();
        assert!(t.delete(RowId(99)).is_err());
        assert!(t
            .update(RowId(99), vec![Value::Int(1), Value::Text("x".into())])
            .is_err());
    }
}
