//! Cached handles into the global observability registry.
//!
//! Per-row accounting stays in the executor's non-atomic [`Cell`]-based
//! `StatsCell`; this module only flushes the per-query aggregates into the
//! process-wide registry, once per statement. Caching the handles in a
//! `OnceLock` keeps the metrics-on cost of a query to a handful of relaxed
//! atomic adds — the overhead budget (see DESIGN.md "Observability") is
//! enforced by the exec bench.
//!
//! [`Cell`]: std::cell::Cell

use std::sync::OnceLock;
use std::time::Instant;

use xomatiq_obs::{Counter, Gauge, Histogram};

use crate::exec::ExecStats;
use crate::wal::RecoveryReport;

/// Engine-wide metric handles, resolved once.
pub(crate) struct EngineMetrics {
    /// `relstore.exec.queries` — SELECTs executed (any executor).
    pub queries: Counter,
    /// `relstore.exec.errors` — SELECTs that failed to plan or execute.
    pub errors: Counter,
    /// `relstore.exec.rows_scanned` — aggregate of [`ExecStats::rows_scanned`].
    pub rows_scanned: Counter,
    /// `relstore.exec.rows_emitted` — aggregate of [`ExecStats::rows_emitted`].
    pub rows_emitted: Counter,
    /// `relstore.exec.index_probes` — aggregate of [`ExecStats::index_probes`].
    pub index_probes: Counter,
    /// `relstore.exec.keyword_postings_read` — aggregate of
    /// [`ExecStats::keyword_postings_read`].
    pub keyword_postings: Counter,
    /// `relstore.exec.segments_pruned` — aggregate of
    /// [`ExecStats::segments_pruned`]: column-store segments skipped via
    /// zone maps.
    pub segments_pruned: Counter,
    /// `relstore.exec.parallel_workers` — workers used by parallel plan
    /// executions (a sequential execution adds nothing).
    pub parallel_workers: Counter,
    /// `relstore.plan.cache_hit` — prepared/plan-cache lookups that
    /// skipped parse+plan entirely.
    pub cache_hit: Counter,
    /// `relstore.plan.cache_miss` — cacheable SELECTs that had to be
    /// parsed and planned.
    pub cache_miss: Counter,
    /// `relstore.plan.cache_evict` — plans dropped by the LRU bound.
    pub cache_evict: Counter,
    /// `relstore.plan.latency` — planning wall-time per SELECT.
    pub plan_ns: Histogram,
    /// `relstore.exec.latency` — execution wall-time per SELECT.
    pub exec_ns: Histogram,
    /// `relstore.wal.commit_latency` — append+fsync wall-time per group
    /// commit flush (one flush may cover many transactions).
    pub wal_commit_ns: Histogram,
    /// `relstore.wal.fsync_failures` — group-commit flushes that failed
    /// to reach the disk (each one poisons the database until reopen).
    pub wal_fsync_failures: Counter,
    /// `relstore.wal.bytes` — current size of the active log.
    pub wal_bytes: Gauge,
    /// `relstore.wal.checkpoint_csn` — CSN of the latest checkpoint
    /// (written at checkpoint time and restored at recovery).
    pub checkpoint_csn: Gauge,
}

impl EngineMetrics {
    /// Flushes one finished query's counters into the registry.
    pub fn observe_query(&self, stats: &ExecStats) {
        self.queries.inc();
        self.rows_scanned.add(stats.rows_scanned);
        self.rows_emitted.add(stats.rows_emitted);
        self.index_probes.add(stats.index_probes);
        self.keyword_postings.add(stats.keyword_postings_read);
        self.segments_pruned.add(stats.segments_pruned);
    }
}

/// The cached engine handles.
pub(crate) fn engine() -> &'static EngineMetrics {
    static CELL: OnceLock<EngineMetrics> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = xomatiq_obs::global();
        EngineMetrics {
            queries: reg.counter("relstore.exec.queries"),
            errors: reg.counter("relstore.exec.errors"),
            rows_scanned: reg.counter("relstore.exec.rows_scanned"),
            rows_emitted: reg.counter("relstore.exec.rows_emitted"),
            index_probes: reg.counter("relstore.exec.index_probes"),
            keyword_postings: reg.counter("relstore.exec.keyword_postings_read"),
            segments_pruned: reg.counter("relstore.exec.segments_pruned"),
            parallel_workers: reg.counter("relstore.exec.parallel_workers"),
            cache_hit: reg.counter("relstore.plan.cache_hit"),
            cache_miss: reg.counter("relstore.plan.cache_miss"),
            cache_evict: reg.counter("relstore.plan.cache_evict"),
            plan_ns: reg.histogram("relstore.plan.latency"),
            exec_ns: reg.histogram("relstore.exec.latency"),
            wal_commit_ns: reg.histogram("relstore.wal.commit_latency"),
            wal_fsync_failures: reg.counter("relstore.wal.fsync_failures"),
            wal_bytes: reg.gauge("relstore.wal.bytes"),
            checkpoint_csn: reg.gauge("relstore.wal.checkpoint_csn"),
        }
    })
}

/// Publishes a WAL recovery's outcome as gauges (last recovery wins) and
/// bumps `relstore.wal.recoveries`.
pub(crate) fn observe_recovery(report: &RecoveryReport) {
    struct RecoveryMetrics {
        recoveries: Counter,
        scanned: Gauge,
        applied: Gauge,
        dropped: Gauge,
        errors: Gauge,
        truncated: Gauge,
        /// `relstore.wal.recovery.replay_tail` — transactions replayed
        /// from the log tail past the checkpoint. With checkpointing
        /// working, this stays bounded no matter how much history the
        /// database has accumulated.
        replay_tail: Gauge,
        skipped: Gauge,
        checkpoint_csn: Gauge,
    }
    static RECOVERY: OnceLock<RecoveryMetrics> = OnceLock::new();
    let m = RECOVERY.get_or_init(|| {
        let reg = xomatiq_obs::global();
        RecoveryMetrics {
            recoveries: reg.counter("relstore.wal.recoveries"),
            scanned: reg.gauge("relstore.wal.recovery.records_scanned"),
            applied: reg.gauge("relstore.wal.recovery.transactions_applied"),
            dropped: reg.gauge("relstore.wal.recovery.transactions_dropped"),
            errors: reg.gauge("relstore.wal.recovery.replay_errors"),
            truncated: reg.gauge("relstore.wal.recovery.truncated_bytes"),
            replay_tail: reg.gauge("relstore.wal.recovery.replay_tail"),
            skipped: reg.gauge("relstore.wal.recovery.transactions_skipped"),
            checkpoint_csn: reg.gauge("relstore.wal.checkpoint_csn"),
        }
    });
    m.recoveries.inc();
    m.scanned.set(report.records_scanned as i64);
    m.applied.set(report.transactions_applied as i64);
    m.dropped.set(report.transactions_dropped.len() as i64);
    m.errors.set(report.replay_errors.len() as i64);
    m.truncated.set(report.truncated_bytes as i64);
    m.replay_tail.set(report.transactions_applied as i64);
    m.skipped.set(report.transactions_skipped as i64);
    m.checkpoint_csn.set(report.checkpoint_csn as i64);
}

/// Nanoseconds since `start`, saturating.
pub(crate) fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
