//! System virtual tables: the engine's own telemetry as relational data.
//!
//! A [`VirtualTableProvider`] turns live engine state into a schema plus
//! a batch of rows at query time. When a `SELECT` references a provider's
//! name, the query layer materializes the referenced providers into a
//! private copy-on-write overlay of the query's pinned MVCC snapshot
//! (see `Storage::overlay_virtual`), then plans and executes through the
//! ordinary planner/executor — so filters, joins, aggregates, `ORDER BY`,
//! streaming execution and the morsel-parallel fallback all work
//! unchanged against `sys_*` tables, and joins between system tables and
//! user tables are just joins.
//!
//! Semantics are *snapshot at query start*, not MVCC: a provider reads
//! whatever the telemetry source (metrics registry, flight recorder,
//! session registry, segment store) holds when the statement begins
//! planning, and the rows never change underneath the running query.
//! Two system tables referenced by one statement are captured together.
//! System tables are read-only (DML/DDL against a `sys_`-prefixed name is
//! rejected) and never enter the plan cache: their "contents" change with
//! every query, so a cached plan's snapshot would be stale by design.
//!
//! The builtin catalog:
//!
//! | table | grain |
//! |---|---|
//! | `sys_metrics` | one row per counter/gauge, several per histogram |
//! | `sys_queries` | one row per retained flight-recorder record |
//! | `sys_profiles` | one row per operator of each captured slow-query profile |
//! | `sys_segments` | one row per (table, segment, column) with zone-map bounds |
//! | `sys_sessions` | one row per live [`crate::Session`] |
//! | `sys_table_stats` | one row per (analyzed table, column) of optimizer statistics |
//! | `sys_views` | one row per materialized view with refresh telemetry |

use xomatiq_obs::MetricValue;

use crate::db::Database;
use crate::exec::OpProfile;
use crate::schema::{Column, TableSchema};
use crate::sql::ast::SelectStmt;
use crate::table::Row;
use crate::value::{DataType, Value};

/// Reserved name prefix for system tables.
pub const SYS_PREFIX: &str = "sys_";

/// Produces one virtual table: its schema and, on demand, its rows.
///
/// Implementations must be cheap enough to run per query (rows are
/// materialized each time the table is referenced) and must not call back
/// into `db.query(...)` — they read engine state directly.
pub trait VirtualTableProvider: Send + Sync {
    /// The table's name; must start with [`SYS_PREFIX`].
    fn name(&self) -> &str;
    /// The table's schema (column names and types).
    fn schema(&self) -> TableSchema;
    /// The table's rows as of now. Row arity/types must match `schema`.
    fn rows(&self, db: &Database) -> Vec<Row>;
}

/// The provider set a [`Database`] exposes (builtins plus registered).
pub(crate) struct VirtualTables {
    providers: Vec<Box<dyn VirtualTableProvider>>,
}

impl VirtualTables {
    /// The builtin `sys_*` catalog.
    pub(crate) fn builtin() -> VirtualTables {
        VirtualTables {
            providers: vec![
                Box::new(SysMetrics),
                Box::new(SysQueries),
                Box::new(SysProfiles),
                Box::new(SysSegments),
                Box::new(SysSessions),
                Box::new(SysTableStats),
                Box::new(SysViews),
            ],
        }
    }

    pub(crate) fn register(&mut self, provider: Box<dyn VirtualTableProvider>) {
        self.providers
            .retain(|p| !p.name().eq_ignore_ascii_case(provider.name()));
        self.providers.push(provider);
    }

    pub(crate) fn get(&self, name: &str) -> Option<&dyn VirtualTableProvider> {
        self.providers
            .iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
            .map(|p| p.as_ref())
    }

    /// Providers referenced by `select`'s FROM / JOIN clauses, deduped.
    pub(crate) fn referenced(&self, select: &SelectStmt) -> Vec<&dyn VirtualTableProvider> {
        let mut out: Vec<&dyn VirtualTableProvider> = Vec::new();
        let names = select
            .from
            .iter()
            .map(|t| t.table.as_str())
            .chain(select.joins.iter().map(|j| j.table.table.as_str()));
        for name in names {
            if let Some(p) = self.get(name) {
                if !out.iter().any(|q| q.name().eq_ignore_ascii_case(p.name())) {
                    out.push(p);
                }
            }
        }
        out
    }
}

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn flag(b: bool) -> Value {
    Value::Int(i64::from(b))
}

/// Trace ids travel as 16-digit lowercase hex text, the same form clients
/// print; `sys_queries.trace_id = '00ab…'` round-trips exactly.
pub fn trace_id_text(id: u64) -> String {
    format!("{id:016x}")
}

fn cols(spec: &[(&str, DataType)]) -> Vec<Column> {
    spec.iter().map(|(n, ty)| Column::new(n, *ty)).collect()
}

// ---------------------------------------------------------------------------
// sys_metrics
// ---------------------------------------------------------------------------

struct SysMetrics;

impl VirtualTableProvider for SysMetrics {
    fn name(&self) -> &str {
        "sys_metrics"
    }

    fn schema(&self) -> TableSchema {
        TableSchema::new(
            "sys_metrics",
            cols(&[
                ("name", DataType::Text),
                ("kind", DataType::Text),
                ("item", DataType::Text),
                ("value", DataType::Float),
            ]),
        )
    }

    fn rows(&self, _db: &Database) -> Vec<Row> {
        let snap = xomatiq_obs::global().snapshot();
        let mut rows = Vec::new();
        let mut push = |name: &str, kind: &str, item: &str, value: f64| {
            rows.push(vec![
                Value::Text(name.to_string()),
                Value::Text(kind.to_string()),
                Value::Text(item.to_string()),
                Value::Float(value),
            ]);
        };
        for (name, value) in &snap.entries {
            match value {
                MetricValue::Counter(v) => push(name, "counter", "value", *v as f64),
                MetricValue::Gauge(v) => push(name, "gauge", "value", *v as f64),
                MetricValue::Histogram(h) => {
                    push(name, "histogram", "count", h.count as f64);
                    push(name, "histogram", "sum", h.sum as f64);
                    for (q, item) in [(h.p50(), "p50"), (h.p99(), "p99"), (h.p999(), "p999")] {
                        if let Some(v) = q {
                            push(name, "histogram", item, v);
                        }
                    }
                    for (i, n) in h.buckets.iter().enumerate() {
                        match h.edges.get(i) {
                            Some(edge) => push(name, "histogram", &format!("le_{edge}"), *n as f64),
                            None => push(name, "histogram", "le_inf", *n as f64),
                        }
                    }
                }
            }
        }
        rows
    }
}

// ---------------------------------------------------------------------------
// sys_queries / sys_profiles (the flight recorder's SQL surface)
// ---------------------------------------------------------------------------

struct SysQueries;

impl VirtualTableProvider for SysQueries {
    fn name(&self) -> &str {
        "sys_queries"
    }

    fn schema(&self) -> TableSchema {
        TableSchema::new(
            "sys_queries",
            cols(&[
                ("query_id", DataType::Int),
                ("trace_id", DataType::Text),
                ("sql", DataType::Text),
                ("rows", DataType::Int),
                ("latency_ns", DataType::Int),
                ("cache_hit", DataType::Int),
                ("workers", DataType::Int),
                ("segments_pruned", DataType::Int),
                ("slow", DataType::Int),
            ]),
        )
    }

    fn rows(&self, db: &Database) -> Vec<Row> {
        db.flight_recorder()
            .snapshot()
            .into_iter()
            .map(|r| {
                vec![
                    int(r.query_id),
                    Value::Text(trace_id_text(r.trace_id)),
                    Value::Text(r.sql),
                    int(r.rows),
                    int(r.latency_ns),
                    flag(r.cache_hit),
                    Value::Int(i64::from(r.workers)),
                    int(r.segments_pruned),
                    flag(r.slow),
                ]
            })
            .collect()
    }
}

struct SysProfiles;

fn flatten_profile(query_id: u64, trace_id: u64, node: &OpProfile, depth: i64, out: &mut Vec<Row>) {
    out.push(vec![
        int(query_id),
        Value::Text(trace_id_text(trace_id)),
        Value::Int(depth),
        Value::Text(node.op.clone()),
        int(node.rows_in),
        int(node.rows_out),
        int(node.elapsed_ns),
        int(node.total_ns),
    ]);
    for child in &node.children {
        flatten_profile(query_id, trace_id, child, depth + 1, out);
    }
}

impl VirtualTableProvider for SysProfiles {
    fn name(&self) -> &str {
        "sys_profiles"
    }

    fn schema(&self) -> TableSchema {
        TableSchema::new(
            "sys_profiles",
            cols(&[
                ("query_id", DataType::Int),
                ("trace_id", DataType::Text),
                ("depth", DataType::Int),
                ("op", DataType::Text),
                ("rows_in", DataType::Int),
                ("rows_out", DataType::Int),
                ("self_ns", DataType::Int),
                ("total_ns", DataType::Int),
            ]),
        )
    }

    fn rows(&self, db: &Database) -> Vec<Row> {
        let mut rows = Vec::new();
        for rec in db.flight_recorder().snapshot() {
            if let Some(profile) = &rec.profile {
                flatten_profile(rec.query_id, rec.trace_id, profile, 0, &mut rows);
            }
        }
        rows
    }
}

// ---------------------------------------------------------------------------
// sys_segments
// ---------------------------------------------------------------------------

struct SysSegments;

impl VirtualTableProvider for SysSegments {
    fn name(&self) -> &str {
        "sys_segments"
    }

    fn schema(&self) -> TableSchema {
        TableSchema::new(
            "sys_segments",
            cols(&[
                ("table_name", DataType::Text),
                ("segment_id", DataType::Int),
                ("column_name", DataType::Text),
                ("rows", DataType::Int),
                ("tombstones", DataType::Int),
                ("null_count", DataType::Int),
                ("min_value", DataType::Text),
                ("max_value", DataType::Text),
                ("csn", DataType::Int),
            ]),
        )
    }

    fn rows(&self, db: &Database) -> Vec<Row> {
        let storage = db.snapshot();
        let mut rows = Vec::new();
        for schema in storage.catalog.tables() {
            let Ok(table) = storage.table(&schema.name) else {
                continue;
            };
            for (seg_id, seg) in table.store().segments().iter().enumerate() {
                // Highest commit that wrote into this segment (0 when all
                // rows predate MVCC stamps, e.g. replayed bootstrap data).
                let max_csn = (0..seg.len()).map(|s| seg.insert_csn_at(s)).max();
                for (col_idx, col) in schema.columns.iter().enumerate() {
                    let zone = seg.zone(col_idx);
                    let (min_v, max_v) = match zone.bounds() {
                        Some((min, max)) => {
                            (Value::Text(min.to_string()), Value::Text(max.to_string()))
                        }
                        None => (Value::Null, Value::Null),
                    };
                    rows.push(vec![
                        Value::Text(schema.name.clone()),
                        int(seg_id as u64),
                        Value::Text(col.name.clone()),
                        int(seg.len() as u64),
                        int((seg.len() - seg.live_count()) as u64),
                        Value::Int(i64::from(zone.null_count())),
                        min_v,
                        max_v,
                        int(max_csn.unwrap_or(0)),
                    ]);
                }
            }
        }
        rows
    }
}

// ---------------------------------------------------------------------------
// sys_table_stats
// ---------------------------------------------------------------------------

struct SysTableStats;

impl VirtualTableProvider for SysTableStats {
    fn name(&self) -> &str {
        "sys_table_stats"
    }

    fn schema(&self) -> TableSchema {
        TableSchema::new(
            "sys_table_stats",
            cols(&[
                ("table_name", DataType::Text),
                ("column_name", DataType::Text),
                ("row_count", DataType::Int),
                ("ndv", DataType::Int),
                ("null_frac", DataType::Float),
                ("min_value", DataType::Text),
                ("max_value", DataType::Text),
                ("stats_generation", DataType::Int),
            ]),
        )
    }

    /// One row per (analyzed table, column), read from the querying
    /// snapshot's [`crate::stats::StatsCatalog`] — so the rows are
    /// exactly the statistics the planner would use for this query.
    /// Tables never `ANALYZE`d contribute no rows.
    fn rows(&self, db: &Database) -> Vec<Row> {
        let storage = db.snapshot();
        let generation = storage.stats.generation;
        let mut rows = Vec::new();
        for (table, stats) in storage.stats.analyzed_tables() {
            for col in &stats.columns {
                // Long text values (documents, flat-file bodies) would
                // swamp the rendered table; the bounds are only meant
                // for eyeballing ranges.
                let render = |v: &Option<Value>| match v {
                    Some(v) => {
                        let mut s = v.to_string();
                        if s.chars().count() > 48 {
                            s = s.chars().take(48).collect();
                            s.push('…');
                        }
                        Value::Text(s)
                    }
                    None => Value::Null,
                };
                rows.push(vec![
                    Value::Text(table.to_string()),
                    Value::Text(col.name.clone()),
                    int(stats.row_count),
                    int(col.ndv),
                    Value::Float(col.null_fraction(stats.analyzed_rows)),
                    render(&col.min),
                    render(&col.max),
                    int(generation),
                ]);
            }
        }
        rows
    }
}

// ---------------------------------------------------------------------------
// sys_views
// ---------------------------------------------------------------------------

struct SysViews;

impl VirtualTableProvider for SysViews {
    fn name(&self) -> &str {
        "sys_views"
    }

    fn schema(&self) -> TableSchema {
        TableSchema::new(
            "sys_views",
            cols(&[
                ("view_name", DataType::Text),
                ("definition", DataType::Text),
                ("refresh_policy", DataType::Text),
                ("last_refresh_csn", DataType::Int),
                ("pending_delta_rows", DataType::Int),
                ("delta_log_overflow", DataType::Int),
                ("incremental_refreshes", DataType::Int),
                ("fallback_refreshes", DataType::Int),
            ]),
        )
    }

    /// One row per materialized view, read from the querying snapshot —
    /// so `pending_delta_rows` counts exactly the committed deltas a
    /// `REFRESH` issued now would fold in. `delta_log_overflow = 1` means
    /// the bounded delta log spilled and the next refresh recomputes from
    /// scratch; the `incremental_refreshes` / `fallback_refreshes`
    /// counters say which path maintenance has actually been taking.
    fn rows(&self, db: &Database) -> Vec<Row> {
        let storage = db.snapshot();
        storage
            .views
            .values()
            .map(|rt| {
                vec![
                    Value::Text(rt.def.name.clone()),
                    Value::Text(rt.def.select_sql.clone()),
                    Value::Text(
                        if rt.def.refresh_on_commit {
                            "on_commit"
                        } else {
                            "deferred"
                        }
                        .to_string(),
                    ),
                    int(rt.last_refresh_csn),
                    int(rt.pending.len() as u64),
                    flag(rt.overflowed),
                    int(rt.incremental_refreshes),
                    int(rt.fallback_refreshes),
                ]
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// sys_sessions
// ---------------------------------------------------------------------------

struct SysSessions;

impl VirtualTableProvider for SysSessions {
    fn name(&self) -> &str {
        "sys_sessions"
    }

    fn schema(&self) -> TableSchema {
        TableSchema::new(
            "sys_sessions",
            cols(&[
                ("session_id", DataType::Int),
                ("workers", DataType::Int),
                ("prepared", DataType::Int),
                ("queries", DataType::Int),
                ("uptime_ns", DataType::Int),
            ]),
        )
    }

    fn rows(&self, db: &Database) -> Vec<Row> {
        db.session_infos()
            .into_iter()
            .map(|s| {
                vec![
                    int(s.session_id),
                    s.workers
                        .map_or(Value::Null, |w| int(u64::try_from(w).unwrap_or(0))),
                    int(s.prepared as u64),
                    int(s.queries),
                    int(s.uptime_ns),
                ]
            })
            .collect()
    }
}
