//! The slow-query flight recorder: a fixed-capacity, lock-striped ring
//! buffer of recent query records.
//!
//! Every statement the [`crate::Database`] completes deposits one
//! [`QueryRecord`] here — normalized SQL, trace id, row count, latency,
//! plan-cache outcome, worker count, segments pruned. Records land in one
//! of eight stripes keyed by query id, so concurrent sessions contend on
//! an eighth of a mutex each and the hot path holds a lock only long
//! enough to push one record and maybe pop one. Retention is by count,
//! not time: each stripe keeps the newest `capacity / 8` records and the
//! oldest fall off silently.
//!
//! Queries slower than [`crate::DatabaseOptions::slow_query_ns`]
//! additionally carry their `EXPLAIN ANALYZE` profile tree, which the
//! `sys_queries` / `sys_profiles` virtual tables expose to SQL.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::exec::OpProfile;

/// Number of independently locked ring stripes.
const STRIPES: usize = 8;

/// One completed statement, as remembered by the recorder.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Monotonically increasing completion id (process-local).
    pub query_id: u64,
    /// The trace this statement ran under.
    pub trace_id: u64,
    /// Normalized SQL text (literals preserved, case/whitespace folded).
    pub sql: String,
    /// Rows returned (`SELECT`) or affected (DML).
    pub rows: u64,
    /// End-to-end statement latency in nanoseconds.
    pub latency_ns: u64,
    /// Whether the plan came out of the plan cache.
    pub cache_hit: bool,
    /// Worker count the query ran with.
    pub workers: u32,
    /// Segments skipped by zone-map pruning (0 for DML).
    pub segments_pruned: u64,
    /// Whether the statement crossed the slow-query threshold.
    pub slow: bool,
    /// Per-operator profile, captured for slow `SELECT`s only.
    pub profile: Option<OpProfile>,
}

/// The ring buffer itself. See the module docs for the retention model.
pub struct FlightRecorder {
    stripes: Vec<Mutex<VecDeque<QueryRecord>>>,
    /// Newest records kept per stripe.
    per_stripe: usize,
    /// Total capacity as configured (`0` disables recording).
    capacity: usize,
    slow_ns: u64,
    next_id: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records (rounded up to a
    /// multiple of the stripe count; `0` disables recording), flagging
    /// queries at or above `slow_ns` as slow.
    pub fn new(capacity: usize, slow_ns: u64) -> FlightRecorder {
        let per_stripe = capacity.div_ceil(STRIPES).max(1);
        FlightRecorder {
            stripes: (0..STRIPES).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_stripe,
            capacity,
            slow_ns,
            next_id: AtomicU64::new(0),
        }
    }

    /// Whether the recorder keeps anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The slow-query threshold in nanoseconds.
    pub fn slow_ns(&self) -> u64 {
        self.slow_ns
    }

    /// Hands out the next completion id.
    pub fn next_query_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Deposits one record (dropping the stripe's oldest if full).
    pub fn record(&self, rec: QueryRecord) {
        if !self.enabled() {
            return;
        }
        let stripe = (rec.query_id as usize) % STRIPES;
        let mut ring = self.stripes[stripe]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.per_stripe {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Every retained record, oldest first (by completion id).
    pub fn snapshot(&self) -> Vec<QueryRecord> {
        let mut all: Vec<QueryRecord> = Vec::new();
        for stripe in &self.stripes {
            let ring = stripe.lock().unwrap_or_else(|e| e.into_inner());
            all.extend(ring.iter().cloned());
        }
        all.sort_by_key(|r| r.query_id);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> QueryRecord {
        QueryRecord {
            query_id: id,
            trace_id: id * 31,
            sql: format!("select {id}"),
            rows: 1,
            latency_ns: 100,
            cache_hit: false,
            workers: 1,
            segments_pruned: 0,
            slow: false,
            profile: None,
        }
    }

    #[test]
    fn retains_newest_per_stripe_and_sorts_by_id() {
        let r = FlightRecorder::new(16, u64::MAX); // 2 per stripe
        for id in 1..=40 {
            r.record(rec(id));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 16);
        // Oldest-first and strictly increasing.
        assert!(snap.windows(2).all(|w| w[0].query_id < w[1].query_id));
        // The newest full stripe round (33..=40) is fully present.
        assert!(snap.iter().any(|r| r.query_id == 40));
        assert!(!snap.iter().any(|r| r.query_id <= 24));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let r = FlightRecorder::new(0, 0);
        assert!(!r.enabled());
        r.record(rec(1));
        assert!(r.snapshot().is_empty());
    }
}
