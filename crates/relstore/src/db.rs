//! The database facade: storage, SQL entry point, durability, concurrency.
//!
//! [`Database`] is what the rest of the workspace talks to — the stand-in
//! for the paper's Oracle 9i instance. It wraps [`Storage`] (catalog +
//! tables + indexes) in a reader/writer lock, so any number of XomatiQ
//! queries run concurrently while Data Hounds updates take exclusive
//! turns, and threads every mutation through the write-ahead log before
//! acknowledging it.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::error::{RelError, RelResult};
use crate::exec::{
    execute_plan_profiled, execute_plan_with_stats, format_ns, ExecStats, OpProfile,
};
use crate::exec_parallel;
use crate::expr::{eval, eval_predicate, RowSchema};
use crate::index::BTreeIndex;
use crate::metrics;
use crate::plan::PlannedQuery;
use crate::planner::plan_select;
use crate::pool::WorkerPool;
use crate::query::PlanCache;
use crate::schema::{Catalog, Column, IndexDef, TableSchema};
use crate::sql::ast::{SelectStmt, Statement};
use crate::sql::parser::parse_statement;
use crate::table::{Row, RowId, Table};
use crate::text::KeywordIndex;
use crate::value::Value;
use crate::wal::{RecoveryReport, Wal, WalIo, WalRecord};

/// In-memory state: catalog, tables and index structures.
#[derive(Debug)]
pub struct Storage {
    /// Schemas and index definitions.
    pub catalog: Catalog,
    tables: BTreeMap<String, Table>,
    btree: BTreeMap<String, BTreeIndex>,
    keyword: BTreeMap<String, KeywordIndex>,
    /// Whether scans may skip segments via zone maps (on by default;
    /// benches turn it off to measure the pruning win).
    zone_map_pruning: bool,
}

impl Default for Storage {
    fn default() -> Storage {
        Storage {
            catalog: Catalog::default(),
            tables: BTreeMap::new(),
            btree: BTreeMap::new(),
            keyword: BTreeMap::new(),
            zone_map_pruning: true,
        }
    }
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Storage {
    /// Borrows a table.
    pub fn table(&self, name: &str) -> RelResult<&Table> {
        self.tables
            .get(&key(name))
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// Borrows a B-tree index by name.
    pub fn btree_index(&self, name: &str) -> RelResult<&BTreeIndex> {
        self.btree
            .get(&key(name))
            .ok_or_else(|| RelError::UnknownIndex(name.to_string()))
    }

    /// Borrows a keyword index by name.
    pub fn keyword_index(&self, name: &str) -> RelResult<&KeywordIndex> {
        self.keyword
            .get(&key(name))
            .ok_or_else(|| RelError::UnknownIndex(name.to_string()))
    }

    /// Whether scans may consult zone maps to skip segments.
    pub fn zone_map_pruning(&self) -> bool {
        self.zone_map_pruning
    }

    fn create_table(&mut self, schema: TableSchema) -> RelResult<()> {
        self.catalog.create_table(schema.clone())?;
        self.tables.insert(key(&schema.name), Table::new(schema));
        Ok(())
    }

    fn drop_table(&mut self, name: &str) -> RelResult<()> {
        // Record which indexes will disappear before mutating the catalog.
        let dropped: Vec<String> = self
            .catalog
            .indexes_on(name)
            .iter()
            .map(|d| key(&d.name))
            .collect();
        self.catalog.drop_table(name)?;
        self.tables.remove(&key(name));
        for idx in dropped {
            self.btree.remove(&idx);
            self.keyword.remove(&idx);
        }
        Ok(())
    }

    fn create_index(&mut self, def: IndexDef) -> RelResult<()> {
        self.catalog.create_index(def.clone())?;
        let table = self.table(&def.table)?;
        if def.keyword {
            let col = table
                .schema()
                .column_index(&def.columns[0])
                .expect("validated by catalog");
            let mut idx = KeywordIndex::new(col);
            for (id, row) in table.scan() {
                idx.insert(id, &row);
            }
            self.keyword.insert(key(&def.name), idx);
        } else {
            let cols: Vec<usize> = def
                .columns
                .iter()
                .map(|c| {
                    table
                        .schema()
                        .column_index(c)
                        .expect("validated by catalog")
                })
                .collect();
            let mut idx = BTreeIndex::new(cols);
            for (id, row) in table.scan() {
                idx.insert(id, &row);
            }
            self.btree.insert(key(&def.name), idx);
        }
        Ok(())
    }

    fn drop_index(&mut self, name: &str) -> RelResult<()> {
        self.catalog.drop_index(name)?;
        self.btree.remove(&key(name));
        self.keyword.remove(&key(name));
        Ok(())
    }

    fn insert(&mut self, table: &str, row: Row) -> RelResult<(RowId, Row)> {
        let t = self
            .tables
            .get_mut(&key(table))
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        let id = t.insert(row)?;
        let stored = t.get(id).expect("just inserted");
        self.index_insert(table, id, &stored);
        Ok((id, stored))
    }

    fn insert_at(&mut self, table: &str, id: RowId, row: Row) -> RelResult<()> {
        let t = self
            .tables
            .get_mut(&key(table))
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        t.insert_at(id, row)?;
        let stored = t.get(id).expect("just inserted");
        self.index_insert(table, id, &stored);
        Ok(())
    }

    fn delete(&mut self, table: &str, id: RowId) -> RelResult<Row> {
        let t = self
            .tables
            .get_mut(&key(table))
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        let old = t.delete(id)?;
        self.index_remove(table, id, &old);
        Ok(old)
    }

    fn update(&mut self, table: &str, id: RowId, row: Row) -> RelResult<Row> {
        let t = self
            .tables
            .get_mut(&key(table))
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        let old = t.update(id, row)?;
        let new = t.get(id).expect("just updated");
        self.index_remove(table, id, &old);
        self.index_insert(table, id, &new);
        Ok(old)
    }

    fn index_insert(&mut self, table: &str, id: RowId, row: &[Value]) {
        for def in self
            .catalog
            .indexes_on(table)
            .into_iter()
            .map(|d| d.name.clone())
            .collect::<Vec<_>>()
        {
            if let Some(idx) = self.btree.get_mut(&key(&def)) {
                idx.insert(id, row);
            }
            if let Some(idx) = self.keyword.get_mut(&key(&def)) {
                idx.insert(id, row);
            }
        }
    }

    fn index_remove(&mut self, table: &str, id: RowId, row: &[Value]) {
        for def in self
            .catalog
            .indexes_on(table)
            .into_iter()
            .map(|d| d.name.clone())
            .collect::<Vec<_>>()
        {
            if let Some(idx) = self.btree.get_mut(&key(&def)) {
                idx.remove(id, row);
            }
            if let Some(idx) = self.keyword.get_mut(&key(&def)) {
                idx.remove(id, row);
            }
        }
    }

    /// Rows of `table` matching `filter` (all rows when `None`).
    /// Rows of `table` matching `filter` (all rows when `None`).
    ///
    /// DML gets the same index-driven access paths as queries: the
    /// filter's sargable conjuncts go through the planner's access-path
    /// selection, so `DELETE ... WHERE doc_id = 7` touches only the
    /// matching rows instead of scanning the table — which is what makes
    /// the Data Hounds' per-entry incremental updates cheaper than a full
    /// reload.
    fn matching_rows(
        &self,
        table: &str,
        filter: Option<&crate::sql::ast::Expr>,
    ) -> RelResult<Vec<RowId>> {
        use crate::plan::{IndexAccess, Plan};
        let t = self.table(table)?;
        let schema = RowSchema::for_table(table, t.schema().columns.iter().map(|c| c.name.clone()));
        // Candidate row ids from the best index, else a full scan.
        let candidates: Vec<RowId> = match filter {
            Some(f) => {
                let mut conjuncts = Vec::new();
                crate::planner::split_conjuncts(f.clone(), &mut conjuncts);
                let table_ref = crate::sql::ast::TableRef {
                    table: table.to_string(),
                    alias: table.to_string(),
                };
                match crate::planner::choose_access_path(&table_ref, &conjuncts, &self.catalog) {
                    Plan::IndexScan { index, access, .. } => {
                        let idx = self.btree_index(&index)?;
                        let mut ids = match &access {
                            IndexAccess::Exact(values) => {
                                if values.len() == idx.key_columns().len() {
                                    idx.lookup(values)
                                } else {
                                    idx.lookup_prefix(values)
                                }
                            }
                            IndexAccess::Range {
                                prefix,
                                lower,
                                upper,
                            } => idx.range(prefix, bound_as_ref(lower), bound_as_ref(upper)),
                        };
                        ids.sort();
                        ids
                    }
                    Plan::KeywordScan { index, keyword, .. } => {
                        let idx = self.keyword_index(&index)?;
                        let mut ids = idx.lookup(&keyword);
                        ids.sort();
                        ids
                    }
                    _ => t.scan().map(|(id, _)| id).collect(),
                }
            }
            None => t.scan().map(|(id, _)| id).collect(),
        };
        // The full filter is re-checked on every candidate (index access
        // only covers the sargable prefix).
        let mut ids = Vec::with_capacity(candidates.len());
        for id in candidates {
            let Some(row) = t.get(id) else { continue };
            let keep = match filter {
                Some(f) => eval_predicate(f, &schema, &row)?,
                None => true,
            };
            if keep {
                ids.push(id);
            }
        }
        Ok(ids)
    }
}

/// Shapes executor output into a [`ResultSet`], dropping the hidden
/// sort-key columns the planner appended after the first `visible` items.
fn select_result(visible: usize, schema: &RowSchema, rows: Vec<Row>) -> ResultSet {
    let columns: Vec<String> = schema
        .columns()
        .iter()
        .take(visible)
        .map(|b| b.name.clone())
        .collect();
    let rows = rows
        .into_iter()
        .map(|mut r| {
            r.truncate(visible);
            r
        })
        .collect();
    ResultSet::query(columns, rows)
}

/// The result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Row>,
    affected: usize,
}

impl ResultSet {
    fn query(columns: Vec<String>, rows: Vec<Row>) -> Self {
        ResultSet {
            columns,
            rows,
            affected: 0,
        }
    }

    fn dml(affected: usize) -> Self {
        ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
            affected,
        }
    }

    /// Wraps rendered plan text as a one-column result set (one row per
    /// line), the shape `EXPLAIN [ANALYZE]` statements return.
    fn plan_text(text: &str) -> Self {
        ResultSet {
            columns: vec!["plan".to_string()],
            rows: text
                .lines()
                .map(|l| vec![Value::Text(l.to_string())])
                .collect(),
            affected: 0,
        }
    }

    /// Builds a query-shaped result set from column names and rows, for
    /// adapters that synthesize results outside the executor.
    pub fn from_parts(columns: Vec<String>, rows: Vec<Row>) -> ResultSet {
        ResultSet {
            columns,
            rows,
            affected: 0,
        }
    }

    /// Output column names (empty for DML/DDL).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Result rows (empty for DML/DDL).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows affected by DML (0 for queries).
    pub fn affected(&self) -> usize {
        self.affected
    }

    /// Consumes the result set into its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Renders the result as an ASCII table — the "simple table format"
    /// result view of the paper's Figure 7(b).
    pub fn to_table(&self) -> String {
        if self.columns.is_empty() {
            return format!("({} rows affected)\n", self.affected);
        }
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!("({} rows)\n", self.rows.len()));
        out
    }
}

/// The structured output of `EXPLAIN ANALYZE`: the per-operator profile
/// tree, the executor counters, the measured total execution time, and
/// the query's actual results (an analyzed query really runs).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedQuery {
    /// Per-operator rows/time profile, mirroring the plan tree.
    pub profile: OpProfile,
    /// Executor counters for the run.
    pub stats: ExecStats,
    /// Total execution wall-time in nanoseconds (root pull loop,
    /// excluding parse/plan time).
    pub total_ns: u64,
    /// The rows the query produced.
    pub result: ResultSet,
}

impl AnalyzedQuery {
    /// Renders the annotated plan tree plus a summary footer.
    pub fn render(&self) -> String {
        format!(
            "{}(total: {}, rows scanned: {}, rows emitted: {}, buffered peak: {}, \
             index probes: {}, keyword postings read: {}, segments pruned: {})\n",
            self.profile.render(),
            format_ns(self.total_ns),
            self.stats.rows_scanned,
            self.stats.rows_emitted,
            self.stats.buffered_peak,
            self.stats.index_probes,
            self.stats.keyword_postings_read,
            self.stats.segments_pruned,
        )
    }
}

struct WalState {
    wal: Wal,
    next_tx: u64,
}

/// Tuning knobs for a [`Database`].
#[derive(Debug, Clone)]
pub struct DatabaseOptions {
    /// Total workers available to parallel-eligible `SELECT` plans (the
    /// calling thread counts as one; `1` disables parallel execution).
    /// Defaults to the `XOMATIQ_WORKERS` environment variable if set,
    /// else the machine's available parallelism capped at 8.
    pub workers: usize,
    /// Rows per morsel handed to a worker by the parallel executor.
    pub morsel_size: usize,
    /// Maximum number of cached `SELECT` plans (`0` disables the cache).
    pub plan_cache_capacity: usize,
    /// Whether scans may skip segments via zone maps. On by default;
    /// benches disable it to measure the unpruned baseline.
    pub zone_map_pruning: bool,
}

impl Default for DatabaseOptions {
    fn default() -> DatabaseOptions {
        let workers = std::env::var("XOMATIQ_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get().min(8))
                    .unwrap_or(1)
            })
            .max(1);
        DatabaseOptions {
            workers,
            morsel_size: 1024,
            plan_cache_capacity: 128,
            zone_map_pruning: true,
        }
    }
}

/// An embedded relational database.
pub struct Database {
    pub(crate) storage: RwLock<Storage>,
    wal: Option<Mutex<WalState>>,
    pub(crate) options: DatabaseOptions,
    pub(crate) pool: WorkerPool,
    pub(crate) plan_cache: Mutex<PlanCache>,
}

impl Database {
    fn assemble(
        mut storage: Storage,
        wal: Option<Mutex<WalState>>,
        options: DatabaseOptions,
    ) -> Database {
        storage.zone_map_pruning = options.zone_map_pruning;
        let pool = WorkerPool::new(options.workers);
        let plan_cache = Mutex::new(PlanCache::new(options.plan_cache_capacity));
        Database {
            storage: RwLock::new(storage),
            wal,
            options,
            pool,
            plan_cache,
        }
    }

    /// Creates a volatile database (no durability).
    pub fn in_memory() -> Database {
        Database::in_memory_with_options(DatabaseOptions::default())
    }

    /// Creates a volatile database with explicit [`DatabaseOptions`].
    pub fn in_memory_with_options(options: DatabaseOptions) -> Database {
        Database::assemble(Storage::default(), None, options)
    }

    /// The options this database was built with.
    pub fn options(&self) -> &DatabaseOptions {
        &self.options
    }

    /// Toggles zone-map segment pruning at runtime (bench A/B runs).
    /// Disabling it only stops scans from *skipping* segments; the
    /// vectorized kernels still evaluate pushed-down conjuncts.
    pub fn set_zone_map_pruning(&self, enabled: bool) {
        self.storage.write().zone_map_pruning = enabled;
    }

    /// Opens a durable database whose write-ahead log lives at `path`,
    /// replaying any committed history found there.
    pub fn open(path: &Path) -> RelResult<Database> {
        Database::open_with_report(path).map(|(db, _)| db)
    }

    /// Like [`Database::open`], but also returns the [`RecoveryReport`]
    /// describing what replay found: transactions applied, transactions
    /// dropped, and any corruption truncated off the tail.
    pub fn open_with_report(path: &Path) -> RelResult<(Database, RecoveryReport)> {
        Database::from_wal(Wal::open(path)?)
    }

    /// Opens a durable database over an arbitrary [`WalIo`] backend —
    /// the entry point for fault-injection tests.
    pub fn open_with_io(io: Box<dyn WalIo>) -> RelResult<(Database, RecoveryReport)> {
        Database::from_wal(Wal::with_io(io))
    }

    fn from_wal(mut wal: Wal) -> RelResult<(Database, RecoveryReport)> {
        let scan = wal.recover()?;
        let mut report = RecoveryReport {
            records_scanned: scan.records.len(),
            corruption: scan.corruption.clone(),
            truncated_bytes: scan.total_len - scan.valid_len,
            ..RecoveryReport::default()
        };
        let mut storage = Storage::default();
        let mut max_tx = 0u64;
        // Buffer DML per transaction; apply at Commit, strictly in log
        // (= commit) order, so interleaved transactions replay exactly as
        // they were acknowledged. DDL is autocommitted (it is only ever
        // logged outside an open transaction).
        let mut open_txns: BTreeMap<u64, Vec<WalRecord>> = BTreeMap::new();
        for record in scan.records {
            match record {
                WalRecord::Begin { tx } => {
                    max_tx = max_tx.max(tx);
                    if open_txns.insert(tx, Vec::new()).is_some() {
                        report.replay_errors.push(format!(
                            "transaction {tx} restarted by a second Begin; \
                             earlier uncommitted operations discarded"
                        ));
                    }
                }
                WalRecord::Commit { tx } => match open_txns.remove(&tx) {
                    Some(ops) => match apply_txn(&mut storage, &ops) {
                        Ok(()) => report.transactions_applied += 1,
                        Err(e) => {
                            report.transactions_dropped.push(tx);
                            report
                                .replay_errors
                                .push(format!("transaction {tx} dropped: {e}"));
                        }
                    },
                    None => report
                        .replay_errors
                        .push(format!("Commit for unknown transaction {tx} ignored")),
                },
                WalRecord::CreateTable { schema } => {
                    if let Err(e) = storage.create_table(schema) {
                        report.replay_errors.push(format!("CREATE TABLE: {e}"));
                    }
                }
                WalRecord::DropTable { name } => {
                    if let Err(e) = storage.drop_table(&name) {
                        report.replay_errors.push(format!("DROP TABLE: {e}"));
                    }
                }
                WalRecord::CreateIndex { def } => {
                    if let Err(e) = storage.create_index(def) {
                        report.replay_errors.push(format!("CREATE INDEX: {e}"));
                    }
                }
                WalRecord::DropIndex { name } => {
                    if let Err(e) = storage.drop_index(&name) {
                        report.replay_errors.push(format!("DROP INDEX: {e}"));
                    }
                }
                dml @ (WalRecord::Insert { .. }
                | WalRecord::Delete { .. }
                | WalRecord::Update { .. }) => {
                    let tx = match &dml {
                        WalRecord::Insert { tx, .. }
                        | WalRecord::Delete { tx, .. }
                        | WalRecord::Update { tx, .. } => *tx,
                        _ => unreachable!(),
                    };
                    match open_txns.get_mut(&tx) {
                        Some(ops) => ops.push(dml),
                        // An op without a Begin comes from a compacted
                        // snapshot; apply directly.
                        None => {
                            let mut throwaway = Vec::new();
                            if let Err(e) = apply_dml(&mut storage, &dml, &mut throwaway) {
                                report
                                    .replay_errors
                                    .push(format!("snapshot record unapplicable: {e}"));
                            }
                        }
                    }
                }
            }
        }
        // Whatever is still open never committed: the crash tail.
        for tx in open_txns.into_keys() {
            report.transactions_dropped.push(tx);
        }
        report.transactions_dropped.sort_unstable();
        metrics::observe_recovery(&report);
        Ok((
            Database::assemble(
                storage,
                Some(Mutex::new(WalState {
                    wal,
                    next_tx: max_tx + 1,
                })),
                DatabaseOptions::default(),
            ),
            report,
        ))
    }

    /// Parses and executes one SQL statement.
    #[deprecated(note = "use `db.query(sql).run()` (the `Query` builder)")]
    pub fn execute(&self, sql: &str) -> RelResult<ResultSet> {
        Ok(self.query(sql).run()?.rows)
    }

    /// Executes a pre-parsed statement.
    pub fn execute_statement(&self, stmt: Statement) -> RelResult<ResultSet> {
        match stmt {
            Statement::Select(select) => {
                let (rs, _) = self.run_select(&select)?;
                Ok(rs)
            }
            Statement::Explain { analyze, inner } => {
                let Statement::Select(select) = *inner else {
                    return Err(RelError::Parse("EXPLAIN supports SELECT only".into()));
                };
                let text = if analyze {
                    self.analyze_select(&select)?.render()
                } else {
                    self.explain_select(&select)?
                };
                Ok(ResultSet::plan_text(&text))
            }
            Statement::CreateTable { name, columns } => {
                let schema = TableSchema::new(
                    &name,
                    columns
                        .into_iter()
                        .map(|(n, ty)| Column { name: n, ty })
                        .collect(),
                );
                let mut storage = self.storage.write();
                storage.create_table(schema.clone())?;
                self.plan_cache.lock().clear();
                self.log_ddl(WalRecord::CreateTable { schema })?;
                Ok(ResultSet::dml(0))
            }
            Statement::DropTable { name } => {
                let mut storage = self.storage.write();
                storage.drop_table(&name)?;
                self.plan_cache.lock().clear();
                self.log_ddl(WalRecord::DropTable { name })?;
                Ok(ResultSet::dml(0))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                keyword,
            } => {
                let def = IndexDef {
                    name,
                    table,
                    columns,
                    keyword,
                };
                let mut storage = self.storage.write();
                storage.create_index(def.clone())?;
                self.plan_cache.lock().clear();
                self.log_ddl(WalRecord::CreateIndex { def })?;
                Ok(ResultSet::dml(0))
            }
            Statement::DropIndex { name } => {
                let mut storage = self.storage.write();
                storage.drop_index(&name)?;
                self.plan_cache.lock().clear();
                self.log_ddl(WalRecord::DropIndex { name })?;
                Ok(ResultSet::dml(0))
            }
            stmt @ (Statement::Insert { .. }
            | Statement::Delete { .. }
            | Statement::Update { .. }) => self.execute_dml(stmt),
        }
    }

    /// Runs one DML statement as its own transaction. The in-memory state
    /// and the log move together: if the commit cannot be made durable,
    /// the in-memory mutation is rolled back before the error surfaces.
    fn execute_dml(&self, stmt: Statement) -> RelResult<ResultSet> {
        let mut storage = self.storage.write();
        match &stmt {
            Statement::Delete {
                table,
                filter: Some(f),
            }
            | Statement::Update {
                table,
                filter: Some(f),
                ..
            } => self.validate_filter(&storage, table, f)?,
            _ => {}
        }
        let tx = self.begin_tx();
        let mut records = Vec::new();
        let mut undo = Vec::new();
        let applied = apply_batch_statement(&mut storage, stmt, tx, &mut records, &mut undo);
        match applied.and_then(|n| self.commit_tx(tx, records).map(|()| n)) {
            Ok(affected) => Ok(ResultSet::dml(affected)),
            Err(e) => {
                rollback(&mut storage, undo);
                Err(e)
            }
        }
    }

    /// Executes a sequence of DML statements atomically: either every
    /// statement applies and a single commit record is fsynced, or none do.
    pub fn execute_batch(&self, statements: &[&str]) -> RelResult<usize> {
        let parsed: Vec<Statement> = statements
            .iter()
            .map(|s| parse_statement(s))
            .collect::<RelResult<_>>()?;
        for stmt in &parsed {
            if !matches!(
                stmt,
                Statement::Insert { .. } | Statement::Delete { .. } | Statement::Update { .. }
            ) {
                return Err(RelError::Internal(
                    "execute_batch accepts DML statements only".into(),
                ));
            }
        }
        let mut storage = self.storage.write();
        let tx = self.begin_tx();
        let mut records = Vec::new();
        let mut undo: Vec<UndoOp> = Vec::new();
        let mut affected = 0usize;
        let result = (|| -> RelResult<()> {
            for stmt in parsed {
                affected += apply_batch_statement(&mut storage, stmt, tx, &mut records, &mut undo)?;
            }
            Ok(())
        })();
        // A batch that failed to apply OR failed to commit durably is
        // rolled back in memory: no half-applied document, no state the
        // log does not have.
        match result.and_then(|()| self.commit_tx(tx, records)) {
            Ok(()) => Ok(affected),
            Err(e) => {
                rollback(&mut storage, undo);
                Err(e)
            }
        }
    }

    /// Returns the textual plan for a `SELECT` — the engine's `EXPLAIN`.
    /// The final `parallel=N` line reports how many workers the plan
    /// would use (`1` for shapes that must run sequentially to keep the
    /// documented row-order contract).
    pub fn explain(&self, sql: &str) -> RelResult<String> {
        match parse_statement(sql)? {
            Statement::Select(select) => self.explain_select(&select),
            _ => Err(RelError::Parse("EXPLAIN supports SELECT only".into())),
        }
    }

    fn explain_select(&self, select: &SelectStmt) -> RelResult<String> {
        let storage = self.storage.read();
        let planned = plan_select(select, &storage.catalog)?;
        let workers = if exec_parallel::parallel_eligible(&planned.plan) {
            self.options.workers
        } else {
            1
        };
        Ok(format!("{}parallel={workers}\n", planned.plan.explain()))
    }

    /// Plans a `SELECT` without executing it (used by tests and benches to
    /// assert access paths).
    pub fn plan(&self, sql: &str) -> RelResult<PlannedQuery> {
        match parse_statement(sql)? {
            Statement::Select(select) => {
                let storage = self.storage.read();
                plan_select(&select, &storage.catalog)
            }
            _ => Err(RelError::Parse("only SELECT can be planned".into())),
        }
    }

    /// Executes a `SELECT` and returns its results together with the
    /// executor's counters — rows scanned, peak buffered rows, rows
    /// emitted. This is the hook tests and benches use to assert that
    /// `LIMIT`/Top-K queries materialize O(k) rows, not the whole input.
    #[deprecated(note = "use `db.query(sql).with_stats().run()` (the `Query` builder)")]
    pub fn query_with_stats(&self, sql: &str) -> RelResult<(ResultSet, ExecStats)> {
        let out = self.query(sql).with_stats().run()?;
        Ok((out.rows, out.stats.expect("with_stats was requested")))
    }

    /// Plans one `SELECT`, publishing plan latency (or an error count) to
    /// the global metrics registry.
    pub(crate) fn plan_select_stmt(&self, select: &SelectStmt) -> RelResult<PlannedQuery> {
        let m = metrics::engine();
        let plan_start = Instant::now();
        let storage = self.storage.read();
        let result = plan_select(select, &storage.catalog);
        match &result {
            Ok(_) => m.plan_ns.record(metrics::elapsed_ns(plan_start)),
            Err(_) => m.errors.inc(),
        }
        result
    }

    /// Executes a planned `SELECT`, dispatching parallel-eligible shapes
    /// across the worker pool when `workers > 1`, and publishing per-query
    /// aggregates (row counters, exec latency) to the metrics registry.
    pub(crate) fn run_planned_query(
        &self,
        planned: &PlannedQuery,
        workers: usize,
    ) -> RelResult<(ResultSet, ExecStats)> {
        let m = metrics::engine();
        let result = (|| {
            let storage = self.storage.read();
            let exec_start = Instant::now();
            let parallel = if workers > 1 {
                exec_parallel::execute_plan_parallel(
                    &planned.plan,
                    &storage,
                    &self.pool,
                    workers,
                    self.options.morsel_size,
                )
            } else {
                None
            };
            let (schema, rows, stats) = match parallel {
                Some(run) => {
                    m.parallel_workers.add(workers as u64);
                    run?
                }
                None => execute_plan_with_stats(&planned.plan, &storage)?,
            };
            m.exec_ns.record(metrics::elapsed_ns(exec_start));
            Ok((select_result(planned.visible, &schema, rows), stats))
        })();
        match &result {
            Ok((_, stats)) => m.observe_query(stats),
            Err(_) => m.errors.inc(),
        }
        result
    }

    /// Plans and executes one `SELECT` with the database's default worker
    /// count.
    fn run_select(&self, select: &SelectStmt) -> RelResult<(ResultSet, ExecStats)> {
        let planned = self.plan_select_stmt(select)?;
        self.run_planned_query(&planned, self.options.workers)
    }

    /// Runs a `SELECT` (or an `EXPLAIN [ANALYZE] SELECT`) under the
    /// per-operator profiler and renders the annotated plan tree — the
    /// string form of `EXPLAIN ANALYZE`.
    pub fn explain_analyze(&self, sql: &str) -> RelResult<String> {
        Ok(self.analyze_sql(sql)?.render())
    }

    /// Like [`Database::explain_analyze`], but returns the structured
    /// [`AnalyzedQuery`] (profile tree, counters, total time, results)
    /// instead of rendered text.
    #[deprecated(note = "use `db.query(sql).with_profile().run()` (the `Query` builder)")]
    pub fn explain_analyze_query(&self, sql: &str) -> RelResult<AnalyzedQuery> {
        self.analyze_sql(sql)
    }

    fn analyze_sql(&self, sql: &str) -> RelResult<AnalyzedQuery> {
        match parse_statement(sql)? {
            Statement::Select(select) => self.analyze_select(&select),
            Statement::Explain { inner, .. } => match *inner {
                Statement::Select(select) => self.analyze_select(&select),
                _ => Err(RelError::Parse("EXPLAIN supports SELECT only".into())),
            },
            _ => Err(RelError::Parse("only SELECT can be analyzed".into())),
        }
    }

    pub(crate) fn analyze_select(&self, select: &SelectStmt) -> RelResult<AnalyzedQuery> {
        let m = metrics::engine();
        let result = (|| {
            let plan_start = Instant::now();
            let storage = self.storage.read();
            let PlannedQuery { plan, visible } = plan_select(select, &storage.catalog)?;
            m.plan_ns.record(metrics::elapsed_ns(plan_start));
            let exec_start = Instant::now();
            let (schema, rows, stats, profile) = execute_plan_profiled(&plan, &storage)?;
            let total_ns = metrics::elapsed_ns(exec_start);
            m.exec_ns.record(total_ns);
            Ok(AnalyzedQuery {
                profile,
                stats,
                total_ns,
                result: select_result(visible, &schema, rows),
            })
        })();
        match &result {
            Ok(analyzed) => m.observe_query(&analyzed.stats),
            Err(_) => m.errors.inc(),
        }
        result
    }

    /// Executes a `SELECT` through the materializing reference interpreter
    /// ([`crate::exec_reference`]) instead of the streaming executor.
    /// The property suite runs randomized queries through both paths and
    /// requires row-for-row identical results.
    #[deprecated(note = "use `db.query(sql).via_reference().run()` (the `Query` builder)")]
    pub fn query_reference(&self, sql: &str) -> RelResult<ResultSet> {
        Ok(self.query(sql).via_reference().run()?.rows)
    }

    /// Runs a pre-parsed `SELECT` on the reference interpreter.
    pub(crate) fn run_select_reference(&self, select: &SelectStmt) -> RelResult<ResultSet> {
        let storage = self.storage.read();
        let PlannedQuery { plan, visible } = plan_select(select, &storage.catalog)?;
        let (schema, rows) = crate::exec_reference::execute_plan(&plan, &storage)?;
        Ok(select_result(visible, &schema, rows))
    }

    /// Number of rows currently in `table`.
    pub fn row_count(&self, table: &str) -> RelResult<usize> {
        Ok(self.storage.read().table(table)?.len())
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.storage
            .read()
            .catalog
            .tables()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Rewrites the log as a compact snapshot of current state; recovery
    /// time becomes proportional to live data rather than history.
    pub fn compact(&self) -> RelResult<()> {
        let Some(wal_state) = &self.wal else {
            return Ok(()); // nothing to compact in memory-only mode
        };
        let storage = self.storage.write();
        let mut state = wal_state.lock();
        let mut snapshot = Vec::new();
        for schema in storage.catalog.tables() {
            snapshot.push(WalRecord::CreateTable {
                schema: schema.clone(),
            });
        }
        for def in storage.catalog.indexes() {
            snapshot.push(WalRecord::CreateIndex { def: def.clone() });
        }
        for schema in storage.catalog.tables() {
            let table = storage.table(&schema.name)?;
            for (id, row) in table.scan() {
                snapshot.push(WalRecord::Insert {
                    tx: 0,
                    table: schema.name.clone(),
                    row_id: id,
                    row,
                });
            }
        }
        match state.wal.path().map(Path::to_path_buf) {
            // File-backed: write the snapshot beside the log and swap it
            // in with an atomic rename, so a crash mid-compaction leaves
            // either the old log or the new one — never a mixture.
            Some(path) => {
                let tmp_path = path.with_extension("compact");
                let _ = std::fs::remove_file(&tmp_path);
                let mut fresh = Wal::open(&tmp_path)?;
                for record in &snapshot {
                    fresh.append(record);
                }
                fresh.sync()?;
                drop(fresh);
                std::fs::rename(&tmp_path, &path)
                    .map_err(|e| RelError::Wal(format!("rename compacted log: {e}")))?;
                state.wal = Wal::open(&path)?;
            }
            // Custom backend: no rename available; rewrite in place.
            None => state.wal.rewrite(&snapshot)?,
        }
        Ok(())
    }

    fn validate_filter(
        &self,
        storage: &Storage,
        table: &str,
        filter: &crate::sql::ast::Expr,
    ) -> RelResult<()> {
        // DELETE/UPDATE predicates see the bare table as its own alias.
        let schema = storage.table(table)?.schema();
        let row_schema = RowSchema::for_table(table, schema.columns.iter().map(|c| c.name.clone()));
        // Validate references eagerly so errors carry good messages.
        validate_expr_columns(filter, &row_schema)
    }

    fn begin_tx(&self) -> u64 {
        match &self.wal {
            Some(state) => {
                let mut s = state.lock();
                let tx = s.next_tx;
                s.next_tx += 1;
                tx
            }
            None => 0,
        }
    }

    fn commit_tx(&self, tx: u64, records: Vec<WalRecord>) -> RelResult<()> {
        if let Some(state) = &self.wal {
            let mut s = state.lock();
            if records.is_empty() {
                return Ok(());
            }
            let start = Instant::now();
            s.wal.append(&WalRecord::Begin { tx });
            for r in &records {
                s.wal.append(r);
            }
            s.wal.append(&WalRecord::Commit { tx });
            s.wal.sync()?;
            metrics::engine()
                .wal_commit_ns
                .record(metrics::elapsed_ns(start));
        }
        Ok(())
    }

    fn log_ddl(&self, record: WalRecord) -> RelResult<()> {
        if let Some(state) = &self.wal {
            let mut s = state.lock();
            s.wal.append(&record);
            s.wal.sync()?;
        }
        Ok(())
    }
}

/// Validates that every column an expression mentions resolves.
fn validate_expr_columns(expr: &crate::sql::ast::Expr, schema: &RowSchema) -> RelResult<()> {
    use crate::sql::ast::Expr as E;
    match expr {
        E::Column { table, name } => {
            schema.resolve(table.as_deref(), name)?;
            Ok(())
        }
        E::Literal(_) | E::Param(_) => Ok(()),
        E::Binary { left, right, .. } => {
            validate_expr_columns(left, schema)?;
            validate_expr_columns(right, schema)
        }
        E::Not(e) | E::Neg(e) => validate_expr_columns(e, schema),
        E::IsNull { expr, .. } => validate_expr_columns(expr, schema),
        E::Like { expr, pattern, .. } => {
            validate_expr_columns(expr, schema)?;
            validate_expr_columns(pattern, schema)
        }
        E::InList { expr, list, .. } => {
            validate_expr_columns(expr, schema)?;
            list.iter()
                .try_for_each(|e| validate_expr_columns(e, schema))
        }
        E::Between {
            expr, low, high, ..
        } => {
            validate_expr_columns(expr, schema)?;
            validate_expr_columns(low, schema)?;
            validate_expr_columns(high, schema)
        }
        E::Contains { column, keyword } => {
            validate_expr_columns(column, schema)?;
            validate_expr_columns(keyword, schema)
        }
        E::Matches { column, pattern } => {
            validate_expr_columns(column, schema)?;
            validate_expr_columns(pattern, schema)
        }
        E::Aggregate { .. } => Err(RelError::Eval("aggregate in DML predicate".into())),
    }
}

/// `Bound<Value>` → `Bound<&Value>`.
fn bound_as_ref(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

/// Applies one replayed DML record, recording its inverse in `undo`.
fn apply_dml(storage: &mut Storage, record: &WalRecord, undo: &mut Vec<UndoOp>) -> RelResult<()> {
    match record {
        WalRecord::Insert {
            table, row_id, row, ..
        } => {
            storage.insert_at(table, *row_id, row.clone())?;
            undo.push(UndoOp::DeleteInserted {
                table: table.clone(),
                id: *row_id,
            });
            Ok(())
        }
        WalRecord::Delete { table, row_id, .. } => {
            let old = storage.delete(table, *row_id)?;
            undo.push(UndoOp::ReinsertDeleted {
                table: table.clone(),
                id: *row_id,
                row: old,
            });
            Ok(())
        }
        WalRecord::Update {
            table, row_id, row, ..
        } => {
            let old = storage.update(table, *row_id, row.clone())?;
            undo.push(UndoOp::RevertUpdated {
                table: table.clone(),
                id: *row_id,
                row: old,
            });
            Ok(())
        }
        other => Err(RelError::Wal(format!("unexpected DML record {other:?}"))),
    }
}

/// Applies one committed transaction's operations; on failure rolls back
/// whatever part already applied, so a dropped transaction leaves no
/// trace (all-or-nothing even during replay of a damaged log).
fn apply_txn(storage: &mut Storage, ops: &[WalRecord]) -> RelResult<()> {
    let mut undo = Vec::with_capacity(ops.len());
    for op in ops {
        if let Err(e) = apply_dml(storage, op, &mut undo) {
            rollback(storage, undo);
            return Err(e);
        }
    }
    Ok(())
}

/// Best-effort reverse replay of an undo log.
fn rollback(storage: &mut Storage, undo: Vec<UndoOp>) {
    for op in undo.into_iter().rev() {
        // Each undo op inverts an operation that succeeded, so failure
        // here is unreachable in practice; ignoring it keeps rollback
        // total (it must never panic or abort halfway).
        let _ = op.apply(storage);
    }
}

/// Inverse operation recorded while applying a batch, replayed on failure.
enum UndoOp {
    DeleteInserted { table: String, id: RowId },
    ReinsertDeleted { table: String, id: RowId, row: Row },
    RevertUpdated { table: String, id: RowId, row: Row },
}

impl UndoOp {
    fn apply(self, storage: &mut Storage) -> RelResult<()> {
        match self {
            UndoOp::DeleteInserted { table, id } => storage.delete(&table, id).map(|_| ()),
            UndoOp::ReinsertDeleted { table, id, row } => storage.insert_at(&table, id, row),
            UndoOp::RevertUpdated { table, id, row } => storage.update(&table, id, row).map(|_| ()),
        }
    }
}

fn apply_batch_statement(
    storage: &mut Storage,
    stmt: Statement,
    tx: u64,
    records: &mut Vec<WalRecord>,
    undo: &mut Vec<UndoOp>,
) -> RelResult<usize> {
    match stmt {
        Statement::Insert { table, rows } => {
            let empty = RowSchema::default();
            let count = rows.len();
            for row in rows {
                let values: Row = row
                    .iter()
                    .map(|e| eval(e, &empty, &[]))
                    .collect::<RelResult<_>>()?;
                let (id, stored) = storage.insert(&table, values)?;
                records.push(WalRecord::Insert {
                    tx,
                    table: table.clone(),
                    row_id: id,
                    row: stored,
                });
                undo.push(UndoOp::DeleteInserted {
                    table: table.clone(),
                    id,
                });
            }
            Ok(count)
        }
        Statement::Delete { table, filter } => {
            let ids = storage.matching_rows(&table, filter.as_ref())?;
            for id in &ids {
                let old = storage.delete(&table, *id)?;
                records.push(WalRecord::Delete {
                    tx,
                    table: table.clone(),
                    row_id: *id,
                });
                undo.push(UndoOp::ReinsertDeleted {
                    table: table.clone(),
                    id: *id,
                    row: old,
                });
            }
            Ok(ids.len())
        }
        Statement::Update {
            table,
            assignments,
            filter,
        } => {
            let columns: Vec<String> = storage
                .table(&table)?
                .schema()
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect();
            let row_schema = RowSchema::for_table(&table, columns);
            let mut positions = Vec::with_capacity(assignments.len());
            for (col, _) in &assignments {
                positions.push(
                    storage
                        .table(&table)?
                        .schema()
                        .column_index(col)
                        .ok_or_else(|| RelError::UnknownColumn(format!("{table}.{col}")))?,
                );
            }
            let ids = storage.matching_rows(&table, filter.as_ref())?;
            for id in &ids {
                let current = storage.table(&table)?.get(*id).expect("matched");
                let mut next = current.clone();
                for ((_, expr), pos) in assignments.iter().zip(&positions) {
                    next[*pos] = eval(expr, &row_schema, &current)?;
                }
                let old = storage.update(&table, *id, next)?;
                let stored = storage.table(&table)?.get(*id).expect("updated");
                records.push(WalRecord::Update {
                    tx,
                    table: table.clone(),
                    row_id: *id,
                    row: stored,
                });
                undo.push(UndoOp::RevertUpdated {
                    table: table.clone(),
                    id: *id,
                    row: old,
                });
            }
            Ok(ids.len())
        }
        _ => unreachable!("validated as DML"),
    }
}
