//! The database facade: storage, SQL entry point, durability, concurrency.
//!
//! [`Database`] is what the rest of the workspace talks to — the stand-in
//! for the paper's Oracle 9i instance. It wraps [`Storage`] (catalog +
//! tables + indexes) in a reader/writer lock for mutations, publishes an
//! immutable copy-on-write snapshot of the committed state for readers,
//! and threads every mutation through a group-committed write-ahead log
//! before acknowledging it.
//!
//! # Transactions, snapshots and commit sequence numbers
//!
//! Every committed unit of work — one DML statement, one
//! [`Database::execute_batch`], or one autocommitted DDL statement — is
//! assigned the next **commit sequence number** (CSN) while it holds the
//! storage write lock, so CSN order, apply order and log order are the
//! same total order. Row versions carry the CSN that inserted and (for
//! tombstones) deleted them, stamped down in the segment store.
//!
//! Readers never block on writers: queries run against an
//! `Arc<Storage>` snapshot published at the *last durable commit*.
//! Cloning `Storage` is cheap — tables share their sealed segments via
//! `Arc`, indexes are `Arc`-wrapped, and writers clone-on-write only the
//! pieces a live snapshot still references. A query pinned to a snapshot
//! sees that CSN's state for its whole lifetime, whatever writers do
//! concurrently.
//!
//! # Group commit
//!
//! Committers enqueue their framed records into a shared buffer under the
//! storage write lock, release it, and wait. The first waiter whose CSN
//! is not yet durable becomes the **flush leader**: it takes the whole
//! buffer and makes it durable with a single append + fsync, then wakes
//! everyone. Concurrent committers therefore amortize one fsync across
//! the batch. If the flush fails, *every* transaction in the batch
//! observes the error, each rolls back its own in-memory effects, and the
//! database is poisoned — it refuses further commits until reopened.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Condvar, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockWriteGuard};
use xomatiq_obs::trace;

use crate::error::{RelError, RelResult};
use crate::exec::{
    execute_plan_profiled, execute_plan_with_stats, format_ns, ExecStats, OpProfile,
};
use crate::exec_parallel;
use crate::expr::{eval, eval_predicate, RowSchema};
use crate::index::BTreeIndex;
use crate::metrics;
use crate::plan::PlannedQuery;
use crate::planner::plan_select;
use crate::pool::{StopSignal, WorkerPool};
use crate::query::PlanCache;
use crate::recorder::FlightRecorder;
use crate::schema::{Catalog, Column, IndexDef, TableSchema};
use crate::sql::ast::{SelectStmt, Statement};
use crate::sql::parser::parse_statement;
use crate::stats::StatsCatalog;
use crate::table::{Row, RowId, Table};
use crate::text::KeywordIndex;
use crate::value::Value;
use crate::view::{self, DeltaEvent, ViewDef, ViewRuntime, VIEW_DELTA_LOG_CAP};
use crate::vtab::{VirtualTableProvider, VirtualTables, SYS_PREFIX};
use crate::wal::{frame_into, RecoveryReport, Wal, WalIo, WalRecord};

/// Segments whose dead-slot fraction exceeds this are rewritten by the
/// background compactor.
const COMPACT_DEAD_RATIO: f64 = 0.3;

/// In-memory state: catalog, tables and index structures.
///
/// `Storage` is cheaply `Clone`: tables share sealed segments through
/// `Arc`, and index structures are `Arc`-wrapped. A clone is an MVCC
/// snapshot — it sees the state as of the clone and is never affected by
/// later mutations of the original (which copy-on-write any shared piece
/// before changing it).
#[derive(Debug, Clone)]
pub struct Storage {
    /// Schemas and index definitions.
    pub catalog: Catalog,
    tables: BTreeMap<String, Table>,
    btree: BTreeMap<String, Arc<BTreeIndex>>,
    keyword: BTreeMap<String, Arc<KeywordIndex>>,
    /// Commit sequence number of the last commit applied to this state.
    /// Mutations are stamped with `csn + 1` (the CSN their commit will
    /// take); the commit itself bumps the counter.
    pub(crate) csn: u64,
    /// Whether scans may skip segments via zone maps (on by default;
    /// benches turn it off to measure the pruning win).
    zone_map_pruning: bool,
    /// Planner statistics (row counts, min/max, NDV sketches). Part of
    /// the snapshot: a pinned reader plans against the statistics of its
    /// own state, never a later `ANALYZE`'s.
    pub(crate) stats: StatsCatalog,
    /// Materialized views, keyed like `tables` (each view also owns a
    /// backing entry in `tables`/`catalog` under the same key). Part of
    /// the snapshot: a pinned reader sees the view contents of its CSN.
    pub(crate) views: BTreeMap<String, ViewRuntime>,
}

impl Default for Storage {
    fn default() -> Storage {
        Storage {
            catalog: Catalog::default(),
            tables: BTreeMap::new(),
            btree: BTreeMap::new(),
            keyword: BTreeMap::new(),
            csn: 0,
            zone_map_pruning: true,
            stats: StatsCatalog::default(),
            views: BTreeMap::new(),
        }
    }
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Storage {
    /// Borrows a table.
    pub fn table(&self, name: &str) -> RelResult<&Table> {
        self.tables
            .get(&key(name))
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    fn table_mut(&mut self, name: &str) -> RelResult<&mut Table> {
        self.tables
            .get_mut(&key(name))
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// Borrows a B-tree index by name.
    pub fn btree_index(&self, name: &str) -> RelResult<&BTreeIndex> {
        self.btree
            .get(&key(name))
            .map(|idx| idx.as_ref())
            .ok_or_else(|| RelError::UnknownIndex(name.to_string()))
    }

    /// Borrows a keyword index by name.
    pub fn keyword_index(&self, name: &str) -> RelResult<&KeywordIndex> {
        self.keyword
            .get(&key(name))
            .map(|idx| idx.as_ref())
            .ok_or_else(|| RelError::UnknownIndex(name.to_string()))
    }

    /// Whether scans may consult zone maps to skip segments.
    pub fn zone_map_pruning(&self) -> bool {
        self.zone_map_pruning
    }

    /// Commit sequence number of the last commit this state includes.
    pub fn csn(&self) -> u64 {
        self.csn
    }

    /// A copy-on-write overlay of this snapshot with the given virtual
    /// tables materialized as ordinary (index-less) tables — the storage
    /// a `SELECT` referencing `sys_*` names runs against. The overlay
    /// shares every user segment with `self` via `Arc`, so building it
    /// costs only the virtual rows themselves.
    pub(crate) fn overlay_virtual(
        &self,
        tables: Vec<(TableSchema, Vec<Row>)>,
    ) -> RelResult<Storage> {
        let mut overlay = self.clone();
        for (schema, rows) in tables {
            let name = schema.name.clone();
            // A user table shadowed by a system name cannot exist (DDL
            // rejects the sys_ prefix), but replayed legacy state might:
            // the virtual table wins for the duration of the query.
            if overlay.catalog.has_table(&name) {
                overlay.drop_table(&name)?;
            }
            overlay.create_table(schema)?;
            for row in rows {
                overlay.insert(&name, row)?;
            }
        }
        Ok(overlay)
    }

    fn create_table(&mut self, schema: TableSchema) -> RelResult<()> {
        self.catalog.create_table(schema.clone())?;
        let name = key(&schema.name);
        self.tables.insert(name.clone(), Table::new(schema));
        // Start row-count tracking immediately; column statistics wait
        // for an ANALYZE.
        *self.stats.table_mut(&name) = crate::stats::TableStats::default();
        Ok(())
    }

    fn drop_table(&mut self, name: &str) -> RelResult<()> {
        // Record which indexes will disappear before mutating the catalog.
        let dropped: Vec<String> = self
            .catalog
            .indexes_on(name)
            .iter()
            .map(|d| key(&d.name))
            .collect();
        self.catalog.drop_table(name)?;
        self.tables.remove(&key(name));
        self.stats.remove(name);
        for idx in dropped {
            self.btree.remove(&idx);
            self.keyword.remove(&idx);
        }
        Ok(())
    }

    fn create_index(&mut self, def: IndexDef) -> RelResult<()> {
        self.catalog.create_index(def.clone())?;
        let table = self.table(&def.table)?;
        if def.keyword {
            let col = table
                .schema()
                .column_index(&def.columns[0])
                .expect("validated by catalog");
            let mut idx = KeywordIndex::new(col);
            for (id, row) in table.scan() {
                idx.insert(id, &row);
            }
            self.keyword.insert(key(&def.name), Arc::new(idx));
        } else {
            let cols: Vec<usize> = def
                .columns
                .iter()
                .map(|c| {
                    table
                        .schema()
                        .column_index(c)
                        .expect("validated by catalog")
                })
                .collect();
            let mut idx = BTreeIndex::new(cols);
            for (id, row) in table.scan() {
                idx.insert(id, &row);
            }
            self.btree.insert(key(&def.name), Arc::new(idx));
        }
        Ok(())
    }

    fn drop_index(&mut self, name: &str) -> RelResult<()> {
        self.catalog.drop_index(name)?;
        self.btree.remove(&key(name));
        self.keyword.remove(&key(name));
        Ok(())
    }

    fn insert(&mut self, table: &str, row: Row) -> RelResult<(RowId, Row)> {
        let stamp = self.csn + 1;
        let t = self.table_mut(table)?;
        t.set_stamp(stamp);
        let id = t.insert(row)?;
        let stored = t.get(id).expect("just inserted");
        self.index_insert(table, id, &stored);
        self.note_mutation(table, 1);
        Ok((id, stored))
    }

    fn insert_at(&mut self, table: &str, id: RowId, row: Row) -> RelResult<()> {
        let stamp = self.csn + 1;
        let t = self.table_mut(table)?;
        t.set_stamp(stamp);
        t.insert_at(id, row)?;
        let stored = t.get(id).expect("just inserted");
        self.index_insert(table, id, &stored);
        self.note_mutation(table, 1);
        Ok(())
    }

    fn delete(&mut self, table: &str, id: RowId) -> RelResult<Row> {
        let stamp = self.csn + 1;
        let t = self.table_mut(table)?;
        t.set_stamp(stamp);
        let old = t.delete(id)?;
        self.index_remove(table, id, &old);
        self.note_mutation(table, -1);
        Ok(old)
    }

    fn update(&mut self, table: &str, id: RowId, row: Row) -> RelResult<Row> {
        let stamp = self.csn + 1;
        let t = self.table_mut(table)?;
        t.set_stamp(stamp);
        let old = t.update(id, row)?;
        let new = t.get(id).expect("just updated");
        self.index_remove(table, id, &old);
        self.index_insert(table, id, &new);
        self.note_mutation(table, 0);
        Ok(old)
    }

    /// Tracks one row mutation against the planner statistics: the row
    /// count moves by `delta` exactly, and once enough churn accumulates
    /// the column statistics (if the table was analyzed) rebuild in place.
    fn note_mutation(&mut self, table: &str, delta: i64) {
        let rebuild = {
            let Some(stats) = self.stats.existing_mut(table) else {
                return;
            };
            stats.row_count = stats.row_count.saturating_add_signed(delta);
            stats.churn += 1;
            stats.needs_rebuild()
        };
        if rebuild {
            self.rebuild_stats(table);
        }
    }

    /// Rescans `table` into its statistics entry and bumps the stats
    /// generation (invalidating cached plans).
    pub(crate) fn rebuild_stats(&mut self, table: &str) {
        let Ok(t) = self.table(table) else { return };
        let schema = t.schema().clone();
        let rows: Vec<Row> = t.scan().map(|(_, row)| row).collect();
        if let Some(stats) = self.stats.existing_mut(table) {
            stats.rescan(&schema, rows.into_iter());
            self.stats.generation += 1;
        }
    }

    fn index_insert(&mut self, table: &str, id: RowId, row: &[Value]) {
        let defs: Vec<String> = self
            .catalog
            .indexes_on(table)
            .into_iter()
            .map(|d| key(&d.name))
            .collect();
        for name in defs {
            if let Some(idx) = self.btree.get_mut(&name) {
                Arc::make_mut(idx).insert(id, row);
            }
            if let Some(idx) = self.keyword.get_mut(&name) {
                Arc::make_mut(idx).insert(id, row);
            }
        }
    }

    fn index_remove(&mut self, table: &str, id: RowId, row: &[Value]) {
        let defs: Vec<String> = self
            .catalog
            .indexes_on(table)
            .into_iter()
            .map(|d| key(&d.name))
            .collect();
        for name in defs {
            if let Some(idx) = self.btree.get_mut(&name) {
                Arc::make_mut(idx).remove(id, row);
            }
            if let Some(idx) = self.keyword.get_mut(&name) {
                Arc::make_mut(idx).remove(id, row);
            }
        }
    }

    /// Rows of `table` matching `filter` (all rows when `None`).
    ///
    /// DML gets the same index-driven access paths as queries: the
    /// filter's sargable conjuncts go through the planner's access-path
    /// selection, so `DELETE ... WHERE doc_id = 7` touches only the
    /// matching rows instead of scanning the table — which is what makes
    /// the Data Hounds' per-entry incremental updates cheaper than a full
    /// reload.
    fn matching_rows(
        &self,
        table: &str,
        filter: Option<&crate::sql::ast::Expr>,
    ) -> RelResult<Vec<RowId>> {
        use crate::plan::{IndexAccess, Plan};
        let t = self.table(table)?;
        let schema = RowSchema::for_table(table, t.schema().columns.iter().map(|c| c.name.clone()));
        // Candidate row ids from the best index, else a full scan.
        let candidates: Vec<RowId> = match filter {
            Some(f) => {
                let mut conjuncts = Vec::new();
                crate::planner::split_conjuncts(f.clone(), &mut conjuncts);
                let table_ref = crate::sql::ast::TableRef {
                    table: table.to_string(),
                    alias: table.to_string(),
                };
                match crate::planner::choose_access_path(
                    &table_ref,
                    &conjuncts,
                    &self.catalog,
                    &self.stats,
                ) {
                    Plan::IndexScan { index, access, .. } => {
                        let idx = self.btree_index(&index)?;
                        let mut ids = match &access {
                            IndexAccess::Exact(values) => {
                                if values.len() == idx.key_columns().len() {
                                    idx.lookup(values)
                                } else {
                                    idx.lookup_prefix(values)
                                }
                            }
                            IndexAccess::Range {
                                prefix,
                                lower,
                                upper,
                            } => idx.range(prefix, bound_as_ref(lower), bound_as_ref(upper)),
                        };
                        ids.sort();
                        ids
                    }
                    Plan::KeywordScan { index, keyword, .. } => {
                        let idx = self.keyword_index(&index)?;
                        let mut ids = idx.lookup(&keyword);
                        ids.sort();
                        ids
                    }
                    _ => t.scan().map(|(id, _)| id).collect(),
                }
            }
            None => t.scan().map(|(id, _)| id).collect(),
        };
        // The full filter is re-checked on every candidate (index access
        // only covers the sargable prefix).
        let mut ids = Vec::with_capacity(candidates.len());
        for id in candidates {
            let Some(row) = t.get(id) else { continue };
            let keep = match filter {
                Some(f) => eval_predicate(f, &schema, &row)?,
                None => true,
            };
            if keep {
                ids.push(id);
            }
        }
        Ok(ids)
    }

    /// Whether `name` is a materialized view's backing table.
    pub fn is_view(&self, name: &str) -> bool {
        self.views.contains_key(&key(name))
    }

    /// Whether any materialized view reads `table` — the signal DML paths
    /// use to decide whether capturing delta events is worth the clones.
    fn views_watch(&self, table: &str) -> bool {
        let k = key(table);
        self.views
            .values()
            .any(|rt| rt.source_tables().any(|s| s == k))
    }

    /// Names of materialized views that read `table`.
    fn view_dependents(&self, table: &str) -> Vec<String> {
        let k = key(table);
        self.views
            .iter()
            .filter(|(_, rt)| rt.source_tables().any(|s| s == k))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Registers a materialized view from its durable definition: parses
    /// and re-analyzes the `SELECT` against the current catalog and
    /// creates the (empty) backing table. Contents are derived state —
    /// recovery full-builds every view after replay finishes.
    fn install_view(
        &mut self,
        name: &str,
        refresh_on_commit: bool,
        select_sql: &str,
    ) -> RelResult<()> {
        let Statement::Select(query) = parse_statement(select_sql)? else {
            return Err(RelError::Wal(format!(
                "view {name:?} definition is not a SELECT"
            )));
        };
        let (analysis, backing) = view::analyze_view(name, &query, &self.catalog)?;
        self.create_table(backing)?;
        let state = view::empty_state(&analysis);
        self.views.insert(
            key(name),
            ViewRuntime {
                def: ViewDef {
                    name: name.to_string(),
                    refresh_on_commit,
                    select_sql: select_sql.to_string(),
                },
                analysis,
                state: Arc::new(state),
                pending: Arc::new(Vec::new()),
                overflowed: false,
                last_refresh_csn: 0,
                incremental_refreshes: 0,
                fallback_refreshes: 0,
            },
        );
        Ok(())
    }

    /// From-scratch rebuild of one view's contents and state (creation,
    /// `REFRESH ... FULL`, overflow fallback, recovery). The backing
    /// table is replaced wholesale; `stamp` becomes the new rows' CSN.
    fn rebuild_view(&mut self, name: &str, stamp: u64) -> RelResult<()> {
        let k = key(name);
        let mut rt = self
            .views
            .remove(&k)
            .ok_or_else(|| RelError::Internal(format!("view {name:?} not registered")))?;
        let schema = self
            .catalog
            .table(name)
            .expect("view backing schema")
            .clone();
        let mut fresh = Table::new(schema);
        fresh.set_stamp(stamp);
        let result = view::full_build(&rt.analysis, &self.tables, &mut fresh);
        match result {
            Ok(state) => {
                rt.state = Arc::new(state);
                let rows = fresh.len() as u64;
                self.tables.insert(k.clone(), fresh);
                if let Some(s) = self.stats.existing_mut(&k) {
                    s.row_count = rows;
                }
                self.views.insert(k, rt);
                Ok(())
            }
            Err(e) => {
                // Leave the previous table and runtime in place.
                self.views.insert(k, rt);
                Err(e)
            }
        }
    }
}

/// Applies one committed batch of delta events to every affected view,
/// appending [`UndoOp::RestoreView`] entries so both failure paths —
/// maintenance error here, flush failure later — restore the views along
/// with the base tables. `csn` is the committing transaction's CSN.
fn maintain_views(
    storage: &mut Storage,
    deltas: &[DeltaEvent],
    csn: u64,
    undo: &mut Vec<UndoOp>,
) -> RelResult<()> {
    let affected: Vec<String> = storage
        .views
        .iter()
        .filter(|(_, rt)| rt.affected_by(deltas))
        .map(|(n, _)| n.clone())
        .collect();
    for name in affected {
        let mut rt = storage.views.remove(&name).expect("listed above");
        if rt.def.refresh_on_commit {
            let mut vt = storage
                .tables
                .remove(&name)
                .expect("view backing table exists");
            undo.push(UndoOp::RestoreView {
                name: name.clone(),
                table: Box::new(vt.clone()),
                runtime: Box::new(rt.clone()),
            });
            vt.set_stamp(csn);
            let res = view::apply_deltas(&mut rt, &mut vt, &storage.tables, deltas);
            let rows = vt.len() as u64;
            // Reinsert before surfacing any error so the caller's
            // rollback finds the entries to restore over.
            storage.tables.insert(name.clone(), vt);
            if let Some(s) = storage.stats.existing_mut(&name) {
                s.row_count = rows;
            }
            rt.last_refresh_csn = csn;
            rt.incremental_refreshes += 1;
            storage.views.insert(name, rt);
            res?;
        } else {
            undo.push(UndoOp::RestoreView {
                name: name.clone(),
                table: Box::new(storage.tables.get(&name).expect("view table").clone()),
                runtime: Box::new(rt.clone()),
            });
            let relevant: Vec<DeltaEvent> = deltas
                .iter()
                .filter(|d: &&DeltaEvent| rt.affected_by(std::slice::from_ref(*d)))
                .cloned()
                .collect();
            if !rt.overflowed {
                let pending = Arc::make_mut(&mut rt.pending);
                if pending.len() + relevant.len() > VIEW_DELTA_LOG_CAP {
                    // Bounded log: beyond the cap the deltas are dropped
                    // and the next REFRESH falls back to a full rebuild.
                    pending.clear();
                    rt.overflowed = true;
                } else {
                    pending.extend(relevant);
                }
            }
            storage.views.insert(name, rt);
        }
    }
    Ok(())
}

/// Shapes executor output into a [`ResultSet`], dropping the hidden
/// sort-key columns the planner appended after the first `visible` items.
fn select_result(visible: usize, schema: &RowSchema, rows: Vec<Row>) -> ResultSet {
    let columns: Vec<String> = schema
        .columns()
        .iter()
        .take(visible)
        .map(|b| b.name.clone())
        .collect();
    let rows = rows
        .into_iter()
        .map(|mut r| {
            r.truncate(visible);
            r
        })
        .collect();
    ResultSet::query(columns, rows)
}

/// The result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Row>,
    affected: usize,
}

impl ResultSet {
    fn query(columns: Vec<String>, rows: Vec<Row>) -> Self {
        ResultSet {
            columns,
            rows,
            affected: 0,
        }
    }

    fn dml(affected: usize) -> Self {
        ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
            affected,
        }
    }

    /// Wraps rendered plan text as a one-column result set (one row per
    /// line), the shape `EXPLAIN [ANALYZE]` statements return.
    fn plan_text(text: &str) -> Self {
        ResultSet {
            columns: vec!["plan".to_string()],
            rows: text
                .lines()
                .map(|l| vec![Value::Text(l.to_string())])
                .collect(),
            affected: 0,
        }
    }

    /// Builds a query-shaped result set from column names and rows, for
    /// adapters that synthesize results outside the executor.
    pub fn from_parts(columns: Vec<String>, rows: Vec<Row>) -> ResultSet {
        ResultSet {
            columns,
            rows,
            affected: 0,
        }
    }

    /// Output column names (empty for DML/DDL).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Result rows (empty for DML/DDL).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows affected by DML (0 for queries).
    pub fn affected(&self) -> usize {
        self.affected
    }

    /// Consumes the result set into its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Renders the result as an ASCII table — the "simple table format"
    /// result view of the paper's Figure 7(b).
    pub fn to_table(&self) -> String {
        if self.columns.is_empty() {
            return format!("({} rows affected)\n", self.affected);
        }
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!("({} rows)\n", self.rows.len()));
        out
    }
}

/// The structured output of `EXPLAIN ANALYZE`: the per-operator profile
/// tree, the executor counters, the measured total execution time, and
/// the query's actual results (an analyzed query really runs).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedQuery {
    /// Per-operator rows/time profile, mirroring the plan tree.
    pub profile: OpProfile,
    /// Executor counters for the run.
    pub stats: ExecStats,
    /// Total execution wall-time in nanoseconds (root pull loop,
    /// excluding parse/plan time).
    pub total_ns: u64,
    /// The rows the query produced.
    pub result: ResultSet,
}

impl AnalyzedQuery {
    /// Renders the annotated plan tree plus a summary footer.
    pub fn render(&self) -> String {
        format!(
            "{}(total: {}, rows scanned: {}, rows emitted: {}, buffered peak: {}, \
             index probes: {}, keyword postings read: {}, segments pruned: {})\n",
            self.profile.render(),
            format_ns(self.total_ns),
            self.stats.rows_scanned,
            self.stats.rows_emitted,
            self.stats.buffered_peak,
            self.stats.index_probes,
            self.stats.keyword_postings_read,
            self.stats.segments_pruned,
        )
    }
}

/// Shared state of the group-commit queue, guarded by
/// [`Durability::queue`].
struct CommitQueue {
    /// Framed `Begin .. Commit` bytes enqueued and awaiting flush.
    buf: Vec<u8>,
    /// Highest CSN whose frames have been enqueued (or already flushed).
    queued_csn: u64,
    /// Highest CSN known durable on disk.
    durable_csn: u64,
    /// Whether a flush leader is currently at the disk.
    flushing: bool,
    /// Sticky failure: once a flush or rotation fails, every later commit
    /// is refused with this message until the database is reopened.
    poisoned: Option<String>,
    /// Copy-on-write snapshot covering everything up to `queued_csn`,
    /// published to readers only once its covering flush succeeds — so
    /// readers never see state the log does not have.
    pending_snapshot: Option<Arc<Storage>>,
    /// Next transaction id to hand out.
    next_tx: u64,
    /// Bytes written to the active log since open/rotation (the
    /// `relstore.wal.bytes` gauge).
    log_bytes: u64,
    /// Trace contexts of the committers whose frames sit in `buf`. The
    /// flush leader takes them with the buffer and attaches one
    /// `relstore.wal.group_commit` span to each — which is how a commit
    /// flushed by *another session's* thread still shows up in its own
    /// request's trace tree.
    waiting_traces: Vec<trace::TraceCtx>,
}

/// Durable-mode machinery: the log plus the group-commit queue.
///
/// Lock order: the flush leader never holds the queue lock while taking
/// the wal lock (it drops one before the other); [`Database::checkpoint`]
/// nests queue → wal, which is safe because nothing nests wal → queue.
struct Durability {
    wal: Mutex<Wal>,
    queue: Mutex<CommitQueue>,
    cond: Condvar,
}

/// `Condvar::wait` with lock-poisoning flattened away (the engine holds
/// no invariants that a panicking peer could have broken mid-update).
fn cond_wait<'a, T>(cond: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cond.wait(guard).unwrap_or_else(|e| e.into_inner())
}

fn poison_error(msg: &str) -> RelError {
    RelError::Wal(format!(
        "database poisoned by an earlier I/O failure (reopen to recover): {msg}"
    ))
}

/// Tuning knobs for a [`Database`].
#[derive(Debug, Clone)]
pub struct DatabaseOptions {
    /// Total workers available to parallel-eligible `SELECT` plans (the
    /// calling thread counts as one; `1` disables parallel execution).
    /// Defaults to the `XOMATIQ_WORKERS` environment variable if set,
    /// else the machine's available parallelism capped at 8.
    pub workers: usize,
    /// Rows per morsel handed to a worker by the parallel executor.
    pub morsel_size: usize,
    /// Maximum number of cached `SELECT` plans (`0` disables the cache).
    pub plan_cache_capacity: usize,
    /// Whether scans may skip segments via zone maps. On by default;
    /// benches disable it to measure the unpruned baseline.
    pub zone_map_pruning: bool,
    /// Statements at or above this latency are flagged slow in the
    /// flight recorder and re-profiled against their own snapshot to
    /// capture a per-operator profile (`sys_profiles`). The default
    /// (`u64::MAX`) keeps recording on but never triggers the profile
    /// capture, so the hot path pays nothing for it.
    pub slow_query_ns: u64,
    /// Recent-query records the flight recorder retains (`0` disables
    /// recording entirely; the default keeps the last 512).
    pub flight_recorder_capacity: usize,
}

impl Default for DatabaseOptions {
    fn default() -> DatabaseOptions {
        let workers = std::env::var("XOMATIQ_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get().min(8))
                    .unwrap_or(1)
            })
            .max(1);
        DatabaseOptions {
            workers,
            morsel_size: 1024,
            plan_cache_capacity: 128,
            zone_map_pruning: true,
            slow_query_ns: u64::MAX,
            flight_recorder_capacity: 512,
        }
    }
}

struct MaintenanceTask {
    stop: Arc<StopSignal>,
    handle: std::thread::JoinHandle<()>,
}

/// Registry entry for one live [`crate::Session`] (the `sys_sessions`
/// virtual table's backing state).
#[derive(Debug, Clone)]
pub(crate) struct SessionInfo {
    pub(crate) workers: Option<usize>,
    pub(crate) prepared: usize,
    pub(crate) queries: u64,
    pub(crate) started: Instant,
}

/// One `sys_sessions` row, flattened out of the registry.
pub(crate) struct SessionInfoSnapshot {
    pub(crate) session_id: u64,
    pub(crate) workers: Option<usize>,
    pub(crate) prepared: usize,
    pub(crate) queries: u64,
    pub(crate) uptime_ns: u64,
}

/// An embedded relational database.
pub struct Database {
    pub(crate) storage: RwLock<Storage>,
    /// The latest committed-and-durable state, served to readers without
    /// touching the storage write lock.
    snapshot: Mutex<Arc<Storage>>,
    durability: Option<Durability>,
    pub(crate) options: DatabaseOptions,
    pub(crate) pool: WorkerPool,
    pub(crate) plan_cache: Mutex<PlanCache>,
    maintenance: Mutex<Option<MaintenanceTask>>,
    /// Recent-query ring buffer (the `sys_queries` backing store).
    recorder: FlightRecorder,
    /// System virtual tables (builtins plus registered providers).
    vtabs: RwLock<VirtualTables>,
    /// Live sessions keyed by session id.
    sessions: Mutex<BTreeMap<u64, SessionInfo>>,
    next_session_id: std::sync::atomic::AtomicU64,
}

impl Database {
    fn assemble(
        mut storage: Storage,
        durability: Option<Durability>,
        options: DatabaseOptions,
    ) -> Database {
        storage.zone_map_pruning = options.zone_map_pruning;
        let pool = WorkerPool::new(options.workers);
        let plan_cache = Mutex::new(PlanCache::new(options.plan_cache_capacity));
        let snapshot = Mutex::new(Arc::new(storage.clone()));
        let recorder = FlightRecorder::new(options.flight_recorder_capacity, options.slow_query_ns);
        Database {
            storage: RwLock::new(storage),
            snapshot,
            durability,
            options,
            pool,
            plan_cache,
            maintenance: Mutex::new(None),
            recorder,
            vtabs: RwLock::new(VirtualTables::builtin()),
            sessions: Mutex::new(BTreeMap::new()),
            next_session_id: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Creates a volatile database (no durability).
    pub fn in_memory() -> Database {
        Database::in_memory_with_options(DatabaseOptions::default())
    }

    /// Creates a volatile database with explicit [`DatabaseOptions`].
    pub fn in_memory_with_options(options: DatabaseOptions) -> Database {
        Database::assemble(Storage::default(), None, options)
    }

    /// The options this database was built with.
    pub fn options(&self) -> &DatabaseOptions {
        &self.options
    }

    /// The slow-query flight recorder (see [`crate::recorder`]).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Registers (or replaces, by name) a system virtual table. The
    /// provider's name must start with `sys_`; it becomes queryable
    /// through the ordinary `db.query(...)` path immediately.
    pub fn register_virtual_table(&self, provider: Box<dyn VirtualTableProvider>) -> RelResult<()> {
        if !provider.name().to_ascii_lowercase().starts_with(SYS_PREFIX) {
            return Err(RelError::Internal(format!(
                "virtual table {:?} must use the {SYS_PREFIX:?} name prefix",
                provider.name()
            )));
        }
        self.vtabs.write().register(provider);
        Ok(())
    }

    /// Whether `name` resolves to a system virtual table (or reserves the
    /// `sys_` prefix without one registered — writes are refused either
    /// way, so the namespace stays free for future builtins).
    pub fn is_system_table(&self, name: &str) -> bool {
        name.to_ascii_lowercase().starts_with(SYS_PREFIX)
    }

    fn reject_system_write(&self, name: &str, action: &str) -> RelResult<()> {
        if self.is_system_table(name) {
            return Err(RelError::ReadOnly(format!(
                "cannot {action} {name:?}: the sys_ prefix is reserved for \
                 read-only system tables"
            )));
        }
        Ok(())
    }

    /// The storage a `SELECT` should run against: `base` itself unless
    /// the statement references system virtual tables, in which case a
    /// copy-on-write overlay with those tables materialized (snapshot
    /// semantics: telemetry is captured here, once, for the whole query).
    pub(crate) fn storage_for_select(
        &self,
        base: &Arc<Storage>,
        select: &SelectStmt,
    ) -> RelResult<Arc<Storage>> {
        let vtabs = self.vtabs.read();
        let referenced = vtabs.referenced(select);
        if referenced.is_empty() {
            return Ok(Arc::clone(base));
        }
        let tables: Vec<(TableSchema, Vec<Row>)> = referenced
            .iter()
            .map(|p| (p.schema(), p.rows(self)))
            .collect();
        drop(vtabs);
        Ok(Arc::new(base.overlay_virtual(tables)?))
    }

    // --- session registry (the `sys_sessions` backing store) ---

    pub(crate) fn register_session(&self) -> u64 {
        let id = self
            .next_session_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.sessions.lock().insert(
            id,
            SessionInfo {
                workers: None,
                prepared: 0,
                queries: 0,
                started: Instant::now(),
            },
        );
        id
    }

    pub(crate) fn unregister_session(&self, id: u64) {
        self.sessions.lock().remove(&id);
    }

    pub(crate) fn update_session(&self, id: u64, f: impl FnOnce(&mut SessionInfo)) {
        if let Some(info) = self.sessions.lock().get_mut(&id) {
            f(info);
        }
    }

    pub(crate) fn session_infos(&self) -> Vec<SessionInfoSnapshot> {
        self.sessions
            .lock()
            .iter()
            .map(|(id, info)| SessionInfoSnapshot {
                session_id: *id,
                workers: info.workers,
                prepared: info.prepared,
                queries: info.queries,
                uptime_ns: u64::try_from(info.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            })
            .collect()
    }

    /// The snapshot queries run against: the state as of the last durable
    /// (or, in memory-only mode, last applied) commit.
    pub(crate) fn snapshot(&self) -> Arc<Storage> {
        Arc::clone(&self.snapshot.lock())
    }

    fn publish(&self, snap: Arc<Storage>) {
        *self.snapshot.lock() = snap;
    }

    /// Toggles zone-map segment pruning at runtime (bench A/B runs).
    /// Disabling it only stops scans from *skipping* segments; the
    /// vectorized kernels still evaluate pushed-down conjuncts.
    pub fn set_zone_map_pruning(&self, enabled: bool) {
        let mut storage = self.storage.write();
        storage.zone_map_pruning = enabled;
        if let Some(d) = &self.durability {
            let mut q = d.queue.lock();
            if let Some(snap) = &mut q.pending_snapshot {
                Arc::make_mut(snap).zone_map_pruning = enabled;
            }
        }
        // Flip the flag on the published snapshot in place rather than
        // republishing the master state, which may hold commits that are
        // applied but not yet durable.
        let mut snap = self.snapshot.lock();
        Arc::make_mut(&mut snap).zone_map_pruning = enabled;
    }

    /// Opens a durable database whose write-ahead log lives at `path`,
    /// replaying any committed history found there.
    pub fn open(path: &Path) -> RelResult<Database> {
        Database::open_with_report(path).map(|(db, _)| db)
    }

    /// Like [`Database::open`], but also returns the [`RecoveryReport`]
    /// describing what replay found: the checkpoint restored, transactions
    /// applied or skipped, and any corruption truncated off the tail.
    pub fn open_with_report(path: &Path) -> RelResult<(Database, RecoveryReport)> {
        Database::from_wal(Wal::open(path)?)
    }

    /// Opens a durable database over an arbitrary [`WalIo`] backend —
    /// the entry point for fault-injection tests.
    pub fn open_with_io(io: Box<dyn WalIo>) -> RelResult<(Database, RecoveryReport)> {
        Database::from_wal(Wal::with_io(io))
    }

    fn from_wal(mut wal: Wal) -> RelResult<(Database, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let mut storage = Storage::default();

        // Phase 1: restore the checkpoint image, if one exists and is
        // whole. Any damage — unreadable, torn (missing its trailing
        // marker), undecodable — falls back to replaying the log from
        // scratch; the image is an accelerator, never the only copy of
        // anything the active log still has.
        match wal.get_side() {
            Ok(Some(image)) => match load_checkpoint_image(&image) {
                Ok((loaded, k)) => {
                    storage = loaded;
                    report.checkpoint_csn = k;
                }
                Err(e) => report.replay_errors.push(format!(
                    "checkpoint image unusable ({e}); falling back to full log replay"
                )),
            },
            Ok(None) => {}
            Err(e) => report.replay_errors.push(format!(
                "checkpoint image unreadable ({e}); falling back to full log replay"
            )),
        }
        let base = report.checkpoint_csn;

        // Phase 2: scan the active log and replay the tail past `base`.
        let scan = wal.recover()?;
        report.records_scanned = scan.records.len();
        report.corruption = scan.corruption.clone();
        report.truncated_bytes = scan.total_len - scan.valid_len;
        let log_was_empty = scan.records.is_empty();
        let mut log_bytes = scan.valid_len;

        let mut max_tx = 0u64;
        // Buffer DML per transaction; apply at Commit, strictly in log
        // (= commit) order, so interleaved transactions replay exactly as
        // they were acknowledged. DDL is autocommitted (it is only ever
        // logged outside an open transaction).
        let mut open_txns: BTreeMap<u64, Vec<WalRecord>> = BTreeMap::new();
        // Position in the commit sequence. A rotated log leads with a
        // Checkpoint marker and counts from its CSN; an unrotated log
        // (crash between writing the image and rotating) counts from
        // zero, and every commit at or below `base` is already inside
        // the image — skipped, never re-applied.
        let mut replay_csn = 0u64;
        fn covered(replay_csn: u64, base: u64, report: &mut RecoveryReport) -> bool {
            let skip = replay_csn <= base;
            if skip {
                report.transactions_skipped += 1;
            }
            skip
        }
        for (i, record) in scan.records.into_iter().enumerate() {
            match record {
                WalRecord::Checkpoint { csn } => {
                    if i == 0 {
                        replay_csn = csn;
                    } else {
                        report.replay_errors.push(format!(
                            "stray mid-log checkpoint marker (csn {csn}) ignored"
                        ));
                    }
                }
                WalRecord::Begin { tx } => {
                    max_tx = max_tx.max(tx);
                    if open_txns.insert(tx, Vec::new()).is_some() {
                        report.replay_errors.push(format!(
                            "transaction {tx} restarted by a second Begin; \
                             earlier uncommitted operations discarded"
                        ));
                    }
                }
                WalRecord::Commit { tx } => {
                    replay_csn += 1;
                    match open_txns.remove(&tx) {
                        Some(ops) => {
                            if !covered(replay_csn, base, &mut report) {
                                match apply_txn(&mut storage, &ops) {
                                    Ok(()) => {
                                        storage.csn = replay_csn;
                                        report.transactions_applied += 1;
                                    }
                                    Err(e) => {
                                        report.transactions_dropped.push(tx);
                                        report
                                            .replay_errors
                                            .push(format!("transaction {tx} dropped: {e}"));
                                    }
                                }
                            }
                        }
                        None => report
                            .replay_errors
                            .push(format!("Commit for unknown transaction {tx} ignored")),
                    }
                }
                WalRecord::CreateTable { schema } => {
                    replay_csn += 1;
                    if !covered(replay_csn, base, &mut report) {
                        if let Err(e) = storage.create_table(schema) {
                            report.replay_errors.push(format!("CREATE TABLE: {e}"));
                        }
                    }
                }
                WalRecord::DropTable { name } => {
                    replay_csn += 1;
                    if !covered(replay_csn, base, &mut report) {
                        if let Err(e) = storage.drop_table(&name) {
                            report.replay_errors.push(format!("DROP TABLE: {e}"));
                        }
                    }
                }
                WalRecord::CreateIndex { def } => {
                    replay_csn += 1;
                    if !covered(replay_csn, base, &mut report) {
                        if let Err(e) = storage.create_index(def) {
                            report.replay_errors.push(format!("CREATE INDEX: {e}"));
                        }
                    }
                }
                WalRecord::DropIndex { name } => {
                    replay_csn += 1;
                    if !covered(replay_csn, base, &mut report) {
                        if let Err(e) = storage.drop_index(&name) {
                            report.replay_errors.push(format!("DROP INDEX: {e}"));
                        }
                    }
                }
                WalRecord::CreateView {
                    name,
                    refresh_on_commit,
                    select_sql,
                } => {
                    replay_csn += 1;
                    if !covered(replay_csn, base, &mut report) {
                        // Registers the definition and an empty backing
                        // table; contents are rebuilt after replay.
                        if let Err(e) = storage.install_view(&name, refresh_on_commit, &select_sql)
                        {
                            report
                                .replay_errors
                                .push(format!("CREATE MATERIALIZED VIEW: {e}"));
                        }
                    }
                }
                WalRecord::DropView { name } => {
                    replay_csn += 1;
                    if !covered(replay_csn, base, &mut report) {
                        storage.views.remove(&key(&name));
                        if let Err(e) = storage.drop_table(&name) {
                            report
                                .replay_errors
                                .push(format!("DROP MATERIALIZED VIEW: {e}"));
                        }
                    }
                }
                dml @ (WalRecord::Insert { .. }
                | WalRecord::Delete { .. }
                | WalRecord::Update { .. }) => {
                    let tx = match &dml {
                        WalRecord::Insert { tx, .. }
                        | WalRecord::Delete { tx, .. }
                        | WalRecord::Update { tx, .. } => *tx,
                        _ => unreachable!(),
                    };
                    match open_txns.get_mut(&tx) {
                        Some(ops) => ops.push(dml),
                        // An op without a Begin comes from a compacted
                        // snapshot; apply directly.
                        None => {
                            let mut throwaway = Vec::new();
                            if let Err(e) = apply_dml(&mut storage, &dml, &mut throwaway) {
                                report
                                    .replay_errors
                                    .push(format!("snapshot record unapplicable: {e}"));
                            }
                        }
                    }
                }
            }
        }
        // Whatever is still open never committed: the crash tail.
        for tx in open_txns.into_keys() {
            report.transactions_dropped.push(tx);
        }
        report.transactions_dropped.sort_unstable();
        storage.csn = storage.csn.max(base).max(replay_csn);

        // View contents are derived state: the log records definitions
        // only, never view-table DML, so every view is full-built here
        // against the recovered base tables — an implicit full refresh.
        // A deferred view's un-drained pending delta log does not survive
        // a restart (the rebuild subsumes it).
        let view_names: Vec<String> = storage.views.keys().cloned().collect();
        for name in view_names {
            match storage.rebuild_view(&name, storage.csn) {
                Ok(()) => {
                    let rt = storage.views.get_mut(&name).expect("just rebuilt");
                    rt.last_refresh_csn = storage.csn;
                    rt.fallback_refreshes += 1;
                }
                Err(e) => {
                    // A view whose bases did not survive replay (damaged
                    // log) is dropped rather than left lying.
                    storage.views.remove(&name);
                    let _ = storage.drop_table(&name);
                    report
                        .replay_errors
                        .push(format!("materialized view {name:?} dropped: {e}"));
                }
            }
        }

        // Statistics are memory-only and never logged: re-derive exact row
        // counts from the restored tables (checkpoint images and replayed
        // snapshot records bypass the counting mutation paths). Column
        // statistics wait for the next ANALYZE.
        let table_names: Vec<String> = storage.catalog.tables().map(|s| s.name.clone()).collect();
        for name in table_names {
            let rows = storage.table(&name).map(|t| t.len() as u64).unwrap_or(0);
            let entry = storage.stats.table_mut(&name);
            entry.row_count = rows;
            entry.churn = 0;
        }

        // A crash after rotation but before the fresh log's leading
        // marker leaves an empty, markerless log beside a valid image.
        // Repair by writing the marker now — otherwise the next recovery
        // would count this log's commits from zero and wrongly skip them
        // as image-covered.
        if base > 0 && log_was_empty {
            wal.append(&WalRecord::Checkpoint { csn: base });
            wal.sync()?;
            let mut marker = Vec::new();
            frame_into(&mut marker, &WalRecord::Checkpoint { csn: base });
            log_bytes = marker.len() as u64;
        }

        metrics::observe_recovery(&report);
        metrics::engine()
            .wal_bytes
            .set(i64::try_from(log_bytes).unwrap_or(i64::MAX));
        let durability = Durability {
            wal: Mutex::new(wal),
            queue: Mutex::new(CommitQueue {
                buf: Vec::new(),
                queued_csn: storage.csn,
                durable_csn: storage.csn,
                flushing: false,
                poisoned: None,
                pending_snapshot: None,
                next_tx: max_tx + 1,
                log_bytes,
                waiting_traces: Vec::new(),
            }),
            cond: Condvar::new(),
        };
        Ok((
            Database::assemble(storage, Some(durability), DatabaseOptions::default()),
            report,
        ))
    }

    /// Parses and executes one SQL statement.
    #[deprecated(note = "use `db.query(sql).run()` (the `Query` builder)")]
    pub fn execute(&self, sql: &str) -> RelResult<ResultSet> {
        Ok(self.query(sql).run()?.rows)
    }

    /// Executes a pre-parsed statement.
    pub fn execute_statement(&self, stmt: Statement) -> RelResult<ResultSet> {
        match stmt {
            Statement::Select(select) => {
                let (rs, _) = self.run_select(&select)?;
                Ok(rs)
            }
            Statement::Explain { analyze, inner } => {
                let Statement::Select(select) = *inner else {
                    return Err(RelError::Parse("EXPLAIN supports SELECT only".into()));
                };
                let text = if analyze {
                    let snap = self.storage_for_select(&self.snapshot(), &select)?;
                    self.analyze_select(&snap, &select)?.render()
                } else {
                    self.explain_select(&select)?
                };
                Ok(ResultSet::plan_text(&text))
            }
            Statement::CreateTable { name, columns } => {
                self.reject_system_write(&name, "create table")?;
                let schema = TableSchema::new(
                    &name,
                    columns
                        .into_iter()
                        .map(|(n, ty)| Column { name: n, ty })
                        .collect(),
                );
                let mut storage = self.storage.write();
                storage.create_table(schema.clone())?;
                self.plan_cache.lock().clear();
                self.finish_ddl(storage, WalRecord::CreateTable { schema })
            }
            Statement::DropTable { name } => {
                self.reject_system_write(&name, "drop table")?;
                let mut storage = self.storage.write();
                if storage.is_view(&name) {
                    return Err(RelError::Eval(format!(
                        "{name:?} is a materialized view: use DROP MATERIALIZED VIEW"
                    )));
                }
                let dependents = storage.view_dependents(&name);
                if !dependents.is_empty() {
                    return Err(RelError::Eval(format!(
                        "cannot drop table {name:?}: materialized view(s) {dependents:?} \
                         read it (drop them first)"
                    )));
                }
                storage.drop_table(&name)?;
                self.plan_cache.lock().clear();
                self.finish_ddl(storage, WalRecord::DropTable { name })
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                keyword,
            } => {
                self.reject_system_write(&table, "index")?;
                let def = IndexDef {
                    name,
                    table,
                    columns,
                    keyword,
                };
                let mut storage = self.storage.write();
                if storage.is_view(&def.table) {
                    // View maintenance writes the backing table directly,
                    // bypassing the index-update hooks — an index would
                    // silently go stale.
                    return Err(RelError::Eval(format!(
                        "cannot index materialized view {:?}: view scans already read \
                         the materialized segments",
                        def.table
                    )));
                }
                storage.create_index(def.clone())?;
                self.plan_cache.lock().clear();
                self.finish_ddl(storage, WalRecord::CreateIndex { def })
            }
            Statement::DropIndex { name } => {
                let mut storage = self.storage.write();
                storage.drop_index(&name)?;
                self.plan_cache.lock().clear();
                self.finish_ddl(storage, WalRecord::DropIndex { name })
            }
            stmt @ (Statement::Insert { .. }
            | Statement::Delete { .. }
            | Statement::Update { .. }) => {
                let target = match &stmt {
                    Statement::Insert { table, .. }
                    | Statement::Delete { table, .. }
                    | Statement::Update { table, .. } => table,
                    _ => unreachable!(),
                };
                self.reject_system_write(target, "modify")?;
                self.execute_dml(stmt)
            }
            Statement::Analyze { table } => self.execute_analyze(table.as_deref()),
            Statement::CreateMaterializedView {
                name,
                refresh_on_commit,
                query,
            } => self.execute_create_view(&name, refresh_on_commit, query),
            Statement::DropMaterializedView { name } => {
                let mut storage = self.storage.write();
                if !storage.views.contains_key(&key(&name)) {
                    return Err(if storage.catalog.has_table(&name) {
                        RelError::Eval(format!("{name:?} is a table, not a materialized view"))
                    } else {
                        RelError::UnknownTable(name.clone())
                    });
                }
                storage.views.remove(&key(&name));
                storage.drop_table(&name)?;
                self.plan_cache.lock().clear();
                self.finish_ddl(storage, WalRecord::DropView { name })
            }
            Statement::RefreshMaterializedView { name, full } => {
                self.execute_refresh_view(&name, full)
            }
        }
    }

    /// `CREATE MATERIALIZED VIEW`: validates and analyzes the definition,
    /// materializes the initial contents, registers the maintenance
    /// runtime, and logs the definition (contents are derived state and
    /// are never logged — recovery rebuilds them from the base tables).
    fn execute_create_view(
        &self,
        name: &str,
        refresh_on_commit: bool,
        query: SelectStmt,
    ) -> RelResult<ResultSet> {
        self.reject_system_write(name, "create materialized view")?;
        let select_sql = view::render_select(&query)?;
        let mut storage = self.storage.write();
        for src in query
            .from
            .iter()
            .chain(query.joins.iter().map(|j| &j.table))
        {
            if storage.is_view(&src.table) {
                return Err(RelError::Eval(format!(
                    "materialized view {name:?} cannot read materialized view {:?} \
                     (views over views are not supported)",
                    src.table
                )));
            }
        }
        let (analysis, backing) = view::analyze_view(name, &query, &storage.catalog)?;
        storage.create_table(backing)?; // rejects name collisions
        let state = view::empty_state(&analysis);
        storage.views.insert(
            key(name),
            ViewRuntime {
                def: ViewDef {
                    name: name.to_string(),
                    refresh_on_commit,
                    select_sql: select_sql.clone(),
                },
                analysis,
                state: Arc::new(state),
                pending: Arc::new(Vec::new()),
                overflowed: false,
                last_refresh_csn: 0,
                incremental_refreshes: 0,
                fallback_refreshes: 0,
            },
        );
        let csn = storage.csn + 1;
        if let Err(e) = storage.rebuild_view(name, csn) {
            storage.views.remove(&key(name));
            let _ = storage.drop_table(name);
            return Err(e);
        }
        if let Some(rt) = storage.views.get_mut(&key(name)) {
            rt.last_refresh_csn = csn;
        }
        self.plan_cache.lock().clear();
        self.finish_ddl(
            storage,
            WalRecord::CreateView {
                name: name.to_string(),
                refresh_on_commit,
                select_sql,
            },
        )
    }

    /// `REFRESH MATERIALIZED VIEW [FULL]`: drains a deferred view's
    /// pending delta log through the maintenance pipeline — or, with
    /// `FULL` (or after the log overflowed), recomputes from scratch.
    ///
    /// Like `ANALYZE`, a refresh takes no CSN and writes no WAL: view
    /// contents are derived state, reconstructible from the definition.
    /// Publication follows the same pattern — patch the pending and
    /// published snapshots in place rather than republishing the master
    /// state, which may hold applied-but-not-yet-durable commits.
    fn execute_refresh_view(&self, name: &str, full: bool) -> RelResult<ResultSet> {
        let mut storage = self.storage.write();
        let k = key(name);
        let Some(rt0) = storage.views.get(&k) else {
            return Err(if storage.catalog.has_table(name) {
                RelError::Eval(format!("{name:?} is a table, not a materialized view"))
            } else {
                RelError::UnknownTable(name.to_string())
            });
        };
        let full_recompute = full || rt0.overflowed;
        let pending_rows = rt0.pending.len();
        if !full_recompute && pending_rows == 0 {
            return Ok(ResultSet::dml(0)); // nothing to drain
        }
        let csn = storage.csn;
        let affected;
        if full_recompute {
            storage.rebuild_view(name, csn)?;
            let rt = storage.views.get_mut(&k).expect("just rebuilt");
            rt.pending = Arc::new(Vec::new());
            rt.overflowed = false;
            rt.fallback_refreshes += 1;
            rt.last_refresh_csn = csn;
            affected = storage.table(name)?.len();
        } else {
            let mut rt = storage.views.remove(&k).expect("checked above");
            let mut vt = storage.tables.remove(&k).expect("view backing table");
            // Keep pre-drain clones so a maintenance error (e.g. an
            // evaluation error in a pending row) leaves the view intact.
            let vt_before = vt.clone();
            let rt_before = rt.clone();
            vt.set_stamp(csn);
            let pending = Arc::clone(&rt.pending);
            let res = view::apply_deltas(&mut rt, &mut vt, &storage.tables, &pending);
            match res {
                Ok(()) => {
                    rt.pending = Arc::new(Vec::new());
                    rt.incremental_refreshes += 1;
                    rt.last_refresh_csn = csn;
                    let rows = vt.len() as u64;
                    storage.tables.insert(k.clone(), vt);
                    if let Some(s) = storage.stats.existing_mut(&k) {
                        s.row_count = rows;
                    }
                    storage.views.insert(k.clone(), rt);
                }
                Err(e) => {
                    storage.tables.insert(k.clone(), vt_before);
                    storage.views.insert(k.clone(), rt_before);
                    return Err(e);
                }
            }
            affected = pending_rows;
        }
        // Publish the refreshed view to readers without a CSN, exactly
        // like ANALYZE publishes fresh statistics.
        let new_table = storage.tables.get(&k).expect("view table").clone();
        let new_rt = storage.views.get(&k).expect("view runtime").clone();
        let new_stats = storage.stats.clone();
        let patch = |snap: &mut Arc<Storage>| {
            let s = Arc::make_mut(snap);
            s.tables.insert(k.clone(), new_table.clone());
            s.views.insert(k.clone(), new_rt.clone());
            s.stats = new_stats.clone();
        };
        if let Some(d) = &self.durability {
            let mut q = d.queue.lock();
            if let Some(snap) = &mut q.pending_snapshot {
                patch(snap);
            }
        }
        {
            let mut snap = self.snapshot.lock();
            patch(&mut snap);
        }
        Ok(ResultSet::dml(affected))
    }

    /// `ANALYZE [TABLE <t>]`: scans the named table (or every table) into
    /// fresh column statistics, bumps the stats generation (invalidating
    /// cached plans) and publishes the statistics to current readers.
    ///
    /// Statistics are memory-only engine state, not data: they are never
    /// WAL-logged. After recovery, row counts are re-synced from the
    /// restored tables and column statistics wait for the next `ANALYZE`.
    fn execute_analyze(&self, table: Option<&str>) -> RelResult<ResultSet> {
        let mut storage = self.storage.write();
        let names: Vec<String> = match table {
            Some(t) => {
                storage.table(t)?; // fail with UnknownTable before mutating
                vec![t.to_string()]
            }
            None => storage.catalog.tables().map(|s| s.name.clone()).collect(),
        };
        for name in &names {
            let t = storage.table(name)?;
            let schema = t.schema().clone();
            let rows: Vec<Row> = t.scan().map(|(_, row)| row).collect();
            storage
                .stats
                .table_mut(name)
                .rescan(&schema, rows.into_iter());
        }
        storage.stats.generation += 1;
        let stats = storage.stats.clone();
        self.plan_cache.lock().clear();
        // Publish like `set_zone_map_pruning`: patch any pending snapshot
        // and the published snapshot in place rather than republishing the
        // master state, which may hold applied-but-not-durable commits.
        if let Some(d) = &self.durability {
            let mut q = d.queue.lock();
            if let Some(snap) = &mut q.pending_snapshot {
                Arc::make_mut(snap).stats = stats.clone();
            }
        }
        let mut snap = self.snapshot.lock();
        Arc::make_mut(&mut snap).stats = stats;
        Ok(ResultSet::dml(names.len()))
    }

    /// Runs one DML statement as its own transaction. The in-memory state
    /// and the log move together: if the commit cannot be made durable,
    /// the in-memory mutation is rolled back before the error surfaces.
    fn execute_dml(&self, stmt: Statement) -> RelResult<ResultSet> {
        let mut storage = self.storage.write();
        match &stmt {
            Statement::Insert { table, .. }
            | Statement::Delete { table, .. }
            | Statement::Update { table, .. }
                if storage.is_view(table) =>
            {
                return Err(RelError::ReadOnly(format!(
                    "cannot modify materialized view {table:?}: its contents are \
                     maintained from its base tables"
                )));
            }
            _ => {}
        }
        match &stmt {
            Statement::Delete {
                table,
                filter: Some(f),
            }
            | Statement::Update {
                table,
                filter: Some(f),
                ..
            } => self.validate_filter(&storage, table, f)?,
            _ => {}
        }
        let tx = self.begin_tx();
        let mut records = Vec::new();
        let mut undo = Vec::new();
        let mut deltas = Vec::new();
        let affected = match apply_batch_statement(
            &mut storage,
            stmt,
            tx,
            &mut records,
            &mut undo,
            &mut deltas,
        ) {
            Ok(n) => n,
            Err(e) => {
                rollback(&mut storage, undo);
                return Err(e);
            }
        };
        self.commit_applied(storage, tx, records, undo, deltas)
            .map(|()| ResultSet::dml(affected))
    }

    /// Executes a sequence of DML statements atomically: either every
    /// statement applies and a single commit record is fsynced, or none do.
    pub fn execute_batch(&self, statements: &[&str]) -> RelResult<usize> {
        let parsed: Vec<Statement> = statements
            .iter()
            .map(|s| parse_statement(s))
            .collect::<RelResult<_>>()?;
        for stmt in &parsed {
            if !matches!(
                stmt,
                Statement::Insert { .. } | Statement::Delete { .. } | Statement::Update { .. }
            ) {
                return Err(RelError::Internal(
                    "execute_batch accepts DML statements only".into(),
                ));
            }
        }
        let mut storage = self.storage.write();
        for stmt in &parsed {
            if let Statement::Insert { table, .. }
            | Statement::Delete { table, .. }
            | Statement::Update { table, .. } = stmt
            {
                if storage.is_view(table) {
                    return Err(RelError::ReadOnly(format!(
                        "cannot modify materialized view {table:?}: its contents are \
                         maintained from its base tables"
                    )));
                }
            }
        }
        let tx = self.begin_tx();
        let mut records = Vec::new();
        let mut undo: Vec<UndoOp> = Vec::new();
        let mut deltas: Vec<DeltaEvent> = Vec::new();
        let mut affected = 0usize;
        let result = (|| -> RelResult<()> {
            for stmt in parsed {
                affected += apply_batch_statement(
                    &mut storage,
                    stmt,
                    tx,
                    &mut records,
                    &mut undo,
                    &mut deltas,
                )?;
            }
            Ok(())
        })();
        // A batch that failed to apply is rolled back in memory before
        // anything reaches the log: no half-applied document, no state
        // the log does not have.
        if let Err(e) = result {
            rollback(&mut storage, undo);
            return Err(e);
        }
        self.commit_applied(storage, tx, records, undo, deltas)
            .map(|()| affected)
    }

    /// Completes an already-applied transaction: assigns its CSN and
    /// enqueues its frames under the write lock, releases the lock, then
    /// waits for a group-commit flush to cover it. On failure the
    /// transaction's own effects are rolled back before the error
    /// surfaces, so memory and log agree on what exists.
    fn commit_applied(
        &self,
        mut storage: RwLockWriteGuard<'_, Storage>,
        tx: u64,
        records: Vec<WalRecord>,
        mut undo: Vec<UndoOp>,
        deltas: Vec<DeltaEvent>,
    ) -> RelResult<()> {
        if records.is_empty() {
            return Ok(()); // no-op DML: nothing to log, nothing to publish
        }
        let csn = storage.csn + 1;
        // Maintain materialized views before framing anything: the
        // snapshot cloned below must already carry the maintained view
        // contents, and a maintenance failure must fail the whole commit
        // (REFRESH ON COMMIT is part of the transaction's contract).
        // Deferred views only append to their pending delta logs here.
        if !deltas.is_empty() && !storage.views.is_empty() {
            if let Err(e) = maintain_views(&mut storage, &deltas, csn, &mut undo) {
                rollback(&mut storage, undo);
                return Err(e);
            }
        }
        let Some(d) = &self.durability else {
            storage.csn = csn;
            self.publish(Arc::new(storage.clone()));
            return Ok(());
        };
        {
            let mut q = d.queue.lock();
            if let Some(msg) = &q.poisoned {
                let err = poison_error(msg);
                drop(q);
                rollback(&mut storage, undo);
                return Err(err);
            }
            frame_into(&mut q.buf, &WalRecord::Begin { tx });
            for r in &records {
                frame_into(&mut q.buf, r);
            }
            frame_into(&mut q.buf, &WalRecord::Commit { tx });
            storage.csn = csn;
            q.queued_csn = csn;
            q.pending_snapshot = Some(Arc::new(storage.clone()));
            if let Some(ctx) = trace::current() {
                q.waiting_traces.push(ctx);
            }
        }
        drop(storage);
        let wait = {
            let _t = trace::span("relstore.wal.commit_wait");
            self.wait_durable(csn)
        };
        match wait {
            Ok(()) => Ok(()),
            Err(e) => {
                // Never acknowledged: revert this transaction's in-memory
                // effects (best effort — the database is poisoned either
                // way, and reads keep serving the last durable snapshot).
                let mut storage = self.storage.write();
                rollback(&mut storage, undo);
                Err(e)
            }
        }
    }

    /// Completes an autocommitted DDL statement, which occupies one CSN
    /// just like a DML transaction (recovery counts it the same way).
    fn finish_ddl(
        &self,
        mut storage: RwLockWriteGuard<'_, Storage>,
        record: WalRecord,
    ) -> RelResult<ResultSet> {
        let csn = storage.csn + 1;
        let Some(d) = &self.durability else {
            storage.csn = csn;
            self.publish(Arc::new(storage.clone()));
            return Ok(ResultSet::dml(0));
        };
        {
            let mut q = d.queue.lock();
            if let Some(msg) = &q.poisoned {
                return Err(poison_error(msg));
            }
            frame_into(&mut q.buf, &record);
            storage.csn = csn;
            q.queued_csn = csn;
            q.pending_snapshot = Some(Arc::new(storage.clone()));
            if let Some(ctx) = trace::current() {
                q.waiting_traces.push(ctx);
            }
        }
        drop(storage);
        {
            let _t = trace::span("relstore.wal.commit_wait");
            self.wait_durable(csn)?;
        }
        Ok(ResultSet::dml(0))
    }

    /// Blocks until `csn` is durable (or the log is poisoned). The first
    /// waiter to find no flush in flight becomes the leader and flushes
    /// the whole queue with one append + fsync.
    fn wait_durable(&self, csn: u64) -> RelResult<()> {
        let d = self.durability.as_ref().expect("durable mode");
        let mut q = d.queue.lock();
        loop {
            if let Some(msg) = &q.poisoned {
                return Err(poison_error(msg));
            }
            if q.durable_csn >= csn {
                return Ok(());
            }
            if q.flushing {
                q = cond_wait(&d.cond, q);
                continue;
            }
            // Leader: take the whole batch and flush it outside the queue
            // lock, so later committers keep enqueueing into a fresh
            // buffer while the disk works.
            q.flushing = true;
            let buf = std::mem::take(&mut q.buf);
            let traces = std::mem::take(&mut q.waiting_traces);
            let top = q.queued_csn;
            let snap = q.pending_snapshot.take();
            drop(q);
            let start = Instant::now();
            let res = d.wal.lock().write_frames(&buf);
            let flush_ns = metrics::elapsed_ns(start);
            metrics::engine().wal_commit_ns.record(flush_ns);
            // One group-commit span per covered committer, attached to
            // the committer's own trace. This thread may belong to a
            // different session than most of `traces` — the whole point
            // of group commit — so the spans are emitted against the
            // captured contexts, not the thread-local one.
            for ctx in traces {
                trace::emit("relstore.wal.group_commit", ctx, flush_ns);
            }
            q = d.queue.lock();
            q.flushing = false;
            let outcome = self.apply_flush_outcome(&mut q, res, top, buf.len(), snap);
            d.cond.notify_all();
            outcome?;
        }
    }

    /// Records a flush's result in the queue: on success advances the
    /// durable horizon and publishes the covering snapshot; on failure
    /// poisons the database.
    fn apply_flush_outcome(
        &self,
        q: &mut CommitQueue,
        res: RelResult<()>,
        top: u64,
        bytes: usize,
        snap: Option<Arc<Storage>>,
    ) -> RelResult<()> {
        let m = metrics::engine();
        match res {
            Ok(()) => {
                q.durable_csn = q.durable_csn.max(top);
                q.log_bytes += bytes as u64;
                m.wal_bytes
                    .set(i64::try_from(q.log_bytes).unwrap_or(i64::MAX));
                if let Some(s) = snap {
                    self.publish(s);
                }
                Ok(())
            }
            Err(e) => {
                m.wal_fsync_failures.inc();
                q.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }

    fn begin_tx(&self) -> u64 {
        match &self.durability {
            Some(d) => {
                let mut q = d.queue.lock();
                let tx = q.next_tx;
                q.next_tx += 1;
                tx
            }
            None => 0,
        }
    }

    /// Checkpoints the database: writes a complete image of the current
    /// state to the side store (write-to-temp + atomic rename), rotates
    /// the log, and starts the fresh log with a marker recording the
    /// image's CSN. Recovery then loads the image and replays only the
    /// tail — replay work is bounded by writes since the last checkpoint,
    /// not by total history. A no-op in memory-only mode.
    ///
    /// Crash semantics: a crash before the rename keeps the previous
    /// image and the full log (nothing lost); after the rename but before
    /// rotation, recovery loads the new image and skips the log's
    /// image-covered prefix by CSN; after rotation but before the marker,
    /// recovery repairs the missing marker on open.
    pub fn checkpoint(&self) -> RelResult<()> {
        let Some(d) = &self.durability else {
            return Ok(()); // nothing to checkpoint in memory-only mode
        };
        // Exclusive over writers for the whole protocol: no commit can
        // enqueue while the image is cut, so `storage.csn` is exactly
        // the state the image captures.
        let storage = self.storage.write();
        let mut q = d.queue.lock();
        while q.flushing {
            q = cond_wait(&d.cond, q);
        }
        if let Some(msg) = &q.poisoned {
            return Err(poison_error(msg));
        }
        if !q.buf.is_empty() {
            // Drain the last queued frames inline. No new enqueuers can
            // appear (they need the storage write lock held here), and
            // leaving them would fold unacknowledged commits into the
            // image while their committers wait forever.
            let buf = std::mem::take(&mut q.buf);
            let top = q.queued_csn;
            let snap = q.pending_snapshot.take();
            let start = Instant::now();
            let res = d.wal.lock().write_frames(&buf);
            metrics::engine()
                .wal_commit_ns
                .record(metrics::elapsed_ns(start));
            let outcome = self.apply_flush_outcome(&mut q, res, top, buf.len(), snap);
            d.cond.notify_all();
            outcome?;
        }
        let k = storage.csn;
        // The image: DDL first, then every live row, then the footer
        // that certifies completeness. A torn or partial image fails the
        // footer check at recovery and falls back to full log replay.
        let mut image = Vec::new();
        // View backing tables are excluded: their CreateView record (at
        // the end, after the base rows it reads exist) re-creates the
        // table, and recovery rebuilds the contents from the bases.
        for schema in storage.catalog.tables() {
            if storage.is_view(&schema.name) {
                continue;
            }
            frame_into(
                &mut image,
                &WalRecord::CreateTable {
                    schema: schema.clone(),
                },
            );
        }
        for def in storage.catalog.indexes() {
            frame_into(&mut image, &WalRecord::CreateIndex { def: def.clone() });
        }
        for schema in storage.catalog.tables() {
            if storage.is_view(&schema.name) {
                continue;
            }
            let table = storage.table(&schema.name)?;
            for (id, row) in table.scan() {
                frame_into(
                    &mut image,
                    &WalRecord::Insert {
                        tx: 0,
                        table: schema.name.clone(),
                        row_id: id,
                        row,
                    },
                );
            }
        }
        for rt in storage.views.values() {
            frame_into(
                &mut image,
                &WalRecord::CreateView {
                    name: rt.def.name.clone(),
                    refresh_on_commit: rt.def.refresh_on_commit,
                    select_sql: rt.def.select_sql.clone(),
                },
            );
        }
        frame_into(&mut image, &WalRecord::Checkpoint { csn: k });
        let mut wal = d.wal.lock();
        // A failure before rotation loses nothing — the previous image
        // (if any) and the whole log are still in place — so it leaves
        // the database healthy rather than poisoned.
        wal.put_side(&image)
            .map_err(|e| RelError::Wal(format!("checkpoint image: {e}")))?;
        if let Err(e) = wal.rotate() {
            q.poisoned = Some(e.to_string());
            d.cond.notify_all();
            return Err(e);
        }
        // Lead the fresh log with the marker so replay counts commits
        // from `k` instead of zero.
        let mut marker = Vec::new();
        frame_into(&mut marker, &WalRecord::Checkpoint { csn: k });
        if let Err(e) = wal.write_frames(&marker) {
            q.poisoned = Some(e.to_string());
            d.cond.notify_all();
            return Err(e);
        }
        q.log_bytes = marker.len() as u64;
        let m = metrics::engine();
        m.wal_bytes
            .set(i64::try_from(q.log_bytes).unwrap_or(i64::MAX));
        m.checkpoint_csn.set(i64::try_from(k).unwrap_or(i64::MAX));
        Ok(())
    }

    /// Rewrites segments whose dead-slot (tombstone) fraction exceeds
    /// [`COMPACT_DEAD_RATIO`], reclaiming space and re-tightening the
    /// widen-only zone maps. Returns the number of segments rewritten or
    /// removed. Purely an in-memory reorganization: row ids, visible
    /// contents and the log are untouched, so a crash at any point during
    /// or after it recovers the same state.
    pub fn compact_segments(&self) -> usize {
        let mut storage = self.storage.write();
        let names: Vec<String> = storage.catalog.tables().map(|t| t.name.clone()).collect();
        let mut rewritten = 0;
        for name in names {
            if let Ok(t) = storage.table_mut(&name) {
                rewritten += t.compact_store(COMPACT_DEAD_RATIO);
            }
        }
        if rewritten > 0 {
            let publishable = match &self.durability {
                None => true,
                Some(d) => {
                    let q = d.queue.lock();
                    q.poisoned.is_none() && q.durable_csn == storage.csn
                }
            };
            // An applied-but-unflushed commit must not leak into the
            // published snapshot; in that window the compacted layout
            // simply rides out with the next successful flush instead.
            if publishable {
                self.publish(Arc::new(storage.clone()));
            }
        }
        rewritten
    }

    /// Starts the background maintenance thread: every `interval` it
    /// compacts tombstone-heavy segments and takes a checkpoint. Errors
    /// (e.g. a poisoned log) are swallowed — the next tick retries.
    /// Idempotent while a maintenance thread is already running.
    pub fn start_maintenance(self: &Arc<Database>, interval: Duration) {
        let mut slot = self.maintenance.lock();
        if slot.is_some() {
            return;
        }
        let stop = Arc::new(StopSignal::new());
        let signal = Arc::clone(&stop);
        let weak: Weak<Database> = Arc::downgrade(self);
        let handle = std::thread::Builder::new()
            .name("relstore-maintenance".into())
            .spawn(move || {
                while !signal.wait_timeout(interval) {
                    let Some(db) = weak.upgrade() else { break };
                    db.compact_segments();
                    let _ = db.checkpoint();
                }
            })
            .expect("spawn maintenance thread");
        *slot = Some(MaintenanceTask { stop, handle });
    }

    /// Stops and joins the maintenance thread, if one is running.
    pub fn stop_maintenance(&self) {
        let task = self.maintenance.lock().take();
        if let Some(task) = task {
            task.stop.stop();
            let _ = task.handle.join();
        }
    }

    /// Compacts the durable log so recovery time becomes proportional to
    /// live data rather than history: a checkpoint + rotation on backends
    /// that support it, an in-place snapshot rewrite otherwise.
    pub fn compact(&self) -> RelResult<()> {
        let Some(d) = &self.durability else {
            return Ok(()); // nothing to compact in memory-only mode
        };
        if d.wal.lock().supports_rotation() {
            return self.checkpoint();
        }
        let storage = self.storage.write();
        let mut q = d.queue.lock();
        while q.flushing {
            q = cond_wait(&d.cond, q);
        }
        if let Some(msg) = &q.poisoned {
            return Err(poison_error(msg));
        }
        if !q.buf.is_empty() {
            // Same drain as checkpoint: the snapshot below includes these
            // frames' effects, but their committers have not been acked.
            let buf = std::mem::take(&mut q.buf);
            let top = q.queued_csn;
            let snap = q.pending_snapshot.take();
            let res = d.wal.lock().write_frames(&buf);
            let outcome = self.apply_flush_outcome(&mut q, res, top, buf.len(), snap);
            d.cond.notify_all();
            outcome?;
        }
        let mut snapshot = Vec::new();
        // Same shape as the checkpoint image: base tables + rows, then
        // view definitions (contents are rebuilt from the bases).
        for schema in storage.catalog.tables() {
            if storage.is_view(&schema.name) {
                continue;
            }
            snapshot.push(WalRecord::CreateTable {
                schema: schema.clone(),
            });
        }
        for def in storage.catalog.indexes() {
            snapshot.push(WalRecord::CreateIndex { def: def.clone() });
        }
        for schema in storage.catalog.tables() {
            if storage.is_view(&schema.name) {
                continue;
            }
            let table = storage.table(&schema.name)?;
            for (id, row) in table.scan() {
                snapshot.push(WalRecord::Insert {
                    tx: 0,
                    table: schema.name.clone(),
                    row_id: id,
                    row,
                });
            }
        }
        for rt in storage.views.values() {
            snapshot.push(WalRecord::CreateView {
                name: rt.def.name.clone(),
                refresh_on_commit: rt.def.refresh_on_commit,
                select_sql: rt.def.select_sql.clone(),
            });
        }
        let mut wal = d.wal.lock();
        if let Err(e) = wal.rewrite(&snapshot) {
            q.poisoned = Some(e.to_string());
            d.cond.notify_all();
            return Err(e);
        }
        let mut framed = Vec::new();
        for r in &snapshot {
            frame_into(&mut framed, r);
        }
        q.log_bytes = framed.len() as u64;
        metrics::engine()
            .wal_bytes
            .set(i64::try_from(q.log_bytes).unwrap_or(i64::MAX));
        Ok(())
    }

    /// Returns the textual plan for a `SELECT` — the engine's `EXPLAIN`.
    /// The final `parallel=N` line reports how many workers the plan
    /// would use (`1` for shapes that must run sequentially to keep the
    /// documented row-order contract).
    #[deprecated(note = "use `db.query(sql).explain()` (the typed `PlanExplain` tree)")]
    pub fn explain(&self, sql: &str) -> RelResult<String> {
        match parse_statement(sql)? {
            Statement::Select(select) => self.explain_select(&select),
            _ => Err(RelError::Parse("EXPLAIN supports SELECT only".into())),
        }
    }

    pub(crate) fn explain_select(&self, select: &SelectStmt) -> RelResult<String> {
        let storage = self.storage_for_select(&self.snapshot(), select)?;
        let planned = plan_select(select, &storage.catalog, &storage.stats)?;
        Ok(self.plan_explain_tree(&planned).render())
    }

    /// Builds the typed explain tree for an already-planned query,
    /// annotating the worker count the morsel-parallel executor would use
    /// for this plan shape.
    pub(crate) fn plan_explain_tree(&self, planned: &PlannedQuery) -> crate::plan::PlanExplain {
        let workers = if exec_parallel::parallel_eligible(&planned.plan) {
            self.options.workers
        } else {
            1
        };
        crate::plan::PlanExplain::from_planned(planned, workers)
    }

    /// Plans a `SELECT` without executing it (used by tests and benches to
    /// assert access paths).
    pub fn plan(&self, sql: &str) -> RelResult<PlannedQuery> {
        match parse_statement(sql)? {
            Statement::Select(select) => {
                let storage = self.storage_for_select(&self.snapshot(), &select)?;
                plan_select(&select, &storage.catalog, &storage.stats)
            }
            _ => Err(RelError::Parse("only SELECT can be planned".into())),
        }
    }

    /// Executes a `SELECT` and returns its results together with the
    /// executor's counters — rows scanned, peak buffered rows, rows
    /// emitted. This is the hook tests and benches use to assert that
    /// `LIMIT`/Top-K queries materialize O(k) rows, not the whole input.
    #[deprecated(note = "use `db.query(sql).with_stats().run()` (the `Query` builder)")]
    pub fn query_with_stats(&self, sql: &str) -> RelResult<(ResultSet, ExecStats)> {
        let out = self.query(sql).with_stats().run()?;
        Ok((out.rows, out.stats.expect("with_stats was requested")))
    }

    /// Plans one `SELECT` against a pinned snapshot, publishing plan
    /// latency (or an error count) to the global metrics registry.
    pub(crate) fn plan_select_stmt(
        &self,
        storage: &Storage,
        select: &SelectStmt,
    ) -> RelResult<PlannedQuery> {
        let m = metrics::engine();
        let _t = trace::span("relstore.query.plan");
        let plan_start = Instant::now();
        let result = plan_select(select, &storage.catalog, &storage.stats);
        match &result {
            Ok(_) => m.plan_ns.record(metrics::elapsed_ns(plan_start)),
            Err(_) => m.errors.inc(),
        }
        result
    }

    /// Executes a planned `SELECT` against a pinned snapshot, dispatching
    /// parallel-eligible shapes across the worker pool when `workers > 1`,
    /// and publishing per-query aggregates (row counters, exec latency)
    /// to the metrics registry.
    pub(crate) fn run_planned_query(
        &self,
        storage: &Storage,
        planned: &PlannedQuery,
        workers: usize,
    ) -> RelResult<(ResultSet, ExecStats)> {
        let m = metrics::engine();
        let _t = trace::span("relstore.query.exec");
        let result = (|| {
            let exec_start = Instant::now();
            let parallel = if workers > 1 {
                exec_parallel::execute_plan_parallel(
                    &planned.plan,
                    storage,
                    &self.pool,
                    workers,
                    self.options.morsel_size,
                    planned.estimate.cost,
                )
            } else {
                None
            };
            let (schema, rows, stats) = match parallel {
                Some(run) => {
                    m.parallel_workers.add(workers as u64);
                    run?
                }
                None => execute_plan_with_stats(&planned.plan, storage)?,
            };
            m.exec_ns.record(metrics::elapsed_ns(exec_start));
            Ok((select_result(planned.visible, &schema, rows), stats))
        })();
        match &result {
            Ok((_, stats)) => m.observe_query(stats),
            Err(_) => m.errors.inc(),
        }
        result
    }

    /// Plans and executes one `SELECT` with the database's default worker
    /// count against the current snapshot.
    fn run_select(&self, select: &SelectStmt) -> RelResult<(ResultSet, ExecStats)> {
        let storage = self.storage_for_select(&self.snapshot(), select)?;
        let planned = self.plan_select_stmt(&storage, select)?;
        self.run_planned_query(&storage, &planned, self.options.workers)
    }

    /// Runs a `SELECT` (or an `EXPLAIN [ANALYZE] SELECT`) under the
    /// per-operator profiler and renders the annotated plan tree — the
    /// string form of `EXPLAIN ANALYZE`.
    pub fn explain_analyze(&self, sql: &str) -> RelResult<String> {
        Ok(self.analyze_sql(sql)?.render())
    }

    /// Like [`Database::explain_analyze`], but returns the structured
    /// [`AnalyzedQuery`] (profile tree, counters, total time, results)
    /// instead of rendered text.
    #[deprecated(note = "use `db.query(sql).with_profile().run()` (the `Query` builder)")]
    pub fn explain_analyze_query(&self, sql: &str) -> RelResult<AnalyzedQuery> {
        self.analyze_sql(sql)
    }

    fn analyze_sql(&self, sql: &str) -> RelResult<AnalyzedQuery> {
        let select = match parse_statement(sql)? {
            Statement::Select(select) => select,
            Statement::Explain { inner, .. } => match *inner {
                Statement::Select(select) => select,
                _ => return Err(RelError::Parse("EXPLAIN supports SELECT only".into())),
            },
            _ => return Err(RelError::Parse("only SELECT can be analyzed".into())),
        };
        let snap = self.storage_for_select(&self.snapshot(), &select)?;
        self.analyze_select(&snap, &select)
    }

    pub(crate) fn analyze_select(
        &self,
        storage: &Storage,
        select: &SelectStmt,
    ) -> RelResult<AnalyzedQuery> {
        let m = metrics::engine();
        let result = (|| {
            let plan_start = Instant::now();
            let planned = {
                let _t = trace::span("relstore.query.plan");
                plan_select(select, &storage.catalog, &storage.stats)?
            };
            m.plan_ns.record(metrics::elapsed_ns(plan_start));
            let _t = trace::span("relstore.query.exec");
            let exec_start = Instant::now();
            let (schema, rows, stats, mut profile) = execute_plan_profiled(&planned.plan, storage)?;
            let total_ns = metrics::elapsed_ns(exec_start);
            m.exec_ns.record(total_ns);
            profile.annotate_estimates(&planned.estimate);
            Ok(AnalyzedQuery {
                profile,
                stats,
                total_ns,
                result: select_result(planned.visible, &schema, rows),
            })
        })();
        match &result {
            Ok(analyzed) => m.observe_query(&analyzed.stats),
            Err(_) => m.errors.inc(),
        }
        result
    }

    /// Executes a `SELECT` through the materializing reference interpreter
    /// ([`crate::exec_reference`]) instead of the streaming executor.
    /// The property suite runs randomized queries through both paths and
    /// requires row-for-row identical results.
    #[deprecated(note = "use `db.query(sql).via_reference().run()` (the `Query` builder)")]
    pub fn query_reference(&self, sql: &str) -> RelResult<ResultSet> {
        Ok(self.query(sql).via_reference().run()?.rows)
    }

    /// Runs a pre-parsed `SELECT` on the reference interpreter against a
    /// pinned snapshot.
    pub(crate) fn run_select_reference(
        &self,
        storage: &Storage,
        select: &SelectStmt,
    ) -> RelResult<ResultSet> {
        let PlannedQuery { plan, visible, .. } =
            plan_select(select, &storage.catalog, &storage.stats)?;
        let (schema, rows) = crate::exec_reference::execute_plan(&plan, storage)?;
        Ok(select_result(visible, &schema, rows))
    }

    /// Number of rows currently in `table` (as of the latest snapshot).
    pub fn row_count(&self, table: &str) -> RelResult<usize> {
        Ok(self.snapshot().table(table)?.len())
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.snapshot()
            .catalog
            .tables()
            .map(|t| t.name.clone())
            .collect()
    }

    fn validate_filter(
        &self,
        storage: &Storage,
        table: &str,
        filter: &crate::sql::ast::Expr,
    ) -> RelResult<()> {
        // DELETE/UPDATE predicates see the bare table as its own alias.
        let schema = storage.table(table)?.schema();
        let row_schema = RowSchema::for_table(table, schema.columns.iter().map(|c| c.name.clone()));
        // Validate references eagerly so errors carry good messages.
        validate_expr_columns(filter, &row_schema)
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        // Signal but never join: the maintenance thread's own temporary
        // Arc upgrade can be the last reference, which would run this
        // drop *on* the maintenance thread — joining it would deadlock.
        if let Some(task) = self.maintenance.get_mut().take() {
            task.stop.stop();
        }
    }
}

/// Rebuilds a [`Storage`] from a checkpoint image: framed DDL + `tx:0`
/// row records, certified complete by a trailing [`WalRecord::Checkpoint`]
/// footer. Any damage — truncation, bit-rot, a missing footer — is an
/// error; the caller falls back to full log replay.
fn load_checkpoint_image(image: &[u8]) -> Result<(Storage, u64), String> {
    let scan = crate::wal::scan_log(image);
    if let Some(c) = &scan.corruption {
        return Err(format!("torn at byte {}: {}", c.offset, c.reason));
    }
    let Some(WalRecord::Checkpoint { csn }) = scan.records.last() else {
        return Err("missing its trailing completeness marker".into());
    };
    let k = *csn;
    let mut storage = Storage::default();
    for record in &scan.records[..scan.records.len() - 1] {
        match record {
            WalRecord::CreateTable { schema } => storage
                .create_table(schema.clone())
                .map_err(|e| format!("CREATE TABLE: {e}"))?,
            WalRecord::CreateIndex { def } => storage
                .create_index(def.clone())
                .map_err(|e| format!("CREATE INDEX: {e}"))?,
            WalRecord::Insert { .. } => {
                let mut throwaway = Vec::new();
                apply_dml(&mut storage, record, &mut throwaway).map_err(|e| format!("row: {e}"))?;
            }
            WalRecord::CreateView {
                name,
                refresh_on_commit,
                select_sql,
            } => {
                // Definition only; the caller (recovery) rebuilds the
                // contents from the restored base tables after replay.
                storage
                    .install_view(name, *refresh_on_commit, select_sql)
                    .map_err(|e| format!("CREATE MATERIALIZED VIEW: {e}"))?;
            }
            other => return Err(format!("unexpected record {other:?}")),
        }
    }
    storage.csn = k;
    Ok((storage, k))
}

/// Validates that every column an expression mentions resolves.
fn validate_expr_columns(expr: &crate::sql::ast::Expr, schema: &RowSchema) -> RelResult<()> {
    use crate::sql::ast::Expr as E;
    match expr {
        E::Column { table, name } => {
            schema.resolve(table.as_deref(), name)?;
            Ok(())
        }
        E::Literal(_) | E::Param(_) => Ok(()),
        E::Binary { left, right, .. } => {
            validate_expr_columns(left, schema)?;
            validate_expr_columns(right, schema)
        }
        E::Not(e) | E::Neg(e) => validate_expr_columns(e, schema),
        E::IsNull { expr, .. } => validate_expr_columns(expr, schema),
        E::Like { expr, pattern, .. } => {
            validate_expr_columns(expr, schema)?;
            validate_expr_columns(pattern, schema)
        }
        E::InList { expr, list, .. } => {
            validate_expr_columns(expr, schema)?;
            list.iter()
                .try_for_each(|e| validate_expr_columns(e, schema))
        }
        E::Between {
            expr, low, high, ..
        } => {
            validate_expr_columns(expr, schema)?;
            validate_expr_columns(low, schema)?;
            validate_expr_columns(high, schema)
        }
        E::Contains { column, keyword } => {
            validate_expr_columns(column, schema)?;
            validate_expr_columns(keyword, schema)
        }
        E::Matches { column, pattern } => {
            validate_expr_columns(column, schema)?;
            validate_expr_columns(pattern, schema)
        }
        E::Aggregate { .. } => Err(RelError::Eval("aggregate in DML predicate".into())),
    }
}

/// `Bound<Value>` → `Bound<&Value>`.
fn bound_as_ref(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

/// Applies one replayed DML record, recording its inverse in `undo`.
fn apply_dml(storage: &mut Storage, record: &WalRecord, undo: &mut Vec<UndoOp>) -> RelResult<()> {
    match record {
        WalRecord::Insert {
            table, row_id, row, ..
        } => {
            storage.insert_at(table, *row_id, row.clone())?;
            undo.push(UndoOp::DeleteInserted {
                table: table.clone(),
                id: *row_id,
            });
            Ok(())
        }
        WalRecord::Delete { table, row_id, .. } => {
            let old = storage.delete(table, *row_id)?;
            undo.push(UndoOp::ReinsertDeleted {
                table: table.clone(),
                id: *row_id,
                row: old,
            });
            Ok(())
        }
        WalRecord::Update {
            table, row_id, row, ..
        } => {
            let old = storage.update(table, *row_id, row.clone())?;
            undo.push(UndoOp::RevertUpdated {
                table: table.clone(),
                id: *row_id,
                row: old,
            });
            Ok(())
        }
        other => Err(RelError::Wal(format!("unexpected DML record {other:?}"))),
    }
}

/// Applies one committed transaction's operations; on failure rolls back
/// whatever part already applied, so a dropped transaction leaves no
/// trace (all-or-nothing even during replay of a damaged log).
fn apply_txn(storage: &mut Storage, ops: &[WalRecord]) -> RelResult<()> {
    let mut undo = Vec::with_capacity(ops.len());
    for op in ops {
        if let Err(e) = apply_dml(storage, op, &mut undo) {
            rollback(storage, undo);
            return Err(e);
        }
    }
    Ok(())
}

/// Best-effort reverse replay of an undo log.
fn rollback(storage: &mut Storage, undo: Vec<UndoOp>) {
    for op in undo.into_iter().rev() {
        // Each undo op inverts an operation that succeeded, so failure
        // here is unreachable in practice; ignoring it keeps rollback
        // total (it must never panic or abort halfway).
        let _ = op.apply(storage);
    }
}

/// Inverse operation recorded while applying a batch, replayed on failure.
enum UndoOp {
    DeleteInserted {
        table: String,
        id: RowId,
    },
    ReinsertDeleted {
        table: String,
        id: RowId,
        row: Row,
    },
    RevertUpdated {
        table: String,
        id: RowId,
        row: Row,
    },
    /// Pre-maintenance snapshot of a materialized view (cheap COW clones),
    /// restored wholesale if the commit fails after maintenance ran.
    RestoreView {
        name: String,
        table: Box<Table>,
        runtime: Box<ViewRuntime>,
    },
}

impl UndoOp {
    fn apply(self, storage: &mut Storage) -> RelResult<()> {
        match self {
            UndoOp::DeleteInserted { table, id } => storage.delete(&table, id).map(|_| ()),
            UndoOp::ReinsertDeleted { table, id, row } => storage.insert_at(&table, id, row),
            UndoOp::RevertUpdated { table, id, row } => storage.update(&table, id, row).map(|_| ()),
            UndoOp::RestoreView {
                name,
                table,
                runtime,
            } => {
                let rows = table.len() as u64;
                storage.tables.insert(name.clone(), *table);
                storage.views.insert(name.clone(), *runtime);
                if let Some(s) = storage.stats.existing_mut(&name) {
                    s.row_count = rows;
                }
                Ok(())
            }
        }
    }
}

fn apply_batch_statement(
    storage: &mut Storage,
    stmt: Statement,
    tx: u64,
    records: &mut Vec<WalRecord>,
    undo: &mut Vec<UndoOp>,
    deltas: &mut Vec<DeltaEvent>,
) -> RelResult<usize> {
    match stmt {
        Statement::Insert { table, rows } => {
            let capture = storage.views_watch(&table);
            let empty = RowSchema::default();
            let count = rows.len();
            for row in rows {
                let values: Row = row
                    .iter()
                    .map(|e| eval(e, &empty, &[]))
                    .collect::<RelResult<_>>()?;
                let (id, stored) = storage.insert(&table, values)?;
                if capture {
                    deltas.push(DeltaEvent::Insert {
                        table: key(&table),
                        id,
                        row: stored.clone(),
                    });
                }
                records.push(WalRecord::Insert {
                    tx,
                    table: table.clone(),
                    row_id: id,
                    row: stored,
                });
                undo.push(UndoOp::DeleteInserted {
                    table: table.clone(),
                    id,
                });
            }
            Ok(count)
        }
        Statement::Delete { table, filter } => {
            let capture = storage.views_watch(&table);
            let ids = storage.matching_rows(&table, filter.as_ref())?;
            for id in &ids {
                let old = storage.delete(&table, *id)?;
                if capture {
                    deltas.push(DeltaEvent::Delete {
                        table: key(&table),
                        id: *id,
                        row: old.clone(),
                    });
                }
                records.push(WalRecord::Delete {
                    tx,
                    table: table.clone(),
                    row_id: *id,
                });
                undo.push(UndoOp::ReinsertDeleted {
                    table: table.clone(),
                    id: *id,
                    row: old,
                });
            }
            Ok(ids.len())
        }
        Statement::Update {
            table,
            assignments,
            filter,
        } => {
            let columns: Vec<String> = storage
                .table(&table)?
                .schema()
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect();
            let row_schema = RowSchema::for_table(&table, columns);
            let mut positions = Vec::with_capacity(assignments.len());
            for (col, _) in &assignments {
                positions.push(
                    storage
                        .table(&table)?
                        .schema()
                        .column_index(col)
                        .ok_or_else(|| RelError::UnknownColumn(format!("{table}.{col}")))?,
                );
            }
            let capture = storage.views_watch(&table);
            let ids = storage.matching_rows(&table, filter.as_ref())?;
            for id in &ids {
                let current = storage.table(&table)?.get(*id).expect("matched");
                let mut next = current.clone();
                for ((_, expr), pos) in assignments.iter().zip(&positions) {
                    next[*pos] = eval(expr, &row_schema, &current)?;
                }
                let old = storage.update(&table, *id, next)?;
                let stored = storage.table(&table)?.get(*id).expect("updated");
                if capture {
                    // An update is a retraction of the old row plus an
                    // assertion of the new one under the same id.
                    deltas.push(DeltaEvent::Delete {
                        table: key(&table),
                        id: *id,
                        row: old.clone(),
                    });
                    deltas.push(DeltaEvent::Insert {
                        table: key(&table),
                        id: *id,
                        row: stored.clone(),
                    });
                }
                records.push(WalRecord::Update {
                    tx,
                    table: table.clone(),
                    row_id: *id,
                    row: stored,
                });
                undo.push(UndoOp::RevertUpdated {
                    table: table.clone(),
                    id: *id,
                    row: old,
                });
            }
            Ok(ids.len())
        }
        _ => unreachable!("validated as DML"),
    }
}
