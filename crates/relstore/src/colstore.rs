//! The append-only segmented column store backing [`crate::table::Table`].
//!
//! A table's rows live in a list of fixed-capacity [`Segment`]s. Rows are
//! appended in `RowId` order, so scanning segments front to back and slots
//! low to high yields rows in insertion order — which, for shredded XML,
//! is document order ("order as a data value", paper §2.2). Deletes
//! tombstone their slot, updates overwrite in place, and neither moves a
//! row, so `RowId`s stay stable and the scan order never changes
//! underneath stored ordinals.
//!
//! Segments are reference-counted (`Arc`) so cloning a store — the MVCC
//! snapshot publication path in [`crate::db`] — is O(#segments) pointer
//! bumps, not a data copy. Writers mutate through [`Arc::make_mut`]:
//! a segment still referenced by a published snapshot is copied on first
//! write (at most one segment's worth of rows), everything else mutates
//! in place. Row location is a binary search on the per-segment id range
//! plus a binary search inside the segment, replacing the old
//! `RowId → (segment, slot)` hash map that made snapshot clones O(rows).
//!
//! The one operation that can violate append order is WAL replay handing
//! us an id *below* the high-water mark (e.g. a transaction rollback
//! re-inserting a previously deleted row whose slot was since rebuilt
//! away). That path rebuilds the segment list: all live rows are
//! collected, the newcomer spliced in at its sorted position, and every
//! segment (zone maps included) reconstructed from scratch — O(n), rare,
//! and it doubles as arena compaction.

use std::sync::Arc;

use crate::segment::{Segment, SimplePred, SEGMENT_CAPACITY};
use crate::value::{DataType, Value};

/// Segmented columnar storage for one table.
#[derive(Debug, Clone)]
pub struct ColStore {
    types: Vec<DataType>,
    segments: Vec<Arc<Segment>>,
    live_count: usize,
    /// One past the highest id ever appended; appends below this are
    /// out-of-order and trigger a rebuild.
    high_water: u64,
    /// Rows per segment — [`SEGMENT_CAPACITY`] in production, smaller in
    /// tests that need many segments from few rows.
    seg_capacity: usize,
    /// CSN stamped onto subsequent inserts and tombstones; the database
    /// sets it to the committing transaction's sequence number before
    /// applying its operations.
    stamp: u64,
}

impl ColStore {
    /// An empty store for columns of the given types.
    pub fn new(types: Vec<DataType>) -> Self {
        Self::with_segment_capacity(types, SEGMENT_CAPACITY)
    }

    /// As [`ColStore::new`] with a custom segment capacity (tests only).
    pub fn with_segment_capacity(types: Vec<DataType>, seg_capacity: usize) -> Self {
        assert!(seg_capacity > 0);
        ColStore {
            types,
            segments: Vec::new(),
            live_count: 0,
            high_water: 0,
            seg_capacity,
            stamp: 0,
        }
    }

    /// Live rows.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether the store holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// The segments, in `RowId` order.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Sets the CSN stamped onto subsequent mutations.
    pub fn set_stamp(&mut self, csn: u64) {
        self.stamp = csn;
    }

    /// Locates `id` (live or tombstoned) as `(segment index, slot)`.
    ///
    /// Ids are strictly increasing across the segment list, so the owning
    /// segment is the first whose last id is `>= id`, and the slot is a
    /// binary search within it.
    fn locate(&self, id: u64) -> Option<(usize, usize)> {
        let seg_idx = self
            .segments
            .partition_point(|seg| seg.last_id().is_some_and(|last| last < id));
        let slot = self.segments.get(seg_idx)?.find_slot(id)?;
        Some((seg_idx, slot))
    }

    /// Inserts `row` under `id`. An existing id (live or tombstoned) is
    /// overwritten in place; an unseen id below the high-water mark
    /// rebuilds the segment list to splice it in at document order.
    pub fn insert(&mut self, id: u64, row: &[Value]) {
        if let Some((seg_idx, slot)) = self.locate(id) {
            let seg = Arc::make_mut(&mut self.segments[seg_idx]);
            if !seg.is_live(slot) {
                seg.revive(slot);
                self.live_count += 1;
            }
            seg.update(slot, row);
            return;
        }
        if id < self.high_water {
            self.rebuild_with(id, row);
            return;
        }
        self.append_tail(id, row, self.stamp);
    }

    fn append_tail(&mut self, id: u64, row: &[Value], csn: u64) {
        if self
            .segments
            .last()
            .is_none_or(|seg| seg.len() >= self.seg_capacity)
        {
            self.segments.push(Arc::new(Segment::new(&self.types)));
        }
        let seg = self.segments.last_mut().expect("segment just ensured");
        Arc::make_mut(seg).push(id, row, csn);
        self.live_count += 1;
        self.high_water = id + 1;
    }

    /// Rebuilds every segment with `(id, row)` spliced in at its sorted
    /// position. Reclaims tombstoned slots and stale arena bytes, and
    /// recomputes zone maps from the surviving values only. Surviving
    /// rows keep their insert CSN; the newcomer gets the current stamp.
    fn rebuild_with(&mut self, id: u64, row: &[Value]) {
        let mut rows: Vec<(u64, Vec<Value>, u64)> = self
            .segments
            .iter()
            .flat_map(|seg| {
                (0..seg.len())
                    .filter(|&slot| seg.is_live(slot))
                    .map(move |slot| (seg.id_at(slot), seg.row(slot), seg.insert_csn_at(slot)))
            })
            .collect();
        let pos = rows.partition_point(|(existing, _, _)| *existing < id);
        rows.insert(pos, (id, row.to_vec(), self.stamp));
        let high_water = self.high_water.max(id + 1);
        self.segments.clear();
        self.live_count = 0;
        self.high_water = 0;
        for (id, row, csn) in rows {
            self.append_tail(id, &row, csn);
        }
        self.high_water = high_water;
    }

    /// Materializes the live row `id`.
    pub fn get(&self, id: u64) -> Option<Vec<Value>> {
        let (seg_idx, slot) = self.locate(id)?;
        let seg = &self.segments[seg_idx];
        seg.is_live(slot).then(|| seg.row(slot))
    }

    /// Tombstones the live row `id`, returning its former values.
    pub fn delete(&mut self, id: u64) -> Option<Vec<Value>> {
        let (seg_idx, slot) = self.locate(id)?;
        if !self.segments[seg_idx].is_live(slot) {
            return None;
        }
        let stamp = self.stamp;
        let seg = Arc::make_mut(&mut self.segments[seg_idx]);
        let old = seg.row(slot);
        seg.delete(slot, stamp);
        self.live_count -= 1;
        Some(old)
    }

    /// Overwrites the live row `id` in place, returning its former
    /// values. Zone maps widen to cover the new values.
    pub fn update(&mut self, id: u64, row: &[Value]) -> Option<Vec<Value>> {
        let (seg_idx, slot) = self.locate(id)?;
        if !self.segments[seg_idx].is_live(slot) {
            return None;
        }
        let seg = Arc::make_mut(&mut self.segments[seg_idx]);
        let old = seg.row(slot);
        seg.update(slot, row);
        Some(old)
    }

    /// Iterates live `(id, row)` pairs in `RowId` (document) order.
    pub fn scan(&self) -> impl Iterator<Item = (u64, Vec<Value>)> + '_ {
        self.segments.iter().flat_map(|seg| {
            (0..seg.len())
                .filter(|&slot| seg.is_live(slot))
                .map(move |slot| (seg.id_at(slot), seg.row(slot)))
        })
    }

    /// Splits segments into `(visited, pruned_count)` under `preds`'
    /// zone maps. With no predicates every non-empty segment is visited.
    /// Only segments with at least one live row participate.
    pub fn prune_segments(&self, preds: &[SimplePred]) -> (Vec<usize>, u64) {
        let mut visited = Vec::with_capacity(self.segments.len());
        let mut pruned = 0u64;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.live_count() == 0 {
                continue;
            }
            if seg.zones_admit(preds) {
                visited.push(i);
            } else {
                pruned += 1;
            }
        }
        (visited, pruned)
    }

    /// Rewrites every segment whose dead-slot fraction exceeds
    /// `max_dead_ratio`, dropping tombstoned slots, reclaiming stale
    /// arena bytes and recomputing (re-tightening) the widen-only zone
    /// maps from the surviving rows. Fully-dead segments are removed
    /// outright. Surviving rows keep their ids and insert CSNs, and the
    /// id order across segments is preserved, so locations stay valid.
    /// Published snapshots keep their own `Arc`s to the old segments.
    ///
    /// Returns the number of segments rewritten or removed.
    pub fn compact(&mut self, max_dead_ratio: f64) -> usize {
        let mut rebuilt = 0usize;
        let mut out: Vec<Arc<Segment>> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            let dead = seg.len() - seg.live_count();
            if dead == 0 || (dead as f64) <= max_dead_ratio * seg.len() as f64 {
                out.push(seg);
                continue;
            }
            rebuilt += 1;
            if seg.live_count() == 0 {
                continue; // fully dead: drop the segment entirely
            }
            let mut fresh = Segment::new(&self.types);
            for slot in 0..seg.len() {
                if seg.is_live(slot) {
                    fresh.push(seg.id_at(slot), &seg.row(slot), seg.insert_csn_at(slot));
                }
            }
            out.push(Arc::new(fresh));
        }
        self.segments = out;
        rebuilt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_store(cap: usize) -> ColStore {
        ColStore::with_segment_capacity(vec![DataType::Int], cap)
    }

    fn ids(store: &ColStore) -> Vec<u64> {
        store.scan().map(|(id, _)| id).collect()
    }

    #[test]
    fn appends_roll_over_segment_boundaries() {
        let mut s = int_store(4);
        for i in 0..10 {
            s.insert(i, &[Value::Int(i as i64)]);
        }
        assert_eq!(s.segments().len(), 3);
        assert_eq!(s.len(), 10);
        assert_eq!(ids(&s), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_order_insert_rebuilds_into_document_order() {
        let mut s = int_store(4);
        for i in [0u64, 1, 5, 6] {
            s.insert(i, &[Value::Int(i as i64)]);
        }
        s.delete(1).unwrap();
        // Id 3 arrives late (WAL rollback shape): must land between 0 and 5.
        s.insert(3, &[Value::Int(33)]);
        assert_eq!(ids(&s), vec![0, 3, 5, 6]);
        assert_eq!(s.get(3).unwrap(), vec![Value::Int(33)]);
        // The rebuild dropped the tombstone for id 1 entirely.
        assert!(s.get(1).is_none());
        // High-water survives the rebuild: the next append still goes last.
        s.insert(7, &[Value::Int(7)]);
        assert_eq!(ids(&s), vec![0, 3, 5, 6, 7]);
    }

    #[test]
    fn reinsert_of_tombstoned_id_revives_in_place() {
        let mut s = int_store(4);
        for i in 0..3 {
            s.insert(i, &[Value::Int(i as i64)]);
        }
        s.delete(1).unwrap();
        assert_eq!(s.len(), 2);
        s.insert(1, &[Value::Int(11)]);
        assert_eq!(s.len(), 3);
        assert_eq!(ids(&s), vec![0, 1, 2]);
        assert_eq!(s.get(1).unwrap(), vec![Value::Int(11)]);
        // No rebuild happened: still a single segment with 3 slots.
        assert_eq!(s.segments().len(), 1);
    }

    #[test]
    fn delete_twice_and_missing_are_none() {
        let mut s = int_store(4);
        s.insert(0, &[Value::Int(0)]);
        assert!(s.delete(0).is_some());
        assert!(s.delete(0).is_none());
        assert!(s.delete(42).is_none());
        assert!(s.update(0, &[Value::Int(9)]).is_none());
    }

    #[test]
    fn pruning_skips_dead_and_out_of_range_segments() {
        use crate::segment::CmpOp;
        let mut s = int_store(2);
        for i in 0..6 {
            s.insert(i, &[Value::Int(i as i64 * 10)]);
        }
        // Kill segment 1 (values 20, 30) entirely.
        s.delete(2).unwrap();
        s.delete(3).unwrap();
        let pred = SimplePred {
            col: 0,
            op: CmpOp::Ge,
            lit: Value::Int(40),
        };
        let (visited, pruned) = s.prune_segments(std::slice::from_ref(&pred));
        // Segment 0 (0,10) pruned by zones; segment 1 skipped as dead
        // (not counted as pruned); segment 2 (40,50) visited.
        assert_eq!(visited, vec![2]);
        assert_eq!(pruned, 1);
    }

    #[test]
    fn mutations_stamp_the_current_csn() {
        let mut s = int_store(4);
        s.set_stamp(7);
        s.insert(0, &[Value::Int(0)]);
        s.insert(1, &[Value::Int(1)]);
        s.set_stamp(9);
        s.delete(1).unwrap();
        let seg = &s.segments()[0];
        assert_eq!(seg.insert_csn_at(0), 7);
        assert_eq!(seg.delete_csn_at(0), 0);
        assert_eq!(seg.insert_csn_at(1), 7);
        assert_eq!(seg.delete_csn_at(1), 9);
        // Reviving the tombstoned id clears its delete stamp.
        s.set_stamp(11);
        s.insert(1, &[Value::Int(11)]);
        assert_eq!(s.segments()[0].delete_csn_at(1), 0);
    }

    #[test]
    fn clones_share_segments_until_written() {
        let mut s = int_store(2);
        for i in 0..6 {
            s.insert(i, &[Value::Int(i as i64)]);
        }
        let snapshot = s.clone();
        // Copy-on-write: mutating the original leaves the clone intact.
        s.update(0, &[Value::Int(100)]).unwrap();
        s.delete(5).unwrap();
        assert_eq!(snapshot.get(0).unwrap(), vec![Value::Int(0)]);
        assert_eq!(snapshot.get(5).unwrap(), vec![Value::Int(5)]);
        assert_eq!(s.get(0).unwrap(), vec![Value::Int(100)]);
        assert!(s.get(5).is_none());
        // The untouched middle segment is still physically shared.
        assert!(Arc::ptr_eq(&s.segments()[1], &snapshot.segments()[1]));
    }

    #[test]
    fn compact_drops_tombstones_and_tightens_zones() {
        use crate::segment::CmpOp;
        let mut s = int_store(4);
        for i in 0..8 {
            s.insert(i, &[Value::Int(i as i64 * 10)]);
        }
        // Segment 0: delete the extremes (0 and 30) — zones stay wide
        // until compaction. Segment 1: kill it entirely.
        s.delete(0).unwrap();
        s.delete(3).unwrap();
        for i in 4..8 {
            s.delete(i).unwrap();
        }
        assert!(s.segments()[0].zone(0).can_match(CmpOp::Eq, &Value::Int(0)));
        let rebuilt = s.compact(0.4);
        assert_eq!(rebuilt, 2);
        assert_eq!(s.segments().len(), 1);
        assert_eq!(ids(&s), vec![1, 2]);
        // Zones recomputed from the survivors only: 10..=20.
        let zone = s.segments()[0].zone(0);
        assert!(!zone.can_match(CmpOp::Eq, &Value::Int(0)));
        assert!(!zone.can_match(CmpOp::Eq, &Value::Int(30)));
        assert!(zone.can_match(CmpOp::Eq, &Value::Int(10)));
        // Location still works after segment removal, and appends resume
        // past the old high-water mark.
        assert_eq!(s.get(2).unwrap(), vec![Value::Int(20)]);
        s.insert(8, &[Value::Int(80)]);
        assert_eq!(ids(&s), vec![1, 2, 8]);
    }

    #[test]
    fn compact_leaves_lightly_tombstoned_segments_alone() {
        let mut s = int_store(4);
        for i in 0..4 {
            s.insert(i, &[Value::Int(i as i64)]);
        }
        s.delete(0).unwrap();
        // 25% dead <= 40% threshold: untouched.
        assert_eq!(s.compact(0.4), 0);
        assert_eq!(s.segments()[0].len(), 4);
    }
}
