//! The append-only segmented column store backing [`crate::table::Table`].
//!
//! A table's rows live in a list of fixed-capacity [`Segment`]s plus a
//! `RowId → (segment, slot)` location map. Rows are appended in `RowId`
//! order, so scanning segments front to back and slots low to high yields
//! rows in insertion order — which, for shredded XML, is document order
//! ("order as a data value", paper §2.2). Deletes tombstone their slot,
//! updates overwrite in place, and neither moves a row, so `RowId`s stay
//! stable and the scan order never changes underneath stored ordinals.
//!
//! The one operation that can violate append order is WAL replay handing
//! us an id *below* the high-water mark (e.g. a transaction rollback
//! re-inserting a previously deleted row whose slot was since rebuilt
//! away). That path rebuilds the segment list: all live rows are
//! collected, the newcomer spliced in at its sorted position, and every
//! segment (zone maps included) reconstructed from scratch — O(n), rare,
//! and it doubles as arena compaction.

use std::collections::HashMap;

use crate::segment::{Segment, SimplePred, SEGMENT_CAPACITY};
use crate::value::{DataType, Value};

/// Segmented columnar storage for one table.
#[derive(Debug, Clone)]
pub struct ColStore {
    types: Vec<DataType>,
    segments: Vec<Segment>,
    /// `RowId.0 → (segment index, slot)`, including tombstoned slots.
    locs: HashMap<u64, (u32, u32)>,
    live_count: usize,
    /// One past the highest id ever appended; appends below this are
    /// out-of-order and trigger a rebuild.
    high_water: u64,
    /// Rows per segment — [`SEGMENT_CAPACITY`] in production, smaller in
    /// tests that need many segments from few rows.
    seg_capacity: usize,
}

impl ColStore {
    /// An empty store for columns of the given types.
    pub fn new(types: Vec<DataType>) -> Self {
        Self::with_segment_capacity(types, SEGMENT_CAPACITY)
    }

    /// As [`ColStore::new`] with a custom segment capacity (tests only).
    pub fn with_segment_capacity(types: Vec<DataType>, seg_capacity: usize) -> Self {
        assert!(seg_capacity > 0);
        ColStore {
            types,
            segments: Vec::new(),
            locs: HashMap::new(),
            live_count: 0,
            high_water: 0,
            seg_capacity,
        }
    }

    /// Live rows.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether the store holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// The segments, in `RowId` order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Inserts `row` under `id`. An existing id (live or tombstoned) is
    /// overwritten in place; an unseen id below the high-water mark
    /// rebuilds the segment list to splice it in at document order.
    pub fn insert(&mut self, id: u64, row: &[Value]) {
        if let Some(&(seg, slot)) = self.locs.get(&id) {
            let seg = &mut self.segments[seg as usize];
            if !seg.is_live(slot as usize) {
                seg.revive(slot as usize);
                self.live_count += 1;
            }
            seg.update(slot as usize, row);
            return;
        }
        if id < self.high_water {
            self.rebuild_with(id, row);
            return;
        }
        self.append_tail(id, row);
    }

    fn append_tail(&mut self, id: u64, row: &[Value]) {
        if self
            .segments
            .last()
            .is_none_or(|seg| seg.len() >= self.seg_capacity)
        {
            self.segments.push(Segment::new(&self.types));
        }
        let seg_idx = self.segments.len() - 1;
        let slot = self.segments[seg_idx].push(id, row);
        self.locs.insert(id, (seg_idx as u32, slot as u32));
        self.live_count += 1;
        self.high_water = id + 1;
    }

    /// Rebuilds every segment with `(id, row)` spliced in at its sorted
    /// position. Reclaims tombstoned slots and stale arena bytes, and
    /// recomputes zone maps from the surviving values only.
    fn rebuild_with(&mut self, id: u64, row: &[Value]) {
        let mut rows: Vec<(u64, Vec<Value>)> = self.scan().collect();
        let pos = rows.partition_point(|(existing, _)| *existing < id);
        rows.insert(pos, (id, row.to_vec()));
        let high_water = self.high_water.max(id + 1);
        self.segments.clear();
        self.locs.clear();
        self.live_count = 0;
        self.high_water = 0;
        for (id, row) in rows {
            self.append_tail(id, &row);
        }
        self.high_water = high_water;
    }

    /// Materializes the live row `id`.
    pub fn get(&self, id: u64) -> Option<Vec<Value>> {
        let &(seg, slot) = self.locs.get(&id)?;
        let seg = &self.segments[seg as usize];
        seg.is_live(slot as usize).then(|| seg.row(slot as usize))
    }

    /// Tombstones the live row `id`, returning its former values.
    pub fn delete(&mut self, id: u64) -> Option<Vec<Value>> {
        let &(seg, slot) = self.locs.get(&id)?;
        let seg = &mut self.segments[seg as usize];
        if !seg.is_live(slot as usize) {
            return None;
        }
        let old = seg.row(slot as usize);
        seg.delete(slot as usize);
        self.live_count -= 1;
        Some(old)
    }

    /// Overwrites the live row `id` in place, returning its former
    /// values. Zone maps widen to cover the new values.
    pub fn update(&mut self, id: u64, row: &[Value]) -> Option<Vec<Value>> {
        let &(seg, slot) = self.locs.get(&id)?;
        let seg = &mut self.segments[seg as usize];
        if !seg.is_live(slot as usize) {
            return None;
        }
        let old = seg.row(slot as usize);
        seg.update(slot as usize, row);
        Some(old)
    }

    /// Iterates live `(id, row)` pairs in `RowId` (document) order.
    pub fn scan(&self) -> impl Iterator<Item = (u64, Vec<Value>)> + '_ {
        self.segments.iter().flat_map(|seg| {
            (0..seg.len())
                .filter(|&slot| seg.is_live(slot))
                .map(move |slot| (seg.id_at(slot), seg.row(slot)))
        })
    }

    /// Splits segments into `(visited, pruned_count)` under `preds`'
    /// zone maps. With no predicates every non-empty segment is visited.
    /// Only segments with at least one live row participate.
    pub fn prune_segments(&self, preds: &[SimplePred]) -> (Vec<usize>, u64) {
        let mut visited = Vec::with_capacity(self.segments.len());
        let mut pruned = 0u64;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.live_count() == 0 {
                continue;
            }
            if seg.zones_admit(preds) {
                visited.push(i);
            } else {
                pruned += 1;
            }
        }
        (visited, pruned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_store(cap: usize) -> ColStore {
        ColStore::with_segment_capacity(vec![DataType::Int], cap)
    }

    fn ids(store: &ColStore) -> Vec<u64> {
        store.scan().map(|(id, _)| id).collect()
    }

    #[test]
    fn appends_roll_over_segment_boundaries() {
        let mut s = int_store(4);
        for i in 0..10 {
            s.insert(i, &[Value::Int(i as i64)]);
        }
        assert_eq!(s.segments().len(), 3);
        assert_eq!(s.len(), 10);
        assert_eq!(ids(&s), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_order_insert_rebuilds_into_document_order() {
        let mut s = int_store(4);
        for i in [0u64, 1, 5, 6] {
            s.insert(i, &[Value::Int(i as i64)]);
        }
        s.delete(1).unwrap();
        // Id 3 arrives late (WAL rollback shape): must land between 0 and 5.
        s.insert(3, &[Value::Int(33)]);
        assert_eq!(ids(&s), vec![0, 3, 5, 6]);
        assert_eq!(s.get(3).unwrap(), vec![Value::Int(33)]);
        // The rebuild dropped the tombstone for id 1 entirely.
        assert!(s.get(1).is_none());
        // High-water survives the rebuild: the next append still goes last.
        s.insert(7, &[Value::Int(7)]);
        assert_eq!(ids(&s), vec![0, 3, 5, 6, 7]);
    }

    #[test]
    fn reinsert_of_tombstoned_id_revives_in_place() {
        let mut s = int_store(4);
        for i in 0..3 {
            s.insert(i, &[Value::Int(i as i64)]);
        }
        s.delete(1).unwrap();
        assert_eq!(s.len(), 2);
        s.insert(1, &[Value::Int(11)]);
        assert_eq!(s.len(), 3);
        assert_eq!(ids(&s), vec![0, 1, 2]);
        assert_eq!(s.get(1).unwrap(), vec![Value::Int(11)]);
        // No rebuild happened: still a single segment with 3 slots.
        assert_eq!(s.segments().len(), 1);
    }

    #[test]
    fn delete_twice_and_missing_are_none() {
        let mut s = int_store(4);
        s.insert(0, &[Value::Int(0)]);
        assert!(s.delete(0).is_some());
        assert!(s.delete(0).is_none());
        assert!(s.delete(42).is_none());
        assert!(s.update(0, &[Value::Int(9)]).is_none());
    }

    #[test]
    fn pruning_skips_dead_and_out_of_range_segments() {
        use crate::segment::CmpOp;
        let mut s = int_store(2);
        for i in 0..6 {
            s.insert(i, &[Value::Int(i as i64 * 10)]);
        }
        // Kill segment 1 (values 20, 30) entirely.
        s.delete(2).unwrap();
        s.delete(3).unwrap();
        let pred = SimplePred {
            col: 0,
            op: CmpOp::Ge,
            lit: Value::Int(40),
        };
        let (visited, pruned) = s.prune_segments(std::slice::from_ref(&pred));
        // Segment 0 (0,10) pruned by zones; segment 1 skipped as dead
        // (not counted as pruned); segment 2 (40,50) visited.
        assert_eq!(visited, vec![2]);
        assert_eq!(pruned, 1);
    }
}
