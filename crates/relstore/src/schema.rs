//! Columns, table schemas and the catalog.

use std::collections::BTreeMap;

use crate::error::{RelError, RelResult};
use crate::value::{DataType, Value};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-preserving; lookups are case-insensitive like SQL).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: &str, ty: DataType) -> Self {
        Column {
            name: name.to_string(),
            ty,
        }
    }
}

/// The schema of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Column definitions in declaration order.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Creates a schema.
    pub fn new(name: &str, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.to_string(),
            columns,
        }
    }

    /// The index of column `name` (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The arity of the table.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Checks a row against the schema and coerces values to the declared
    /// column types (text arriving from sources becomes numeric where the
    /// schema says so — paper §2.2, "string and numeric data").
    pub fn check_row(&self, row: Vec<Value>) -> RelResult<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(RelError::SchemaMismatch(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, col)| {
                v.coerce(col.ty).ok_or_else(|| {
                    RelError::SchemaMismatch(format!(
                        "value for column {}.{} is not a {}",
                        self.name, col.name, col.ty
                    ))
                })
            })
            .collect()
    }
}

/// An index definition recorded in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name (unique across the database).
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed column names, in key order.
    pub columns: Vec<String>,
    /// Whether this is an inverted keyword index (single text column) as
    /// opposed to a B-tree value index.
    pub keyword: bool,
}

/// The catalog: schemas plus index definitions.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
    indexes: BTreeMap<String, IndexDef>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Registers a table schema.
    pub fn create_table(&mut self, schema: TableSchema) -> RelResult<()> {
        let key = Self::key(&schema.name);
        if self.tables.contains_key(&key) {
            return Err(RelError::AlreadyExists(schema.name));
        }
        if schema.columns.is_empty() {
            return Err(RelError::SchemaMismatch(format!(
                "table {} has no columns",
                schema.name
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for col in &schema.columns {
            if !seen.insert(col.name.to_ascii_lowercase()) {
                return Err(RelError::SchemaMismatch(format!(
                    "table {} declares column {:?} twice",
                    schema.name, col.name
                )));
            }
        }
        self.tables.insert(key, schema);
        Ok(())
    }

    /// Removes a table schema and all indexes over it.
    pub fn drop_table(&mut self, name: &str) -> RelResult<TableSchema> {
        let schema = self
            .tables
            .remove(&Self::key(name))
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))?;
        self.indexes
            .retain(|_, def| !def.table.eq_ignore_ascii_case(name));
        Ok(schema)
    }

    /// Looks up a table schema.
    pub fn table(&self, name: &str) -> RelResult<&TableSchema> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// Whether `name` is a known table.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// All table schemas, sorted by name.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Registers an index definition, verifying table and columns exist.
    pub fn create_index(&mut self, def: IndexDef) -> RelResult<()> {
        let key = Self::key(&def.name);
        if self.indexes.contains_key(&key) {
            return Err(RelError::AlreadyExists(def.name));
        }
        let schema = self.table(&def.table)?;
        for col in &def.columns {
            if schema.column_index(col).is_none() {
                return Err(RelError::UnknownColumn(format!("{}.{col}", def.table)));
            }
        }
        if def.keyword && def.columns.len() != 1 {
            return Err(RelError::SchemaMismatch(
                "keyword indexes cover exactly one column".into(),
            ));
        }
        self.indexes.insert(key, def);
        Ok(())
    }

    /// Removes an index definition.
    pub fn drop_index(&mut self, name: &str) -> RelResult<IndexDef> {
        self.indexes
            .remove(&Self::key(name))
            .ok_or_else(|| RelError::UnknownIndex(name.to_string()))
    }

    /// Looks up an index definition.
    pub fn index(&self, name: &str) -> RelResult<&IndexDef> {
        self.indexes
            .get(&Self::key(name))
            .ok_or_else(|| RelError::UnknownIndex(name.to_string()))
    }

    /// All indexes defined over `table`.
    pub fn indexes_on(&self, table: &str) -> Vec<&IndexDef> {
        self.indexes
            .values()
            .filter(|d| d.table.eq_ignore_ascii_case(table))
            .collect()
    }

    /// All index definitions.
    pub fn indexes(&self) -> impl Iterator<Item = &IndexDef> {
        self.indexes.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "elements",
            vec![
                Column::new("doc_id", DataType::Int),
                Column::new("path", DataType::Text),
                Column::new("val", DataType::Text),
            ],
        )
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("PATH"), Some(1));
        assert_eq!(s.column_index("doc_id"), Some(0));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn check_row_coerces_types() {
        let s = schema();
        let row = s
            .check_row(vec![
                Value::Text("7".into()),
                Value::Text("/a".into()),
                Value::Null,
            ])
            .unwrap();
        assert_eq!(row[0], Value::Int(7));
        assert_eq!(row[2], Value::Null);
    }

    #[test]
    fn check_row_rejects_bad_arity_and_types() {
        let s = schema();
        assert!(s.check_row(vec![Value::Int(1)]).is_err());
        assert!(s
            .check_row(vec![Value::Text("xy".into()), Value::Null, Value::Null])
            .is_err());
    }

    #[test]
    fn catalog_table_lifecycle() {
        let mut cat = Catalog::new();
        cat.create_table(schema()).unwrap();
        assert!(cat.has_table("ELEMENTS"));
        assert!(matches!(
            cat.create_table(schema()),
            Err(RelError::AlreadyExists(_))
        ));
        cat.drop_table("elements").unwrap();
        assert!(!cat.has_table("elements"));
        assert!(cat.drop_table("elements").is_err());
    }

    #[test]
    fn catalog_rejects_degenerate_tables() {
        let mut cat = Catalog::new();
        assert!(cat.create_table(TableSchema::new("empty", vec![])).is_err());
        assert!(cat
            .create_table(TableSchema::new(
                "dup",
                vec![
                    Column::new("x", DataType::Int),
                    Column::new("X", DataType::Text)
                ],
            ))
            .is_err());
    }

    #[test]
    fn catalog_index_lifecycle() {
        let mut cat = Catalog::new();
        cat.create_table(schema()).unwrap();
        cat.create_index(IndexDef {
            name: "idx_path".into(),
            table: "elements".into(),
            columns: vec!["path".into()],
            keyword: false,
        })
        .unwrap();
        assert_eq!(cat.indexes_on("elements").len(), 1);
        // Unknown column rejected.
        assert!(cat
            .create_index(IndexDef {
                name: "idx_bad".into(),
                table: "elements".into(),
                columns: vec!["nope".into()],
                keyword: false,
            })
            .is_err());
        // Duplicate name rejected.
        assert!(cat
            .create_index(IndexDef {
                name: "IDX_PATH".into(),
                table: "elements".into(),
                columns: vec!["val".into()],
                keyword: false,
            })
            .is_err());
        // Dropping the table drops its indexes.
        cat.drop_table("elements").unwrap();
        assert!(cat.index("idx_path").is_err());
    }

    #[test]
    fn keyword_index_requires_single_column() {
        let mut cat = Catalog::new();
        cat.create_table(schema()).unwrap();
        assert!(cat
            .create_index(IndexDef {
                name: "kw".into(),
                table: "elements".into(),
                columns: vec!["path".into(), "val".into()],
                keyword: true,
            })
            .is_err());
    }
}
