//! Plan execution.
//!
//! A streaming (pull-based iterator) executor: [`open`] compiles each
//! [`Plan`] operator into a cursor that yields one row at a time, so
//! `Filter`, `Project`, `Limit`, `Distinct` and the probe side of
//! `HashJoin` never materialize their inputs. Scan cursors read straight
//! out of the table's segmented column store: a base `Scan` (and a
//! `Filter` directly above one) becomes a columnar access path that
//! consults per-segment zone maps to skip whole segments
//! ([`ExecStats::segments_pruned`]), evaluates sargable conjuncts with
//! the vectorized kernels in [`crate::segment`], and materializes only
//! the columns the operators above actually reference. The pipeline
//! breakers — `Sort`, `Aggregate`, `TopK` and the build side of joins —
//! buffer the minimum they need and account for it in [`ExecStats`],
//! which is how tests pin the O(k) memory bound of `LIMIT`/Top-K
//! pushdown.
//!
//! The retained materialize-everything interpreter lives on in
//! [`crate::exec_reference`] as the oracle the property tests compare
//! against, row for row.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::rc::Rc;
use std::time::Instant;

use crate::colstore::ColStore;
use crate::db::Storage;
use crate::error::{RelError, RelResult};
use crate::expr::{eval, eval_predicate, RowSchema};
use crate::plan::{IndexAccess, Plan, ProjectItem, SortKey};
use crate::segment::{CmpOp, SimplePred};
use crate::sql::ast::{AggFunc, BinOp, Expr};
use crate::table::{Row, RowId, Table};
use crate::value::Value;

/// Counters published by one plan execution.
///
/// `buffered_peak` is the executor's materialization bound: the largest
/// number of rows simultaneously retained inside operator buffers (sort
/// runs, aggregation groups, join build sides, Top-K heaps, distinct
/// keys). A fully streaming pipeline — e.g. `LIMIT k` over a scan —
/// reports `0` regardless of table size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows pulled out of base-table access paths (scan, index, keyword).
    pub rows_scanned: u64,
    /// Peak number of rows held in operator buffers at any one moment.
    pub buffered_peak: u64,
    /// Rows the root operator produced.
    pub rows_emitted: u64,
    /// Number of index lookups performed (B-tree probes/range scans and
    /// keyword-index lookups); a plan with no index access reports `0`.
    pub index_probes: u64,
    /// Posting-list entries read out of keyword (inverted) indexes — the
    /// true cost of a `CONTAINS` access path, independent of how many of
    /// those postings survive visibility checks.
    pub keyword_postings_read: u64,
    /// Segments skipped entirely because their zone maps proved no row
    /// could satisfy a pushed-down predicate.
    pub segments_pruned: u64,
}

/// Shared mutable counters threaded through every cursor of one execution.
#[derive(Debug, Default)]
struct StatsCell {
    scanned: Cell<u64>,
    buffered: Cell<u64>,
    buffered_peak: Cell<u64>,
    index_probes: Cell<u64>,
    keyword_postings: Cell<u64>,
    segments_pruned: Cell<u64>,
}

impl StatsCell {
    fn scan_one(&self) {
        self.scanned.set(self.scanned.get() + 1);
    }

    fn scan_n(&self, n: u64) {
        self.scanned.set(self.scanned.get() + n);
    }

    fn prune_n(&self, n: u64) {
        self.segments_pruned.set(self.segments_pruned.get() + n);
    }

    fn buffer_grow(&self, n: u64) {
        let cur = self.buffered.get() + n;
        self.buffered.set(cur);
        if cur > self.buffered_peak.get() {
            self.buffered_peak.set(cur);
        }
    }

    fn buffer_shrink(&self, n: u64) {
        self.buffered.set(self.buffered.get().saturating_sub(n));
    }

    fn index_probe(&self) {
        self.index_probes.set(self.index_probes.get() + 1);
    }

    fn postings_read(&self, n: u64) {
        self.keyword_postings.set(self.keyword_postings.get() + n);
    }
}

/// A pull-based operator: yields owned rows (materialized out of the
/// column store, or built by an operator) until exhausted.
trait Cursor<'a> {
    /// Pulls the next row, or `None` when the operator is exhausted.
    fn next_row(&mut self) -> RelResult<Option<Row>>;
}

type BoxCursor<'a> = Box<dyn Cursor<'a> + 'a>;

/// Per-operator runtime profile produced by profiled execution
/// ([`execute_plan_profiled`] / `Database::explain_analyze`).
///
/// `elapsed_ns` is *self* (exclusive) time: the operator's inclusive
/// wall-time minus its children's, so summing `elapsed_ns` over a whole
/// tree reconstructs the root's inclusive time without double counting.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// One-line operator label, identical to the `EXPLAIN` rendering.
    pub op: String,
    /// Rows pulled from this operator's children (for leaf access paths,
    /// the rows read from storage — equal to `rows_out`).
    pub rows_in: u64,
    /// Rows this operator produced.
    pub rows_out: u64,
    /// Exclusive (self) wall-time in nanoseconds.
    pub elapsed_ns: u64,
    /// Inclusive wall-time in nanoseconds (self + children).
    pub total_ns: u64,
    /// The planner's estimated output rows for this operator, when it had
    /// a statistical basis — lets `EXPLAIN ANALYZE` show estimated vs
    /// actual per operator.
    pub est_rows: Option<f64>,
    /// Child operator profiles, in plan order.
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    /// Renders the profile as an indented tree, one operator per line:
    /// `label  [rows_in=… rows_out=… self=… est=…]`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let est = match self.est_rows {
            Some(e) => format!(" est={e:.0}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{:indent$}{}  [rows_in={} rows_out={} self={}{}]\n",
            "",
            self.op,
            self.rows_in,
            self.rows_out,
            format_ns(self.elapsed_ns),
            est,
            indent = depth * 2
        ));
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }

    /// Copies the planner's row estimates into the profile tree. Both
    /// trees were built from the same plan, so they match positionally;
    /// a shape mismatch (never expected) just stops the copy.
    pub(crate) fn annotate_estimates(&mut self, est: &crate::plan::PlanEstimate) {
        self.est_rows = est.rows;
        if self.children.len() == est.children.len() {
            for (c, e) in self.children.iter_mut().zip(&est.children) {
                c.annotate_estimates(e);
            }
        }
    }

    /// Sum of exclusive times over this subtree.
    pub fn tree_elapsed_ns(&self) -> u64 {
        self.elapsed_ns
            + self
                .children
                .iter()
                .map(OpProfile::tree_elapsed_ns)
                .sum::<u64>()
    }
}

/// Formats a nanosecond count with a human unit (`815ns`, `12.4µs`, ...).
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Per-operator cells filled in by [`ProfiledCursor`] while the query
/// runs; converted into an [`OpProfile`] tree afterwards.
struct ProfNode {
    label: String,
    rows_out: Cell<u64>,
    /// Inclusive wall-time accumulated across `next_row` calls.
    elapsed_ns: Cell<u64>,
    children: Vec<Rc<ProfNode>>,
}

impl ProfNode {
    fn to_profile(&self) -> OpProfile {
        let children: Vec<OpProfile> = self.children.iter().map(|c| c.to_profile()).collect();
        let total_ns = self.elapsed_ns.get();
        let child_total: u64 = children.iter().map(|c| c.total_ns).sum();
        let rows_out = self.rows_out.get();
        let rows_in = if children.is_empty() {
            // Leaf access path: what it read is what it produced.
            rows_out
        } else {
            children.iter().map(|c| c.rows_out).sum()
        };
        OpProfile {
            op: self.label.clone(),
            rows_in,
            rows_out,
            elapsed_ns: total_ns.saturating_sub(child_total),
            total_ns,
            est_rows: None,
            children,
        }
    }
}

/// Wraps an operator cursor, timing every `next_row` call and counting
/// produced rows into the operator's [`ProfNode`]. Only constructed when
/// profiling was requested, so unprofiled execution pays nothing.
struct ProfiledCursor<'a> {
    inner: BoxCursor<'a>,
    node: Rc<ProfNode>,
}

impl<'a> Cursor<'a> for ProfiledCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        let start = Instant::now();
        let out = self.inner.next_row();
        self.node
            .elapsed_ns
            .set(self.node.elapsed_ns.get() + start.elapsed().as_nanos() as u64);
        if matches!(out, Ok(Some(_))) {
            self.node.rows_out.set(self.node.rows_out.get() + 1);
        }
        out
    }
}

/// Execution context threaded through [`open`]: the shared stat cells plus
/// whether to wrap every operator in a [`ProfiledCursor`].
struct ExecCtx {
    stats: Rc<StatsCell>,
    profile: bool,
}

/// Executes a plan against storage, materializing the full result.
pub fn execute_plan(plan: &Plan, storage: &Storage) -> RelResult<(RowSchema, Vec<Row>)> {
    let (schema, rows, _) = execute_plan_with_stats(plan, storage)?;
    Ok((schema, rows))
}

/// Like [`execute_plan`], but also reports the execution counters.
pub fn execute_plan_with_stats(
    plan: &Plan,
    storage: &Storage,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats)> {
    let (schema, rows, stats, _) = run_plan(plan, storage, false)?;
    Ok((schema, rows, stats))
}

/// Like [`execute_plan_with_stats`], but additionally wraps every operator
/// in a timing/row-counting shim and returns the per-operator profile
/// tree. This is the engine behind `EXPLAIN ANALYZE`.
pub fn execute_plan_profiled(
    plan: &Plan,
    storage: &Storage,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats, OpProfile)> {
    let (schema, rows, stats, profile) = run_plan(plan, storage, true)?;
    Ok((
        schema,
        rows,
        stats,
        profile.expect("profiling was requested"),
    ))
}

fn run_plan(
    plan: &Plan,
    storage: &Storage,
    profile: bool,
) -> RelResult<(RowSchema, Vec<Row>, ExecStats, Option<OpProfile>)> {
    let ctx = ExecCtx {
        stats: Rc::new(StatsCell::default()),
        profile,
    };
    let (schema, mut cursor, root) = open(plan, storage, &ctx)?;
    let mut rows = Vec::new();
    while let Some(row) = cursor.next_row()? {
        rows.push(row);
    }
    let stats = ExecStats {
        rows_scanned: ctx.stats.scanned.get(),
        buffered_peak: ctx.stats.buffered_peak.get(),
        rows_emitted: rows.len() as u64,
        index_probes: ctx.stats.index_probes.get(),
        keyword_postings_read: ctx.stats.keyword_postings.get(),
        segments_pruned: ctx.stats.segments_pruned.get(),
    };
    Ok((schema, rows, stats, root.map(|n| n.to_profile())))
}

/// Opens `plan` as a child operator, collecting its profile node (if
/// profiling) into `children`.
fn open_child<'a>(
    plan: &'a Plan,
    storage: &'a Storage,
    ctx: &ExecCtx,
    children: &mut Vec<Rc<ProfNode>>,
) -> RelResult<(RowSchema, BoxCursor<'a>)> {
    let (schema, cursor, node) = open(plan, storage, ctx)?;
    if let Some(node) = node {
        children.push(node);
    }
    Ok((schema, cursor))
}

/// An opened operator: output schema, cursor, and its profile node when
/// the context asks for profiling.
type OpenedCursor<'a> = (RowSchema, BoxCursor<'a>, Option<Rc<ProfNode>>);

/// Compiles a plan operator into its output schema and a cursor (plus a
/// profile node when the context asks for profiling).
fn open<'a>(plan: &'a Plan, storage: &'a Storage, ctx: &ExecCtx) -> RelResult<OpenedCursor<'a>> {
    // Columnar access paths — a bare `Scan`, or a `Filter` directly over
    // one — are compiled against the segment store (zone-map pruning,
    // vectorized conjunct kernels) instead of the generic operator match.
    if let Some(access) = open_access(plan, storage, ctx, None)? {
        return Ok(access);
    }
    let stats = &ctx.stats;
    let mut kids: Vec<Rc<ProfNode>> = Vec::new();
    let (schema, cursor): (RowSchema, BoxCursor<'a>) = match plan {
        Plan::Scan { .. } => unreachable!("base scans are opened by open_access"),
        Plan::IndexScan {
            table,
            alias,
            index,
            access,
        } => {
            let t = storage.table(table)?;
            let idx = storage.btree_index(index)?;
            stats.index_probe();
            let mut ids = match access {
                IndexAccess::Exact(values) => {
                    if values.len() == idx.key_columns().len() {
                        idx.lookup(values)
                    } else {
                        idx.lookup_prefix(values)
                    }
                }
                IndexAccess::Range {
                    prefix,
                    lower,
                    upper,
                } => idx.range(prefix, bound_ref(lower), bound_ref(upper)),
            };
            // Return rows in insertion (document) order, matching Scan.
            ids.sort();
            let schema =
                RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
            (
                schema,
                Box::new(IdListCursor {
                    table: t,
                    ids: ids.into_iter(),
                    stats: Rc::clone(stats),
                }),
            )
        }
        Plan::KeywordScan {
            table,
            alias,
            index,
            keyword,
        } => {
            let t = storage.table(table)?;
            let idx = storage.keyword_index(index)?;
            stats.index_probe();
            let mut ids = idx.lookup(keyword);
            stats.postings_read(ids.len() as u64);
            ids.sort();
            let schema =
                RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
            (
                schema,
                Box::new(IdListCursor {
                    table: t,
                    ids: ids.into_iter(),
                    stats: Rc::clone(stats),
                }),
            )
        }
        Plan::Filter { input, predicate } => {
            let (schema, input) = open_child(input, storage, ctx, &mut kids)?;
            (
                schema.clone(),
                Box::new(FilterCursor {
                    input,
                    schema,
                    predicate,
                    pre_applied: false,
                }),
            )
        }
        Plan::NestedLoopJoin {
            left,
            right,
            condition,
        } => {
            let (ls, lcur) = open_child(left, storage, ctx, &mut kids)?;
            let (rs, rcur) = open_child(right, storage, ctx, &mut kids)?;
            let schema = ls.join(&rs);
            (
                schema.clone(),
                Box::new(NestedLoopCursor {
                    left: lcur,
                    right_input: Some(rcur),
                    right: Vec::new(),
                    schema,
                    condition: condition.as_ref(),
                    current_left: None,
                    right_pos: 0,
                    stats: Rc::clone(stats),
                }),
            )
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            semi,
        } => {
            let (ls, lcur) = open_child(left, storage, ctx, &mut kids)?;
            let (rs, rcur) = open_child(right, storage, ctx, &mut kids)?;
            if *semi {
                // Existence-only: emit each matching left row once; the
                // right side's columns are dropped (planner guaranteed
                // nothing downstream references them).
                (
                    ls.clone(),
                    Box::new(SemiJoinCursor {
                        left: lcur,
                        left_schema: ls,
                        left_keys,
                        build: None,
                        right_input: Some((rs, rcur)),
                        right_keys,
                        stats: Rc::clone(stats),
                    }),
                )
            } else {
                let schema = ls.join(&rs);
                (
                    schema.clone(),
                    Box::new(HashJoinCursor {
                        left: lcur,
                        left_schema: ls,
                        schema,
                        left_keys,
                        residual: residual.as_ref(),
                        build: None,
                        right_input: Some((rs, rcur)),
                        right_keys,
                        probe: None,
                        stats: Rc::clone(stats),
                    }),
                )
            }
        }
        Plan::Project { input, items, .. } => {
            if !ctx.profile {
                if let Some(cursor) = open_fused(input, items, storage, ctx)? {
                    return Ok((projected_schema(items), cursor, None));
                }
            }
            // Tell a columnar access path which columns the projection
            // reads, so it skips materializing the rest (notably text).
            let needed: Vec<&Expr> = items.iter().map(|i| &i.expr).collect();
            let (schema, input) = match open_access(input, storage, ctx, Some(&needed))? {
                Some((schema, cursor, node)) => {
                    kids.extend(node);
                    (schema, cursor)
                }
                None => open_child(input, storage, ctx, &mut kids)?,
            };
            (
                projected_schema(items),
                Box::new(ProjectCursor {
                    cols: column_fast_paths(items.iter().map(|i| &i.expr), &schema),
                    input,
                    schema,
                    items,
                }),
            )
        }
        Plan::Aggregate {
            input,
            group_by,
            items,
            ..
        } => {
            let needed: Vec<&Expr> = group_by
                .iter()
                .chain(items.iter().map(|i| &i.expr))
                .collect();
            let (schema, input) = match open_access(input, storage, ctx, Some(&needed))? {
                Some((schema, cursor, node)) => {
                    kids.extend(node);
                    (schema, cursor)
                }
                None => open_child(input, storage, ctx, &mut kids)?,
            };
            (
                projected_schema(items),
                Box::new(AggregateCursor {
                    input: Some(input),
                    schema,
                    group_by,
                    items,
                    output: Vec::new().into_iter(),
                    stats: Rc::clone(stats),
                }),
            )
        }
        Plan::Sort { input, keys } => {
            let (schema, input) = open_child(input, storage, ctx, &mut kids)?;
            (
                schema,
                Box::new(SortCursor {
                    input: Some(input),
                    keys,
                    sorted: Vec::new().into_iter(),
                    stats: Rc::clone(stats),
                }),
            )
        }
        Plan::TopK {
            input,
            keys,
            limit,
            offset,
        } => {
            let (schema, input) = open_child(input, storage, ctx, &mut kids)?;
            (
                schema,
                Box::new(TopKCursor {
                    input: Some(input),
                    keys,
                    limit: *limit,
                    offset: *offset,
                    output: Vec::new().into_iter(),
                    stats: Rc::clone(stats),
                }),
            )
        }
        Plan::Distinct { input, visible } => {
            let (schema, input) = open_child(input, storage, ctx, &mut kids)?;
            (
                schema,
                Box::new(DistinctCursor {
                    input,
                    visible: *visible,
                    seen: HashSet::new(),
                    stats: Rc::clone(stats),
                }),
            )
        }
        Plan::Limit {
            input,
            limit,
            offset,
        } => {
            let (schema, input) = open_child(input, storage, ctx, &mut kids)?;
            (
                schema,
                Box::new(LimitCursor {
                    input,
                    to_skip: *offset,
                    remaining: *limit,
                }),
            )
        }
    };
    if !ctx.profile {
        return Ok((schema, cursor, None));
    }
    let node = Rc::new(ProfNode {
        label: plan.describe(),
        rows_out: Cell::new(0),
        elapsed_ns: Cell::new(0),
        children: kids,
    });
    let cursor = Box::new(ProfiledCursor {
        inner: cursor,
        node: Rc::clone(&node),
    });
    Ok((schema, cursor, Some(node)))
}

/// Opens a storage-level access path — a bare `Scan`, or a `Filter`
/// directly over one — against the segmented column store. Returns
/// `None` for any other plan shape.
///
/// `needed` is the set of expressions the parent operator evaluates over
/// the scanned rows (projection items, aggregate arguments); when given,
/// only the columns those expressions (and the filter predicate)
/// reference are materialized — the rest come out as `Null`, which is
/// sound because nothing downstream reads them.
///
/// Predicate pushdown: when the *entire* filter predicate is infallible
/// (pure comparisons/logic — can never raise an evaluation error), its
/// sargable conjuncts are compiled into [`SimplePred`]s. Zone maps then
/// skip whole segments, and the vectorized kernels pre-filter slots.
/// A conjunct rejecting a row implies the full predicate rejects it, so
/// early-dropping is observationally identical; the [`FilterCursor`] on
/// top re-evaluates the full predicate on the survivors only when some
/// conjunct did *not* compile to a sarg — a fully covered predicate is
/// already enforced row-exactly by the kernels.
fn open_access<'a>(
    plan: &'a Plan,
    storage: &'a Storage,
    ctx: &ExecCtx,
    needed: Option<&[&'a Expr]>,
) -> RelResult<Option<OpenedCursor<'a>>> {
    let (scan_plan, filter) = match plan {
        Plan::Scan { .. } => (plan, None),
        Plan::Filter { input, predicate } if matches!(&**input, Plan::Scan { .. }) => {
            (&**input, Some(predicate))
        }
        _ => return Ok(None),
    };
    let Plan::Scan { table, alias } = scan_plan else {
        unreachable!("matched above");
    };
    let t = storage.table(table)?;
    let schema = RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
    let mask = needed
        .and_then(|exprs| column_mask(exprs.iter().copied().chain(filter), &schema, schema.len()));
    let (sargs, covered) = match filter {
        Some(pred) if expr_infallible(pred, &schema) => compile_sargs(pred, &schema),
        _ => (Vec::new(), false),
    };
    // Re-evaluation is skippable only when the kernels actually run
    // (non-empty sargs) and they cover the whole predicate.
    let pre_applied = covered && !sargs.is_empty();
    let store = t.store();
    let stats = &ctx.stats;
    let scan: BoxCursor<'a> = if sargs.is_empty() {
        Box::new(ScanCursor {
            store,
            seg: 0,
            slot: 0,
            mask,
            stats: Rc::clone(stats),
        })
    } else {
        let prune_with: &[SimplePred] = if storage.zone_map_pruning() {
            &sargs
        } else {
            &[]
        };
        let (visited, pruned) = store.prune_segments(prune_with);
        stats.prune_n(pruned);
        Box::new(SegScanCursor {
            store,
            visited: visited.into_iter(),
            sargs,
            mask,
            current: None,
            stats: Rc::clone(stats),
        })
    };
    let (cursor, node) = maybe_profile(scan, scan_plan, ctx, Vec::new());
    let Some(predicate) = filter else {
        return Ok(Some((schema, cursor, node)));
    };
    let filtered: BoxCursor<'a> = Box::new(FilterCursor {
        input: cursor,
        schema: schema.clone(),
        predicate,
        pre_applied,
    });
    let (cursor, node) = maybe_profile(filtered, plan, ctx, node.into_iter().collect());
    Ok(Some((schema, cursor, node)))
}

/// Attempts the fully fused `Project(Filter(Scan))` access path: every
/// conjunct of the predicate must compile to a sarg (so the kernels
/// enforce it row-exactly) and every projection item must be a bare
/// resolvable column. Returns `None` for any other shape. Kept off the
/// profiling path so EXPLAIN ANALYZE still shows the per-operator tree.
fn open_fused<'a>(
    plan: &'a Plan,
    items: &'a [ProjectItem],
    storage: &'a Storage,
    ctx: &ExecCtx,
) -> RelResult<Option<BoxCursor<'a>>> {
    let Plan::Filter { input, predicate } = plan else {
        return Ok(None);
    };
    let Plan::Scan { table, alias } = &**input else {
        return Ok(None);
    };
    let t = storage.table(table)?;
    let schema = RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
    if !expr_infallible(predicate, &schema) {
        return Ok(None);
    }
    let (sargs, covered) = compile_sargs(predicate, &schema);
    if !covered || sargs.is_empty() {
        return Ok(None);
    }
    let mut cols = Vec::with_capacity(items.len());
    for item in items {
        match &item.expr {
            Expr::Column { table, name } => match schema.resolve(table.as_deref(), name) {
                Ok(i) => cols.push(i),
                Err(_) => return Ok(None),
            },
            _ => return Ok(None),
        }
    }
    let store = t.store();
    let prune_with: &[SimplePred] = if storage.zone_map_pruning() {
        &sargs
    } else {
        &[]
    };
    let (visited, pruned) = store.prune_segments(prune_with);
    ctx.stats.prune_n(pruned);
    Ok(Some(Box::new(FusedScanCursor {
        store,
        visited: visited.into_iter(),
        sargs,
        cols,
        batch: Vec::new().into_iter(),
        stats: Rc::clone(&ctx.stats),
    })))
}

/// Wraps `cursor` in a [`ProfiledCursor`] when profiling is on.
fn maybe_profile<'a>(
    cursor: BoxCursor<'a>,
    plan: &Plan,
    ctx: &ExecCtx,
    children: Vec<Rc<ProfNode>>,
) -> (BoxCursor<'a>, Option<Rc<ProfNode>>) {
    if !ctx.profile {
        return (cursor, None);
    }
    let node = Rc::new(ProfNode {
        label: plan.describe(),
        rows_out: Cell::new(0),
        elapsed_ns: Cell::new(0),
        children,
    });
    let cursor = Box::new(ProfiledCursor {
        inner: cursor,
        node: Rc::clone(&node),
    });
    (cursor, Some(node))
}

/// Resolves every column reference in `exprs` into a materialization
/// mask. `None` (materialize everything) when a reference fails to
/// resolve — evaluation will surface that error on full rows.
pub(crate) fn column_mask<'e>(
    exprs: impl Iterator<Item = &'e Expr>,
    schema: &RowSchema,
    arity: usize,
) -> Option<Vec<bool>> {
    let mut mask = vec![false; arity];
    for expr in exprs {
        if !mark_columns(expr, schema, &mut mask) {
            return None;
        }
    }
    Some(mask)
}

fn mark_columns(expr: &Expr, schema: &RowSchema, mask: &mut [bool]) -> bool {
    match expr {
        Expr::Column { table, name } => match schema.resolve(table.as_deref(), name) {
            Ok(i) => {
                mask[i] = true;
                true
            }
            Err(_) => false,
        },
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Binary { left, right, .. } => {
            mark_columns(left, schema, mask) && mark_columns(right, schema, mask)
        }
        Expr::Not(e) | Expr::Neg(e) => mark_columns(e, schema, mask),
        Expr::IsNull { expr, .. } => mark_columns(expr, schema, mask),
        Expr::Like { expr, pattern, .. } => {
            mark_columns(expr, schema, mask) && mark_columns(pattern, schema, mask)
        }
        Expr::InList { expr, list, .. } => {
            mark_columns(expr, schema, mask) && list.iter().all(|e| mark_columns(e, schema, mask))
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            mark_columns(expr, schema, mask)
                && mark_columns(low, schema, mask)
                && mark_columns(high, schema, mask)
        }
        Expr::Contains { column, keyword } => {
            mark_columns(column, schema, mask) && mark_columns(keyword, schema, mask)
        }
        Expr::Matches { column, pattern } => {
            mark_columns(column, schema, mask) && mark_columns(pattern, schema, mask)
        }
        Expr::Aggregate { arg, .. } => arg.as_deref().is_none_or(|e| mark_columns(e, schema, mask)),
    }
}

/// Whether evaluating `expr` can never return an error: only literals,
/// resolvable column references, comparisons, `AND`/`OR`/`NOT`,
/// `IS NULL`, `IN` and `BETWEEN`. Arithmetic (overflow, division),
/// `LIKE`/`CONTAINS`/`MATCHES` (type errors), parameters and aggregates
/// are all fallible. Only an infallible predicate may be pushed below
/// the row-at-a-time filter: early-dropping a row must not suppress an
/// error the reference executor would raise.
pub(crate) fn expr_infallible(expr: &Expr, schema: &RowSchema) -> bool {
    match expr {
        Expr::Literal(_) => true,
        Expr::Column { table, name } => schema.resolve(table.as_deref(), name).is_ok(),
        Expr::Binary { op, left, right } => {
            (op.is_comparison() || matches!(op, BinOp::And | BinOp::Or))
                && expr_infallible(left, schema)
                && expr_infallible(right, schema)
        }
        Expr::Not(e) => expr_infallible(e, schema),
        Expr::IsNull { expr, .. } => expr_infallible(expr, schema),
        Expr::InList { expr, list, .. } => {
            expr_infallible(expr, schema) && list.iter().all(|e| expr_infallible(e, schema))
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            expr_infallible(expr, schema)
                && expr_infallible(low, schema)
                && expr_infallible(high, schema)
        }
        _ => false,
    }
}

/// Extracts the sargable top-level conjuncts of `expr`:
/// `column <cmp> literal` (either orientation) and non-negated
/// `column BETWEEN literal AND literal` (as a `>=`/`<=` pair). Dropping
/// a row on a false-or-unknown conjunct is exactly what the WHERE clause
/// would do, so the kernels can apply these before full evaluation.
///
/// The returned flag is true when the sargs *fully cover* `expr` — the
/// predicate is exactly an AND-tree of compiled conjuncts. The kernels
/// mirror [`Value::compare`] for every column/literal type combination
/// (cross-type and NULL comparisons drop everything, just like
/// three-valued logic drops false-or-unknown), so a covered predicate
/// needs no per-row re-evaluation: every kernel survivor passes, every
/// kernel drop would have been dropped by the WHERE clause.
pub(crate) fn compile_sargs(expr: &Expr, schema: &RowSchema) -> (Vec<SimplePred>, bool) {
    let mut out = Vec::new();
    let covered = collect_sargs(expr, schema, &mut out);
    (out, covered)
}

fn collect_sargs(expr: &Expr, schema: &RowSchema, out: &mut Vec<SimplePred>) -> bool {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            // No short-circuit: both sides must still contribute sargs.
            let l = collect_sargs(left, schema, out);
            let r = collect_sargs(right, schema, out);
            l && r
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let (col, lit, op) = match (&**left, &**right) {
                (Expr::Column { table, name }, Expr::Literal(lit)) => {
                    (schema.resolve(table.as_deref(), name), lit, cmp_op(*op))
                }
                (Expr::Literal(lit), Expr::Column { table, name }) => (
                    schema.resolve(table.as_deref(), name),
                    lit,
                    cmp_op(*op).flip(),
                ),
                _ => return false,
            };
            match col {
                Ok(col) => {
                    out.push(SimplePred {
                        col,
                        op,
                        lit: lit.clone(),
                    });
                    true
                }
                Err(_) => false,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            if let (Expr::Column { table, name }, Expr::Literal(lo), Expr::Literal(hi)) =
                (&**expr, &**low, &**high)
            {
                if let Ok(col) = schema.resolve(table.as_deref(), name) {
                    out.push(SimplePred {
                        col,
                        op: CmpOp::Ge,
                        lit: lo.clone(),
                    });
                    out.push(SimplePred {
                        col,
                        op: CmpOp::Le,
                        lit: hi.clone(),
                    });
                    return true;
                }
            }
            false
        }
        _ => false,
    }
}

fn cmp_op(op: BinOp) -> CmpOp {
    match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        other => unreachable!("{other:?} is not a comparison"),
    }
}

impl CmpOp {
    /// Mirrors the operator across the operands: `lit op col` ⇢
    /// `col op.flip() lit`.
    fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Full-table scan materializing rows in insertion (document) order,
/// segment by segment. Counts each live row as it is yielded, so `LIMIT`
/// over a scan stays O(k) in `rows_scanned`.
struct ScanCursor<'a> {
    store: &'a ColStore,
    seg: usize,
    slot: usize,
    mask: Option<Vec<bool>>,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for ScanCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        while let Some(seg) = self.store.segments().get(self.seg) {
            while self.slot < seg.len() {
                let slot = self.slot;
                self.slot += 1;
                if seg.is_live(slot) {
                    self.stats.scan_one();
                    let mut row = Vec::new();
                    seg.row_into(slot, self.mask.as_deref(), &mut row);
                    return Ok(Some(row));
                }
            }
            self.seg += 1;
            self.slot = 0;
        }
        Ok(None)
    }
}

/// Predicate-pushdown scan: visits only the segments whose zone maps
/// admit the sargs, evaluates the sargs with the vectorized kernels into
/// a selection vector, and materializes surviving slots. `rows_scanned`
/// counts the live rows of each *visited* segment (pruned segments show
/// up in `segments_pruned` instead), charged when the segment is entered
/// — segment granularity, still lazy under `LIMIT`.
struct SegScanCursor<'a> {
    store: &'a ColStore,
    visited: std::vec::IntoIter<usize>,
    sargs: Vec<SimplePred>,
    mask: Option<Vec<bool>>,
    current: Option<(usize, std::vec::IntoIter<u32>)>,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for SegScanCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        loop {
            if let Some((seg_idx, sel)) = &mut self.current {
                if let Some(slot) = sel.next() {
                    let seg = &self.store.segments()[*seg_idx];
                    let mut row = Vec::new();
                    seg.row_into(slot as usize, self.mask.as_deref(), &mut row);
                    return Ok(Some(row));
                }
                self.current = None;
            }
            let Some(seg_idx) = self.visited.next() else {
                return Ok(None);
            };
            let seg = &self.store.segments()[seg_idx];
            self.stats.scan_n(seg.live_count() as u64);
            let mut sel = Vec::with_capacity(seg.live_count());
            seg.live_slots(0..seg.len(), &mut sel);
            for pred in &self.sargs {
                seg.apply_pred(pred, &mut sel);
            }
            self.current = Some((seg_idx, sel.into_iter()));
        }
    }
}

/// Fully fused `Project(Filter(Scan))`: the kernels enforce the entire
/// predicate (every conjunct compiled to a sarg) and every projection
/// item is a bare column, so each segment's survivors materialize
/// directly in projected layout — one columnar gather per projected
/// column per segment, no intermediate full-width row, and no filter or
/// projection operator above. Stats match [`SegScanCursor`]:
/// segment-granular `rows_scanned`, zone-map prunes charged at open.
struct FusedScanCursor<'a> {
    store: &'a ColStore,
    visited: std::vec::IntoIter<usize>,
    sargs: Vec<SimplePred>,
    /// Projected column positions, in output order.
    cols: Vec<usize>,
    batch: std::vec::IntoIter<Row>,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for FusedScanCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        loop {
            if let Some(row) = self.batch.next() {
                return Ok(Some(row));
            }
            let Some(seg_idx) = self.visited.next() else {
                return Ok(None);
            };
            let seg = &self.store.segments()[seg_idx];
            self.stats.scan_n(seg.live_count() as u64);
            let mut sel = Vec::with_capacity(seg.live_count());
            seg.live_slots(0..seg.len(), &mut sel);
            for pred in &self.sargs {
                seg.apply_pred(pred, &mut sel);
            }
            let mut batch: Vec<Row> = sel
                .iter()
                .map(|_| Vec::with_capacity(self.cols.len()))
                .collect();
            for &col in &self.cols {
                seg.gather_column(col, &sel, &mut batch);
            }
            self.batch = batch.into_iter();
        }
    }
}

/// Index/keyword access: materializes a precomputed id list's rows.
struct IdListCursor<'a> {
    table: &'a Table,
    ids: std::vec::IntoIter<RowId>,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for IdListCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        for id in self.ids.by_ref() {
            if let Some(row) = self.table.get(id) {
                self.stats.scan_one();
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Streaming predicate filter.
struct FilterCursor<'a> {
    input: BoxCursor<'a>,
    schema: RowSchema,
    predicate: &'a Expr,
    /// True when the scan kernels below already enforce the *entire*
    /// predicate (every conjunct compiled to a sarg): survivors are
    /// known to pass, so the per-row re-evaluation is skipped.
    pre_applied: bool,
}

impl<'a> Cursor<'a> for FilterCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        while let Some(row) = self.input.next_row()? {
            if self.pre_applied || eval_predicate(self.predicate, &self.schema, &row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Streaming projection.
struct ProjectCursor<'a> {
    input: BoxCursor<'a>,
    schema: RowSchema,
    items: &'a [ProjectItem],
    /// Per-item fast path, resolved once at open: `Some(i)` when the
    /// item is a plain column reference, which is then copied straight
    /// out of the row instead of walking name resolution per row. Items
    /// that fail to resolve stay `None` so `eval` raises the identical
    /// error on the first row.
    cols: Vec<Option<usize>>,
}

/// Resolves each projection item that is a bare column reference to its
/// row position.
pub(crate) fn column_fast_paths(
    items: impl Iterator<Item = impl std::borrow::Borrow<Expr>>,
    schema: &RowSchema,
) -> Vec<Option<usize>> {
    items
        .map(|item| match item.borrow() {
            Expr::Column { table, name } => schema.resolve(table.as_deref(), name).ok(),
            _ => None,
        })
        .collect()
}

impl<'a> Cursor<'a> for ProjectCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        let Some(row) = self.input.next_row()? else {
            return Ok(None);
        };
        let projected: Row = self
            .items
            .iter()
            .zip(&self.cols)
            .map(|(item, col)| match col {
                Some(i) => Ok(row[*i].clone()),
                None => eval(&item.expr, &self.schema, &row),
            })
            .collect::<RelResult<_>>()?;
        Ok(Some(projected))
    }
}

/// Nested-loop join: the right (inner) side is buffered once, the left
/// side streams.
struct NestedLoopCursor<'a> {
    left: BoxCursor<'a>,
    /// Right input, consumed into `right` on the first pull.
    right_input: Option<BoxCursor<'a>>,
    right: Vec<Row>,
    schema: RowSchema,
    condition: Option<&'a Expr>,
    current_left: Option<Row>,
    right_pos: usize,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for NestedLoopCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        if let Some(mut rcur) = self.right_input.take() {
            while let Some(row) = rcur.next_row()? {
                self.stats.buffer_grow(1);
                self.right.push(row);
            }
        }
        loop {
            if self.current_left.is_none() {
                self.current_left = self.left.next_row()?;
                self.right_pos = 0;
                if self.current_left.is_none() {
                    return Ok(None);
                }
            }
            let lrow = self.current_left.as_ref().expect("checked above");
            while self.right_pos < self.right.len() {
                let rrow = &self.right[self.right_pos];
                self.right_pos += 1;
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                let keep = match self.condition {
                    Some(cond) => eval_predicate(cond, &self.schema, &combined)?,
                    None => true,
                };
                if keep {
                    return Ok(Some(combined));
                }
            }
            self.current_left = None;
        }
    }
}

/// Evaluates join key expressions; any NULL key disqualifies the row.
pub(crate) fn eval_join_keys(
    keys: &[Expr],
    schema: &RowSchema,
    row: &[Value],
) -> RelResult<Option<Vec<Value>>> {
    let key: Vec<Value> = keys
        .iter()
        .map(|k| eval(k, schema, row))
        .collect::<RelResult<_>>()?;
    Ok(if key.iter().any(Value::is_null) {
        None
    } else {
        Some(key)
    })
}

/// The buffered build side of a hash join.
struct BuildSide {
    rows: Vec<Row>,
    index: HashMap<Vec<Value>, Vec<usize>>,
}

impl BuildSide {
    /// Drains `input`, keeping only rows with fully non-NULL keys (rows
    /// with a NULL key can never join).
    fn build(
        schema: &RowSchema,
        keys: &[Expr],
        mut input: BoxCursor<'_>,
        stats: &StatsCell,
    ) -> RelResult<BuildSide> {
        let mut side = BuildSide {
            rows: Vec::new(),
            index: HashMap::new(),
        };
        while let Some(row) = input.next_row()? {
            if let Some(key) = eval_join_keys(keys, schema, &row)? {
                stats.buffer_grow(1);
                side.index.entry(key).or_default().push(side.rows.len());
                side.rows.push(row);
            }
        }
        Ok(side)
    }
}

/// Hash join: the right side is the build side, the left side streams as
/// the probe. Output rows are left-columns-then-right, in probe order.
///
/// Buffering the right side unconditionally is safe because the planner
/// only ever places a single table's access path there (left-deep join
/// construction — see the `Plan::HashJoin` site in `planner.rs`), so the
/// build never materializes an intermediate join result. Choosing the
/// smaller *table* as the build side would need row-count stats the
/// catalog does not carry yet.
struct HashJoinCursor<'a> {
    left: BoxCursor<'a>,
    left_schema: RowSchema,
    schema: RowSchema,
    left_keys: &'a [Expr],
    residual: Option<&'a Expr>,
    build: Option<BuildSide>,
    right_input: Option<(RowSchema, BoxCursor<'a>)>,
    right_keys: &'a [Expr],
    /// The probe row currently being expanded: `(row, matches, position)`.
    probe: Option<(Row, Vec<usize>, usize)>,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for HashJoinCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        if let Some((rs, rcur)) = self.right_input.take() {
            self.build = Some(BuildSide::build(&rs, self.right_keys, rcur, &self.stats)?);
        }
        let build = self.build.as_ref().expect("built above");
        loop {
            if let Some((lrow, matches, pos)) = &mut self.probe {
                while *pos < matches.len() {
                    let rrow = &build.rows[matches[*pos]];
                    *pos += 1;
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    let keep = match self.residual {
                        Some(cond) => eval_predicate(cond, &self.schema, &combined)?,
                        None => true,
                    };
                    if keep {
                        return Ok(Some(combined));
                    }
                }
                self.probe = None;
            }
            let Some(lrow) = self.left.next_row()? else {
                return Ok(None);
            };
            let Some(key) = eval_join_keys(self.left_keys, &self.left_schema, &lrow)? else {
                continue;
            };
            if let Some(matches) = build.index.get(&key) {
                self.probe = Some((lrow, matches.clone(), 0));
            }
        }
    }
}

/// Hash semi-join: the right side collapses to a key set, each matching
/// left row passes through unchanged (and unclowned).
struct SemiJoinCursor<'a> {
    left: BoxCursor<'a>,
    left_schema: RowSchema,
    left_keys: &'a [Expr],
    build: Option<HashSet<Vec<Value>>>,
    right_input: Option<(RowSchema, BoxCursor<'a>)>,
    right_keys: &'a [Expr],
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for SemiJoinCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        if let Some((rs, mut rcur)) = self.right_input.take() {
            let mut keys = HashSet::new();
            while let Some(row) = rcur.next_row()? {
                if let Some(key) = eval_join_keys(self.right_keys, &rs, &row)? {
                    if keys.insert(key) {
                        self.stats.buffer_grow(1);
                    }
                }
            }
            self.build = Some(keys);
        }
        let keys = self.build.as_ref().expect("built above");
        while let Some(lrow) = self.left.next_row()? {
            if let Some(key) = eval_join_keys(self.left_keys, &self.left_schema, &lrow)? {
                if keys.contains(&key) {
                    return Ok(Some(lrow));
                }
            }
        }
        Ok(None)
    }
}

/// Grouped aggregation: a pipeline breaker that buffers each group's rows
/// until the input is exhausted, then streams the per-group results.
struct AggregateCursor<'a> {
    input: Option<BoxCursor<'a>>,
    schema: RowSchema,
    group_by: &'a [Expr],
    items: &'a [ProjectItem],
    output: std::vec::IntoIter<Row>,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for AggregateCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        if let Some(mut input) = self.input.take() {
            // Group rows; with no GROUP BY everything is one global group.
            let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            while let Some(row) = input.next_row()? {
                let key: Vec<Value> = self
                    .group_by
                    .iter()
                    .map(|e| eval(e, &self.schema, &row))
                    .collect::<RelResult<_>>()?;
                self.stats.buffer_grow(1);
                match index.entry(key.clone()) {
                    Entry::Occupied(slot) => groups[*slot.get()].1.push(row),
                    Entry::Vacant(slot) => {
                        slot.insert(groups.len());
                        groups.push((key, vec![row]));
                    }
                }
            }
            if groups.is_empty() && self.group_by.is_empty() {
                // Global aggregate over empty input yields one row.
                groups.push((Vec::new(), Vec::new()));
            }
            let mut out = Vec::with_capacity(groups.len());
            for (_, group_rows) in &groups {
                let null_row;
                let representative: &[Value] = match group_rows.first() {
                    Some(r) => r,
                    None => {
                        null_row = vec![Value::Null; self.schema.len()];
                        &null_row
                    }
                };
                let mut result_row = Vec::with_capacity(self.items.len());
                for item in self.items {
                    let materialized =
                        materialize_aggregates(&item.expr, &self.schema, group_rows)?;
                    result_row.push(eval(&materialized, &self.schema, representative)?);
                }
                out.push(result_row);
            }
            for (_, group_rows) in &groups {
                self.stats.buffer_shrink(group_rows.len() as u64);
            }
            self.stats.buffer_grow(out.len() as u64);
            self.output = out.into_iter();
        }
        if let Some(row) = self.output.next() {
            self.stats.buffer_shrink(1);
            return Ok(Some(row));
        }
        Ok(None)
    }
}

/// Full sort: a pipeline breaker buffering the whole input.
struct SortCursor<'a> {
    input: Option<BoxCursor<'a>>,
    keys: &'a [SortKey],
    sorted: std::vec::IntoIter<Row>,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for SortCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        if let Some(mut input) = self.input.take() {
            let mut rows = Vec::new();
            while let Some(row) = input.next_row()? {
                self.stats.buffer_grow(1);
                rows.push(row);
            }
            rows.sort_by(|a, b| compare_rows(a, b, self.keys));
            self.sorted = rows.into_iter();
        }
        if let Some(row) = self.sorted.next() {
            self.stats.buffer_shrink(1);
            return Ok(Some(row));
        }
        Ok(None)
    }
}

/// One retained row in the Top-K heap. Ordering is `(sort keys, input
/// sequence)`, so the heap reproduces a stable sort's tie behaviour
/// exactly; the `BinaryHeap` is a max-heap whose top is the first row to
/// evict.
struct HeapEntry<'a> {
    keys: &'a [SortKey],
    row: Row,
    seq: u64,
}

impl HeapEntry<'_> {
    fn order(&self, other: &Self) -> Ordering {
        compare_rows(&self.row, &other.row, self.keys).then(self.seq.cmp(&other.seq))
    }
}

impl PartialEq for HeapEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry<'_> {}

impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order(other)
    }
}

/// Fused `ORDER BY … LIMIT k OFFSET o`: retains at most `o + k` rows in a
/// bounded heap instead of sorting the whole input.
struct TopKCursor<'a> {
    input: Option<BoxCursor<'a>>,
    keys: &'a [SortKey],
    limit: u64,
    offset: u64,
    output: std::vec::IntoIter<Row>,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for TopKCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        if let Some(mut input) = self.input.take() {
            let cap = self.offset.saturating_add(self.limit) as usize;
            if cap == 0 {
                // LIMIT 0: nothing can come out; don't even pull the input.
                return Ok(None);
            }
            let mut heap: BinaryHeap<HeapEntry<'a>> = BinaryHeap::with_capacity(cap + 1);
            let mut seq = 0u64;
            while let Some(row) = input.next_row()? {
                let entry = HeapEntry {
                    keys: self.keys,
                    row,
                    seq,
                };
                seq += 1;
                if heap.len() < cap {
                    self.stats.buffer_grow(1);
                    heap.push(entry);
                } else if entry < *heap.peek().expect("cap > 0") {
                    heap.pop();
                    heap.push(entry);
                }
            }
            let kept = heap.into_sorted_vec(); // ascending (keys, seq)
            let skipped = (self.offset as usize).min(kept.len());
            self.stats.buffer_shrink(skipped as u64);
            self.output = kept
                .into_iter()
                .skip(self.offset as usize)
                .map(|e| e.row)
                .collect::<Vec<_>>()
                .into_iter();
        }
        if let Some(row) = self.output.next() {
            self.stats.buffer_shrink(1);
            return Ok(Some(row));
        }
        Ok(None)
    }
}

/// Streaming duplicate elimination over the first `visible` columns.
struct DistinctCursor<'a> {
    input: BoxCursor<'a>,
    visible: usize,
    seen: HashSet<Vec<Value>>,
    stats: Rc<StatsCell>,
}

impl<'a> Cursor<'a> for DistinctCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        while let Some(row) = self.input.next_row()? {
            // Probe with the borrowed prefix; clone the key only for the
            // first occurrence that actually enters the set.
            let key = &row[..self.visible.min(row.len())];
            if !self.seen.contains(key) {
                self.seen.insert(key.to_vec());
                self.stats.buffer_grow(1);
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Streaming `LIMIT`/`OFFSET`: stops pulling its input once satisfied —
/// this is the operator that makes `LIMIT k` over a huge scan O(k).
struct LimitCursor<'a> {
    input: BoxCursor<'a>,
    to_skip: u64,
    remaining: Option<u64>,
}

impl<'a> Cursor<'a> for LimitCursor<'a> {
    fn next_row(&mut self) -> RelResult<Option<Row>> {
        if self.remaining == Some(0) {
            return Ok(None);
        }
        while let Some(row) = self.input.next_row()? {
            if self.to_skip > 0 {
                self.to_skip -= 1;
                continue;
            }
            if let Some(r) = &mut self.remaining {
                *r -= 1;
            }
            return Ok(Some(row));
        }
        Ok(None)
    }
}

pub(crate) fn bound_ref(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

pub(crate) fn projected_schema(items: &[ProjectItem]) -> RowSchema {
    RowSchema::new(
        items
            .iter()
            .map(|i| crate::expr::ColumnBinding {
                table: String::new(),
                name: i.name.clone(),
            })
            .collect(),
    )
}

pub(crate) fn compare_rows(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for key in keys {
        let ord = a[key.column].total_cmp(&b[key.column]);
        let ord = if key.descending { ord.reverse() } else { ord };
        if !ord.is_eq() {
            return ord;
        }
    }
    Ordering::Equal
}

/// Replaces every `Aggregate` subexpression with the literal computed over
/// the group's rows, leaving a plain expression to evaluate against the
/// group's representative row.
pub(crate) fn materialize_aggregates<R: AsRef<[Value]>>(
    expr: &Expr,
    schema: &RowSchema,
    rows: &[R],
) -> RelResult<Expr> {
    Ok(match expr {
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => Expr::Literal(compute_aggregate(
            *func,
            arg.as_deref(),
            *distinct,
            schema,
            rows,
        )?),
        Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => expr.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(materialize_aggregates(left, schema, rows)?),
            right: Box::new(materialize_aggregates(right, schema, rows)?),
        },
        Expr::Not(e) => Expr::Not(Box::new(materialize_aggregates(e, schema, rows)?)),
        Expr::Neg(e) => Expr::Neg(Box::new(materialize_aggregates(e, schema, rows)?)),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(materialize_aggregates(expr, schema, rows)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(materialize_aggregates(expr, schema, rows)?),
            pattern: Box::new(materialize_aggregates(pattern, schema, rows)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(materialize_aggregates(expr, schema, rows)?),
            list: list
                .iter()
                .map(|e| materialize_aggregates(e, schema, rows))
                .collect::<RelResult<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(materialize_aggregates(expr, schema, rows)?),
            low: Box::new(materialize_aggregates(low, schema, rows)?),
            high: Box::new(materialize_aggregates(high, schema, rows)?),
            negated: *negated,
        },
        Expr::Contains { column, keyword } => Expr::Contains {
            column: Box::new(materialize_aggregates(column, schema, rows)?),
            keyword: Box::new(materialize_aggregates(keyword, schema, rows)?),
        },
        Expr::Matches { column, pattern } => Expr::Matches {
            column: Box::new(materialize_aggregates(column, schema, rows)?),
            pattern: Box::new(materialize_aggregates(pattern, schema, rows)?),
        },
    })
}

pub(crate) fn compute_aggregate<R: AsRef<[Value]>>(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    schema: &RowSchema,
    rows: &[R],
) -> RelResult<Value> {
    // Collect the (non-null) argument values.
    let mut values: Vec<Value> = Vec::new();
    for row in rows {
        match arg {
            Some(e) => {
                let v = eval(e, schema, row.as_ref())?;
                if !v.is_null() {
                    values.push(v);
                }
            }
            None => values.push(Value::Int(1)), // COUNT(*)
        }
    }
    if distinct {
        let mut seen = HashSet::new();
        values.retain(|v| seen.insert(v.clone()));
    }
    match func {
        AggFunc::Count => Ok(Value::Int(if arg.is_none() {
            rows.len() as i64
        } else {
            values.len() as i64
        })),
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            if all_int {
                // Exact integer accumulation: an i128 cannot overflow over
                // any number of i64 addends this engine can hold, and the
                // result is range-checked instead of silently truncated
                // through f64 (which corrupts totals beyond 2^53). AVG
                // shares the exact sum and divides once at the end, so the
                // result is independent of accumulation order — which is
                // what lets incremental view maintenance reproduce it
                // byte-for-byte.
                let mut sum: i128 = 0;
                for v in &values {
                    if let Value::Int(i) = v {
                        sum += *i as i128;
                    }
                }
                if func == AggFunc::Avg {
                    return Ok(Value::Float(sum as f64 / values.len() as f64));
                }
                return i64::try_from(sum)
                    .map(Value::Int)
                    .map_err(|_| RelError::Eval(format!("integer overflow in SUM (total {sum})")));
            }
            let mut sum = 0.0;
            for v in &values {
                sum += v.as_f64().ok_or_else(|| {
                    RelError::Eval(format!("{func:?} over non-numeric value {v}"))
                })?;
            }
            if func == AggFunc::Avg {
                Ok(Value::Float(sum / values.len() as f64))
            } else {
                Ok(Value::Float(sum))
            }
        }
        AggFunc::Min => Ok(values
            .into_iter()
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(values
            .into_iter()
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
    }
}
