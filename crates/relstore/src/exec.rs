//! Plan execution.
//!
//! A straightforward pull-everything interpreter: each operator produces a
//! fully materialized `(schema, rows)` pair. Materialization keeps the
//! engine simple and is a good fit for the workload shape the paper
//! describes — selective index-driven lookups over a large warehouse, with
//! result sets sized for a human or a downstream tool.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use crate::db::Storage;
use crate::error::{RelError, RelResult};
use crate::expr::{eval, eval_predicate, RowSchema};
use crate::plan::{IndexAccess, Plan, ProjectItem, SortKey};
use crate::sql::ast::{AggFunc, Expr};
use crate::table::Row;
use crate::value::Value;

/// Executes a plan against storage.
pub fn execute_plan(plan: &Plan, storage: &Storage) -> RelResult<(RowSchema, Vec<Row>)> {
    match plan {
        Plan::Scan { table, alias } => {
            let t = storage.table(table)?;
            let schema =
                RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
            let rows = t.scan().map(|(_, r)| r.clone()).collect();
            Ok((schema, rows))
        }
        Plan::IndexScan {
            table,
            alias,
            index,
            access,
        } => {
            let t = storage.table(table)?;
            let idx = storage.btree_index(index)?;
            let mut ids = match access {
                IndexAccess::Exact(values) => {
                    if values.len() == idx.key_columns().len() {
                        idx.lookup(values)
                    } else {
                        idx.lookup_prefix(values)
                    }
                }
                IndexAccess::Range {
                    prefix,
                    lower,
                    upper,
                } => idx.range(prefix, bound_ref(lower), bound_ref(upper)),
            };
            // Return rows in insertion (document) order, matching Scan.
            ids.sort();
            let schema =
                RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
            let rows = ids
                .into_iter()
                .filter_map(|id| t.get(id).cloned())
                .collect();
            Ok((schema, rows))
        }
        Plan::KeywordScan {
            table,
            alias,
            index,
            keyword,
        } => {
            let t = storage.table(table)?;
            let idx = storage.keyword_index(index)?;
            let mut ids = idx.lookup(keyword);
            ids.sort();
            let schema =
                RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
            let rows = ids
                .into_iter()
                .filter_map(|id| t.get(id).cloned())
                .collect();
            Ok((schema, rows))
        }
        Plan::Filter { input, predicate } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let mut out = Vec::new();
            for row in rows {
                if eval_predicate(predicate, &schema, &row)? {
                    out.push(row);
                }
            }
            Ok((schema, out))
        }
        Plan::NestedLoopJoin {
            left,
            right,
            condition,
        } => {
            let (ls, lrows) = execute_plan(left, storage)?;
            let (rs, rrows) = execute_plan(right, storage)?;
            let schema = ls.join(&rs);
            let mut out = Vec::new();
            for lrow in &lrows {
                for rrow in &rrows {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    match condition {
                        Some(cond) => {
                            if eval_predicate(cond, &schema, &combined)? {
                                out.push(combined);
                            }
                        }
                        None => out.push(combined),
                    }
                }
            }
            Ok((schema, out))
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            semi,
        } => {
            let (ls, lrows) = execute_plan(left, storage)?;
            let (rs, rrows) = execute_plan(right, storage)?;
            // Keys are evaluated once per row; NULL keys never join.
            let eval_keys =
                |keys: &[Expr], schema: &RowSchema, row: &Row| -> RelResult<Option<Vec<Value>>> {
                    let key: Vec<Value> = keys
                        .iter()
                        .map(|k| eval(k, schema, row))
                        .collect::<RelResult<_>>()?;
                    Ok(if key.iter().any(Value::is_null) {
                        None
                    } else {
                        Some(key)
                    })
                };
            if *semi {
                // Existence-only: emit each left row at most once and drop
                // the right side's columns (planner guaranteed nothing
                // downstream references them and the query is DISTINCT).
                let mut table: HashSet<Vec<Value>> = HashSet::new();
                for rrow in &rrows {
                    if let Some(key) = eval_keys(right_keys, &rs, rrow)? {
                        table.insert(key);
                    }
                }
                let mut out = Vec::new();
                for lrow in lrows {
                    if let Some(key) = eval_keys(left_keys, &ls, &lrow)? {
                        if table.contains(&key) {
                            out.push(lrow);
                        }
                    }
                }
                return Ok((ls, out));
            }
            let schema = ls.join(&rs);
            let mut out = Vec::new();
            // Build the hash table on the smaller input; probe with the
            // larger. Output rows are always left-columns-then-right.
            if lrows.len() <= rrows.len() {
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, lrow) in lrows.iter().enumerate() {
                    if let Some(key) = eval_keys(left_keys, &ls, lrow)? {
                        table.entry(key).or_default().push(i);
                    }
                }
                for rrow in &rrows {
                    let Some(key) = eval_keys(right_keys, &rs, rrow)? else {
                        continue;
                    };
                    if let Some(matches) = table.get(&key) {
                        for &i in matches {
                            let mut combined = lrows[i].clone();
                            combined.extend(rrow.iter().cloned());
                            match residual {
                                Some(cond) => {
                                    if eval_predicate(cond, &schema, &combined)? {
                                        out.push(combined);
                                    }
                                }
                                None => out.push(combined),
                            }
                        }
                    }
                }
            } else {
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, rrow) in rrows.iter().enumerate() {
                    if let Some(key) = eval_keys(right_keys, &rs, rrow)? {
                        table.entry(key).or_default().push(i);
                    }
                }
                for lrow in &lrows {
                    let Some(key) = eval_keys(left_keys, &ls, lrow)? else {
                        continue;
                    };
                    if let Some(matches) = table.get(&key) {
                        for &i in matches {
                            let mut combined = lrow.clone();
                            combined.extend(rrows[i].iter().cloned());
                            match residual {
                                Some(cond) => {
                                    if eval_predicate(cond, &schema, &combined)? {
                                        out.push(combined);
                                    }
                                }
                                None => out.push(combined),
                            }
                        }
                    }
                }
            }
            Ok((schema, out))
        }
        Plan::Project { input, items, .. } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let out_schema = projected_schema(items);
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let projected: Row = items
                    .iter()
                    .map(|item| eval(&item.expr, &schema, &row))
                    .collect::<RelResult<_>>()?;
                out.push(projected);
            }
            Ok((out_schema, out))
        }
        Plan::Aggregate {
            input,
            group_by,
            items,
            ..
        } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let out_schema = projected_schema(items);
            // Group rows; with no GROUP BY everything is one global group.
            let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            for row in rows {
                let key: Vec<Value> = group_by
                    .iter()
                    .map(|e| eval(e, &schema, &row))
                    .collect::<RelResult<_>>()?;
                match index.entry(key.clone()) {
                    Entry::Occupied(slot) => groups[*slot.get()].1.push(row),
                    Entry::Vacant(slot) => {
                        slot.insert(groups.len());
                        groups.push((key, vec![row]));
                    }
                }
            }
            if groups.is_empty() && group_by.is_empty() {
                // Global aggregate over empty input yields one row.
                groups.push((Vec::new(), Vec::new()));
            }
            let mut out = Vec::with_capacity(groups.len());
            for (_, group_rows) in &groups {
                let null_row;
                let representative: &Row = match group_rows.first() {
                    Some(r) => r,
                    None => {
                        null_row = vec![Value::Null; schema.len()];
                        &null_row
                    }
                };
                let mut result_row = Vec::with_capacity(items.len());
                for item in items {
                    let materialized = materialize_aggregates(&item.expr, &schema, group_rows)?;
                    result_row.push(eval(&materialized, &schema, representative)?);
                }
                out.push(result_row);
            }
            Ok((out_schema, out))
        }
        Plan::Sort { input, keys } => {
            let (schema, mut rows) = execute_plan(input, storage)?;
            rows.sort_by(|a, b| compare_rows(a, b, keys));
            Ok((schema, rows))
        }
        Plan::Distinct { input, visible } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let mut seen: HashSet<Vec<Value>> = HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                let key: Vec<Value> = row.iter().take(*visible).cloned().collect();
                if seen.insert(key) {
                    out.push(row);
                }
            }
            Ok((schema, out))
        }
        Plan::Limit {
            input,
            limit,
            offset,
        } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let out = rows
                .into_iter()
                .skip(*offset as usize)
                .take(limit.map(|l| l as usize).unwrap_or(usize::MAX))
                .collect();
            Ok((schema, out))
        }
    }
}

fn bound_ref(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

fn projected_schema(items: &[ProjectItem]) -> RowSchema {
    RowSchema::new(
        items
            .iter()
            .map(|i| crate::expr::ColumnBinding {
                table: String::new(),
                name: i.name.clone(),
            })
            .collect(),
    )
}

fn compare_rows(a: &Row, b: &Row, keys: &[SortKey]) -> std::cmp::Ordering {
    for key in keys {
        let ord = a[key.column].total_cmp(&b[key.column]);
        let ord = if key.descending { ord.reverse() } else { ord };
        if !ord.is_eq() {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Replaces every `Aggregate` subexpression with the literal computed over
/// the group's rows, leaving a plain expression to evaluate against the
/// group's representative row.
fn materialize_aggregates(expr: &Expr, schema: &RowSchema, rows: &[Row]) -> RelResult<Expr> {
    Ok(match expr {
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => Expr::Literal(compute_aggregate(
            *func,
            arg.as_deref(),
            *distinct,
            schema,
            rows,
        )?),
        Expr::Literal(_) | Expr::Column { .. } => expr.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(materialize_aggregates(left, schema, rows)?),
            right: Box::new(materialize_aggregates(right, schema, rows)?),
        },
        Expr::Not(e) => Expr::Not(Box::new(materialize_aggregates(e, schema, rows)?)),
        Expr::Neg(e) => Expr::Neg(Box::new(materialize_aggregates(e, schema, rows)?)),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(materialize_aggregates(expr, schema, rows)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(materialize_aggregates(expr, schema, rows)?),
            pattern: Box::new(materialize_aggregates(pattern, schema, rows)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(materialize_aggregates(expr, schema, rows)?),
            list: list
                .iter()
                .map(|e| materialize_aggregates(e, schema, rows))
                .collect::<RelResult<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(materialize_aggregates(expr, schema, rows)?),
            low: Box::new(materialize_aggregates(low, schema, rows)?),
            high: Box::new(materialize_aggregates(high, schema, rows)?),
            negated: *negated,
        },
        Expr::Contains { column, keyword } => Expr::Contains {
            column: Box::new(materialize_aggregates(column, schema, rows)?),
            keyword: Box::new(materialize_aggregates(keyword, schema, rows)?),
        },
        Expr::Matches { column, pattern } => Expr::Matches {
            column: Box::new(materialize_aggregates(column, schema, rows)?),
            pattern: Box::new(materialize_aggregates(pattern, schema, rows)?),
        },
    })
}

fn compute_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
    schema: &RowSchema,
    rows: &[Row],
) -> RelResult<Value> {
    // Collect the (non-null) argument values.
    let mut values: Vec<Value> = Vec::new();
    for row in rows {
        match arg {
            Some(e) => {
                let v = eval(e, schema, row)?;
                if !v.is_null() {
                    values.push(v);
                }
            }
            None => values.push(Value::Int(1)), // COUNT(*)
        }
    }
    if distinct {
        let mut seen = HashSet::new();
        values.retain(|v| seen.insert(v.clone()));
    }
    match func {
        AggFunc::Count => Ok(Value::Int(if arg.is_none() {
            rows.len() as i64
        } else {
            values.len() as i64
        })),
        AggFunc::Sum | AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            let mut sum = 0.0;
            for v in &values {
                sum += v.as_f64().ok_or_else(|| {
                    RelError::Eval(format!("{func:?} over non-numeric value {v}"))
                })?;
            }
            if func == AggFunc::Avg {
                Ok(Value::Float(sum / values.len() as f64))
            } else if all_int {
                Ok(Value::Int(sum as i64))
            } else {
                Ok(Value::Float(sum))
            }
        }
        AggFunc::Min => Ok(values
            .into_iter()
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(values
            .into_iter()
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
    }
}
