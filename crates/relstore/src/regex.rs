//! A small regular-expression engine for the `MATCHES` predicate.
//!
//! The paper argues (§4, Discovery Link comparison) that meaningful
//! bioinformatics queries "often require more sophisticated conditions
//! than the SQL query language can express, for example, regular
//! expression pattern matching" — sequence motifs being the canonical
//! case (§2.2). This module implements the engine behind the SQL
//! extension `MATCHES(column, 'pattern')`: a classic Thompson-style NFA
//! built by recursive descent, with linear-time simulation (no
//! backtracking blow-up on hostile patterns).
//!
//! Supported syntax — the PROSITE-style subset motif work needs:
//!
//! * literal characters (case-sensitive), `.` any character;
//! * character classes `[abc]`, ranges `[a-z0-9]`, negation `[^abc]`;
//! * repetition `*`, `+`, `?` and counted `{n}`, `{n,}`, `{n,m}`;
//! * alternation `|` and grouping `(...)`;
//! * anchors `^` and `$` (a pattern without anchors is unanchored — it
//!   matches anywhere in the text, like `grep`);
//! * escapes `\.` `\*` `\\` etc. for metacharacters.

use std::fmt;

/// A compiled pattern.
///
/// ```
/// use xomatiq_relstore::regex::Pattern;
/// let motif = Pattern::compile("N[^P][ST]").unwrap();
/// assert!(motif.is_match("MKNVTLAGRA"));
/// assert!(!motif.is_match("MKNPTLAGRA"));
/// ```
#[derive(Debug, Clone)]
pub struct Pattern {
    program: Vec<Inst>,
    anchored_start: bool,
}

/// A compile error with a message and position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the pattern.
    pub position: usize,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RegexError {}

/// One NFA instruction.
#[derive(Debug, Clone)]
enum Inst {
    /// Match one character satisfying the test, advance.
    Char(CharTest),
    /// Fork execution to both targets.
    Split(usize, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Match only at end of input.
    EndAnchor,
    /// Accept.
    Accept,
}

/// A single-character test.
#[derive(Debug, Clone)]
enum CharTest {
    /// Exactly this character.
    Literal(char),
    /// Any character.
    Any,
    /// A set of ranges, possibly negated.
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
}

impl CharTest {
    fn matches(&self, c: char) -> bool {
        match self {
            CharTest::Literal(l) => *l == c,
            CharTest::Any => true,
            CharTest::Class { negated, ranges } => {
                let inside = ranges.iter().any(|(lo, hi)| *lo <= c && c <= *hi);
                inside != *negated
            }
        }
    }
}

impl Pattern {
    /// Compiles `pattern`.
    pub fn compile(pattern: &str) -> Result<Pattern, RegexError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Compiler {
            chars,
            pos: 0,
            program: Vec::new(),
        };
        let anchored_start = p.eat('^');
        p.alternation()?;
        if p.pos < p.chars.len() {
            return Err(p.error("unexpected character"));
        }
        p.program.push(Inst::Accept);
        Ok(Pattern {
            program: p.program,
            anchored_start,
        })
    }

    /// Whether the pattern matches anywhere in `text` (or at the anchored
    /// positions when `^`/`$` are present).
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        if self.anchored_start {
            return self.run(&chars, 0);
        }
        (0..=chars.len()).any(|start| self.run(&chars, start))
    }

    /// Thompson NFA simulation from one start offset.
    fn run(&self, text: &[char], start: usize) -> bool {
        let mut current = vec![false; self.program.len()];
        let mut next = vec![false; self.program.len()];
        let mut any_current = false;
        self.add_thread(0, start == text.len(), &mut current, &mut any_current);
        let mut i = start;
        loop {
            // Check acceptance in the current thread set.
            if current
                .iter()
                .enumerate()
                .any(|(pc, live)| *live && matches!(self.program[pc], Inst::Accept))
            {
                return true;
            }
            if i >= text.len() || !any_current {
                return false;
            }
            let c = text[i];
            i += 1;
            let at_end = i == text.len();
            next.iter_mut().for_each(|b| *b = false);
            let mut any_next = false;
            let live: Vec<usize> = current
                .iter()
                .enumerate()
                .filter(|(_, l)| **l)
                .map(|(pc, _)| pc)
                .collect();
            for pc in live {
                if let Inst::Char(test) = &self.program[pc] {
                    if test.matches(c) {
                        self.add_thread(pc + 1, at_end, &mut next, &mut any_next);
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
            any_current = any_next;
        }
    }

    /// Adds `pc` and everything reachable through epsilon transitions.
    fn add_thread(&self, pc: usize, at_end: bool, set: &mut [bool], any: &mut bool) {
        if pc >= self.program.len() || set[pc] {
            return;
        }
        match &self.program[pc] {
            Inst::Split(a, b) => {
                // Mark visited to guard against epsilon loops like `(a*)*`.
                set[pc] = true;
                let (a, b) = (*a, *b);
                self.add_thread(a, at_end, set, any);
                self.add_thread(b, at_end, set, any);
            }
            Inst::Jump(t) => {
                set[pc] = true;
                let t = *t;
                self.add_thread(t, at_end, set, any);
            }
            Inst::EndAnchor => {
                set[pc] = true;
                if at_end {
                    self.add_thread(pc + 1, at_end, set, any);
                }
            }
            Inst::Char(_) | Inst::Accept => {
                set[pc] = true;
                *any = true;
            }
        }
    }
}

struct Compiler {
    chars: Vec<char>,
    pos: usize,
    program: Vec<Inst>,
}

impl Compiler {
    fn error(&self, message: &str) -> RegexError {
        RegexError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<(), RegexError> {
        let start = self.program.len();
        self.concat()?;
        if self.peek() != Some('|') {
            return Ok(());
        }
        // Rewrite: insert a Split before the first branch; each previous
        // branch jumps past the rest once finished.
        let mut branch_ends = Vec::new();
        while self.eat('|') {
            // Shift the existing branch down by one to make room for Split.
            let first_len = self.program.len() - start;
            self.program.insert(start, Inst::Split(start + 1, 0));
            shift_targets(&mut self.program, start, 1);
            let _ = first_len;
            // The completed branch jumps to the (eventual) end.
            self.program.push(Inst::Jump(usize::MAX));
            branch_ends.push(self.program.len() - 1);
            let second = self.program.len();
            if let Inst::Split(_, ref mut b) = self.program[start] {
                *b = second;
            }
            self.concat()?;
            // If another '|' follows, the loop repeats treating everything
            // from `start` as the first branch again.
        }
        let end = self.program.len();
        for pc in branch_ends {
            if let Inst::Jump(ref mut t) = self.program[pc] {
                *t = end;
            }
        }
        Ok(())
    }

    /// concat := repeat*
    fn concat(&mut self) -> Result<(), RegexError> {
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            self.repeat()?;
        }
        Ok(())
    }

    /// repeat := atom ('*' | '+' | '?' | '{n[,m]}')?
    fn repeat(&mut self) -> Result<(), RegexError> {
        let atom_start = self.program.len();
        self.atom()?;
        match self.peek() {
            Some('*') => {
                self.pos += 1;
                // split(atom, past); atom; jump(split)
                self.program
                    .insert(atom_start, Inst::Split(atom_start + 1, 0));
                shift_targets(&mut self.program, atom_start, 1);
                self.program.push(Inst::Jump(atom_start));
                let past = self.program.len();
                if let Inst::Split(_, ref mut b) = self.program[atom_start] {
                    *b = past;
                }
            }
            Some('+') => {
                self.pos += 1;
                // atom; split(atom, past)
                self.program
                    .push(Inst::Split(atom_start, self.program.len() + 1));
            }
            Some('?') => {
                self.pos += 1;
                self.program
                    .insert(atom_start, Inst::Split(atom_start + 1, 0));
                shift_targets(&mut self.program, atom_start, 1);
                let past = self.program.len();
                if let Inst::Split(_, ref mut b) = self.program[atom_start] {
                    *b = past;
                }
            }
            Some('{') => {
                self.pos += 1;
                let atom: Vec<Inst> = self.program.drain(atom_start..).collect();
                let (min, max) = self.counted_bounds()?;
                // min copies, then (max-min) optional copies or a star.
                for _ in 0..min {
                    self.append_copy(&atom, atom_start);
                }
                match max {
                    Some(max) => {
                        if max < min {
                            return Err(self.error("{n,m} with m < n"));
                        }
                        for _ in 0..(max - min) {
                            let opt_start = self.program.len();
                            self.program.push(Inst::Split(opt_start + 1, 0));
                            self.append_copy(&atom, atom_start);
                            let past = self.program.len();
                            if let Inst::Split(_, ref mut b) = self.program[opt_start] {
                                *b = past;
                            }
                        }
                    }
                    None => {
                        // `{n,}`: a trailing star.
                        let star_start = self.program.len();
                        self.program.push(Inst::Split(star_start + 1, 0));
                        self.append_copy(&atom, atom_start);
                        self.program.push(Inst::Jump(star_start));
                        let past = self.program.len();
                        if let Inst::Split(_, ref mut b) = self.program[star_start] {
                            *b = past;
                        }
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Appends a copy of a compiled atom, relocating internal targets.
    ///
    /// The atom was drained out of the program starting at `origin`; its
    /// internal Split/Jump targets are still absolute with respect to
    /// that original layout, so each copy rebases them by the offset
    /// between the copy position and the origin.
    fn append_copy(&mut self, atom: &[Inst], origin: usize) {
        let new_start = self.program.len();
        let delta = new_start as isize - origin as isize;
        for inst in atom {
            self.program.push(match inst {
                Inst::Split(a, b) => Inst::Split(
                    (*a as isize + delta) as usize,
                    (*b as isize + delta) as usize,
                ),
                Inst::Jump(t) => Inst::Jump((*t as isize + delta) as usize),
                other => other.clone(),
            });
        }
    }

    fn counted_bounds(&mut self) -> Result<(usize, Option<usize>), RegexError> {
        let min = self.number()?;
        if self.eat('}') {
            return Ok((min, Some(min)));
        }
        if !self.eat(',') {
            return Err(self.error("expected ',' or '}' in counted repetition"));
        }
        if self.eat('}') {
            return Ok((min, None));
        }
        let max = self.number()?;
        if !self.eat('}') {
            return Err(self.error("expected '}' in counted repetition"));
        }
        Ok((min, Some(max)))
    }

    fn number(&mut self) -> Result<usize, RegexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected a number"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().map_err(|_| self.error("number too large"))
    }

    /// atom := '(' alternation ')' | class | '.' | '$' | escaped | literal
    fn atom(&mut self) -> Result<(), RegexError> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                self.alternation()?;
                if !self.eat(')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(())
            }
            Some('[') => {
                self.pos += 1;
                let negated = self.eat('^');
                let mut ranges = Vec::new();
                loop {
                    match self.peek() {
                        None => return Err(self.error("unclosed character class")),
                        Some(']') if !ranges.is_empty() => {
                            self.pos += 1;
                            break;
                        }
                        Some(mut c) => {
                            self.pos += 1;
                            if c == '\\' {
                                c = self.escaped()?;
                            }
                            if self.peek() == Some('-')
                                && self.chars.get(self.pos + 1).is_some_and(|n| *n != ']')
                            {
                                self.pos += 1;
                                let mut hi = self
                                    .peek()
                                    .ok_or_else(|| self.error("unclosed character class"))?;
                                self.pos += 1;
                                if hi == '\\' {
                                    hi = self.escaped()?;
                                }
                                if hi < c {
                                    return Err(self.error("inverted range"));
                                }
                                ranges.push((c, hi));
                            } else {
                                ranges.push((c, c));
                            }
                        }
                    }
                }
                self.program
                    .push(Inst::Char(CharTest::Class { negated, ranges }));
                Ok(())
            }
            Some('.') => {
                self.pos += 1;
                self.program.push(Inst::Char(CharTest::Any));
                Ok(())
            }
            Some('$') => {
                self.pos += 1;
                self.program.push(Inst::EndAnchor);
                Ok(())
            }
            Some('\\') => {
                self.pos += 1;
                let c = self.escaped()?;
                self.program.push(Inst::Char(CharTest::Literal(c)));
                Ok(())
            }
            Some(c) if !"*+?{".contains(c) => {
                self.pos += 1;
                self.program.push(Inst::Char(CharTest::Literal(c)));
                Ok(())
            }
            Some(_) => Err(self.error("repetition with nothing to repeat")),
            None => Err(self.error("unexpected end of pattern")),
        }
    }

    fn escaped(&mut self) -> Result<char, RegexError> {
        match self.peek() {
            Some(c) => {
                self.pos += 1;
                Ok(match c {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                })
            }
            None => Err(self.error("dangling escape")),
        }
    }
}

/// Shifts every instruction target >= `from` by `by` (after an insert).
/// `usize::MAX` targets are unpatched alternation sentinels and are left
/// alone.
fn shift_targets(program: &mut [Inst], from: usize, by: usize) {
    for (idx, inst) in program.iter_mut().enumerate() {
        // Never rewrite targets of the instruction we just inserted.
        if idx == from {
            continue;
        }
        match inst {
            Inst::Split(a, b) => {
                if *a >= from && *a != usize::MAX {
                    *a += by;
                }
                if *b >= from && *b != usize::MAX {
                    *b += by;
                }
            }
            Inst::Jump(t) if *t >= from && *t != usize::MAX => {
                *t += by;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Pattern::compile(pattern).unwrap().is_match(text)
    }

    #[test]
    fn literals_and_any() {
        assert!(m("acgt", "aaacgtt"));
        assert!(!m("acgt", "acg"));
        assert!(m("a.g", "aXg"));
        assert!(!m("a.g", "ag"));
    }

    #[test]
    fn anchors() {
        assert!(m("^acg", "acgt"));
        assert!(!m("^cgt", "acgt"));
        assert!(m("cgt$", "acgt"));
        assert!(!m("acg$", "acgt"));
        assert!(m("^acgt$", "acgt"));
        assert!(!m("^acgt$", "acgtt"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }

    #[test]
    fn classes() {
        assert!(m("[abc]", "zebra"));
        assert!(!m("[xyz]", "abc"));
        assert!(m("[a-f]+", "beef"));
        assert!(m("[^ac]", "acb"));
        assert!(!m("[^abc]", "abc"));
        assert!(m("[0-9]{3}", "ec123x"));
        assert!(m(r"[\]]", "]"));
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn counted_repetition() {
        assert!(m("^a{3}$", "aaa"));
        assert!(!m("^a{3}$", "aa"));
        assert!(m("^a{2,}$", "aaaa"));
        assert!(!m("^a{2,}$", "a"));
        assert!(m("^a{1,3}$", "aa"));
        assert!(!m("^a{1,3}$", "aaaa"));
        assert!(m("^(ab){2}$", "abab"));
        assert!(m("^(a|b){3}$", "aba"));
        assert!(Pattern::compile("a{3,1}").is_err());
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("^(cat|dog)$", "cat"));
        assert!(!m("^(cat|dog)$", "cow"));
        assert!(m("a(b|c)*d", "abcbcd"));
        assert!(m("x|y|z", "only z here"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"1\.14\.17\.3", "EC 1.14.17.3 entry"));
        assert!(!m(r"1\.14", "1x14"));
        assert!(m(r"a\*b", "a*b"));
        assert!(m(r"\\", r"back\slash"));
    }

    #[test]
    fn prosite_style_motif() {
        // PROSITE PS00001-like: N-glycosylation site N-{P}-[ST]-{P}
        // as a regex: N[^P][ST][^P]
        let motif = "N[^P][ST][^P]";
        assert!(m(motif, "AANGSAA"));
        assert!(!m(motif, "AANPSAA")); // P in the second position
        assert!(!m(motif, "AANGPAA")); // P in the fourth position
        assert!(m(motif, "MKNVTL"));
    }

    #[test]
    fn dna_motifs() {
        // TATA box with spacer.
        assert!(m("TATA[AT]A", "GGTATAAAGG"));
        // A restriction site with ambiguity: GGWCC where W = A/T.
        assert!(m("GG[AT]CC", "AAGGTCCAA"));
        assert!(!m("GG[AT]CC", "AAGGGCCAA"));
    }

    #[test]
    fn pathological_patterns_terminate_quickly() {
        // Classic catastrophic-backtracking shape; the NFA simulation is
        // linear so this must return fast.
        let pattern = "(a+)+$";
        let text = format!("{}b", "a".repeat(64));
        let start = std::time::Instant::now();
        assert!(!m(pattern, &text));
        assert!(
            start.elapsed().as_millis() < 500,
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn epsilon_loop_star_of_star() {
        assert!(m("(a*)*b", "b"));
        assert!(m("(a*)*b", "aaab"));
        assert!(!m("^(a*)*$", "c"));
    }

    #[test]
    fn compile_errors() {
        for bad in ["(", "[", "[]", "a{", "a{2", "*a", "+", "a\\", "a{x}", "(a"] {
            assert!(Pattern::compile(bad).is_err(), "{bad:?} should fail");
        }
        assert!(Pattern::compile("a)").is_err());
        assert!(Pattern::compile("[z-a]").is_err());
    }

    #[test]
    fn unicode_text() {
        assert!(m("αβ+γ", "xxαββγx"));
        assert!(m("[α-ω]+", "ε"));
    }
}
