//! Write-ahead logging and crash recovery.
//!
//! One of the paper's stated reasons for shredding XML into an RDBMS is to
//! "exploit the concurrency access and crash recovery features of an RDBMS"
//! (§2.2). This module supplies the recovery half: every mutation is
//! encoded as a [`WalRecord`], framed with a length and an FNV-1a checksum,
//! and appended to a log file before it is acknowledged. Recovery replays
//! the log, applying DDL immediately and buffering DML until its `Commit`
//! record — so a crash mid-transaction loses exactly the uncommitted tail,
//! and a torn final record (crash mid-write) is detected by the checksum
//! and discarded.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{RelError, RelResult};
use crate::schema::{IndexDef, TableSchema};
use crate::table::RowId;
use crate::value::{DataType, Value};

/// A logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Transaction start.
    Begin {
        /// Transaction id.
        tx: u64,
    },
    /// Transaction commit; buffered operations become durable.
    Commit {
        /// Transaction id.
        tx: u64,
    },
    /// DDL: create a table.
    CreateTable {
        /// The created table's schema.
        schema: TableSchema,
    },
    /// DDL: drop a table.
    DropTable {
        /// Table name.
        name: String,
    },
    /// DDL: create an index.
    CreateIndex {
        /// The index definition.
        def: IndexDef,
    },
    /// DDL: drop an index.
    DropIndex {
        /// Index name.
        name: String,
    },
    /// DML: insert `row` into `table` at `row_id`.
    Insert {
        /// Owning transaction.
        tx: u64,
        /// Target table.
        table: String,
        /// Assigned row id.
        row_id: RowId,
        /// The inserted values.
        row: Vec<Value>,
    },
    /// DML: delete the row at `row_id`.
    Delete {
        /// Owning transaction.
        tx: u64,
        /// Target table.
        table: String,
        /// Deleted row id.
        row_id: RowId,
    },
    /// DML: replace the row at `row_id` with `row`.
    Update {
        /// Owning transaction.
        tx: u64,
        /// Target table.
        table: String,
        /// Updated row id.
        row_id: RowId,
        /// The replacement values.
        row: Vec<Value>,
    },
    /// DDL: create a materialized view. Only the definition is logged —
    /// view *contents* are derived state, rebuilt from the base tables on
    /// recovery rather than replayed.
    CreateView {
        /// View name (also its backing table's name).
        name: String,
        /// Synchronous (`REFRESH ON COMMIT`) vs deferred maintenance.
        refresh_on_commit: bool,
        /// The defining `SELECT`, rendered back to SQL.
        select_sql: String,
    },
    /// DDL: drop a materialized view.
    DropView {
        /// View name.
        name: String,
    },
    /// Checkpoint marker. As the trailing record of a checkpoint image it
    /// certifies the image is complete; as the leading record of a fresh
    /// (rotated) log it tells recovery how many commit sequence numbers
    /// the checkpoint already covers, so replay counts from `csn` instead
    /// of zero.
    Checkpoint {
        /// Commit sequence number the checkpoint state includes.
        csn: u64,
    },
}

const TAG_BEGIN: u8 = 0x01;
const TAG_COMMIT: u8 = 0x02;
const TAG_CHECKPOINT: u8 = 0x03;
const TAG_CREATE_TABLE: u8 = 0x10;
const TAG_DROP_TABLE: u8 = 0x11;
const TAG_CREATE_INDEX: u8 = 0x12;
const TAG_DROP_INDEX: u8 = 0x13;
const TAG_CREATE_VIEW: u8 = 0x14;
const TAG_DROP_VIEW: u8 = 0x15;
const TAG_INSERT: u8 = 0x20;
const TAG_DELETE: u8 = 0x21;
const TAG_UPDATE: u8 = 0x22;

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c9dc5;
    for b in bytes {
        hash ^= u32::from(*b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> RelResult<String> {
    if buf.remaining() < 4 {
        return Err(RelError::Wal("truncated string length".into()));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(RelError::Wal("truncated string payload".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| RelError::Wal("invalid UTF-8".into()))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64(*f);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
    }
}

fn get_value(buf: &mut Bytes) -> RelResult<Value> {
    if !buf.has_remaining() {
        return Err(RelError::Wal("truncated value tag".into()));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 8 {
                return Err(RelError::Wal("truncated int".into()));
            }
            Ok(Value::Int(buf.get_i64()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(RelError::Wal("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        3 => Ok(Value::Text(get_str(buf)?)),
        t => Err(RelError::Wal(format!("unknown value tag {t}"))),
    }
}

fn put_row(buf: &mut BytesMut, row: &[Value]) {
    buf.put_u32(row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut Bytes) -> RelResult<Vec<Value>> {
    if buf.remaining() < 4 {
        return Err(RelError::Wal("truncated row length".into()));
    }
    let n = buf.get_u32() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

fn put_schema(buf: &mut BytesMut, schema: &TableSchema) {
    put_str(buf, &schema.name);
    buf.put_u32(schema.columns.len() as u32);
    for col in &schema.columns {
        put_str(buf, &col.name);
        buf.put_u8(match col.ty {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Text => 2,
        });
    }
}

fn get_schema(buf: &mut Bytes) -> RelResult<TableSchema> {
    let name = get_str(buf)?;
    if buf.remaining() < 4 {
        return Err(RelError::Wal("truncated column count".into()));
    }
    let n = buf.get_u32() as usize;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let col_name = get_str(buf)?;
        if !buf.has_remaining() {
            return Err(RelError::Wal("truncated column type".into()));
        }
        let ty = match buf.get_u8() {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Text,
            t => return Err(RelError::Wal(format!("unknown column type tag {t}"))),
        };
        columns.push(crate::schema::Column { name: col_name, ty });
    }
    Ok(TableSchema { name, columns })
}

impl WalRecord {
    /// Serializes the record payload (without framing).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            WalRecord::Begin { tx } => {
                buf.put_u8(TAG_BEGIN);
                buf.put_u64(*tx);
            }
            WalRecord::Commit { tx } => {
                buf.put_u8(TAG_COMMIT);
                buf.put_u64(*tx);
            }
            WalRecord::Checkpoint { csn } => {
                buf.put_u8(TAG_CHECKPOINT);
                buf.put_u64(*csn);
            }
            WalRecord::CreateTable { schema } => {
                buf.put_u8(TAG_CREATE_TABLE);
                put_schema(&mut buf, schema);
            }
            WalRecord::DropTable { name } => {
                buf.put_u8(TAG_DROP_TABLE);
                put_str(&mut buf, name);
            }
            WalRecord::CreateIndex { def } => {
                buf.put_u8(TAG_CREATE_INDEX);
                put_str(&mut buf, &def.name);
                put_str(&mut buf, &def.table);
                buf.put_u32(def.columns.len() as u32);
                for c in &def.columns {
                    put_str(&mut buf, c);
                }
                buf.put_u8(u8::from(def.keyword));
            }
            WalRecord::DropIndex { name } => {
                buf.put_u8(TAG_DROP_INDEX);
                put_str(&mut buf, name);
            }
            WalRecord::CreateView {
                name,
                refresh_on_commit,
                select_sql,
            } => {
                buf.put_u8(TAG_CREATE_VIEW);
                put_str(&mut buf, name);
                buf.put_u8(u8::from(*refresh_on_commit));
                put_str(&mut buf, select_sql);
            }
            WalRecord::DropView { name } => {
                buf.put_u8(TAG_DROP_VIEW);
                put_str(&mut buf, name);
            }
            WalRecord::Insert {
                tx,
                table,
                row_id,
                row,
            } => {
                buf.put_u8(TAG_INSERT);
                buf.put_u64(*tx);
                put_str(&mut buf, table);
                buf.put_u64(row_id.0);
                put_row(&mut buf, row);
            }
            WalRecord::Delete { tx, table, row_id } => {
                buf.put_u8(TAG_DELETE);
                buf.put_u64(*tx);
                put_str(&mut buf, table);
                buf.put_u64(row_id.0);
            }
            WalRecord::Update {
                tx,
                table,
                row_id,
                row,
            } => {
                buf.put_u8(TAG_UPDATE);
                buf.put_u64(*tx);
                put_str(&mut buf, table);
                buf.put_u64(row_id.0);
                put_row(&mut buf, row);
            }
        }
        buf.freeze()
    }

    /// Deserializes a record payload.
    pub fn decode(mut buf: Bytes) -> RelResult<WalRecord> {
        if !buf.has_remaining() {
            return Err(RelError::Wal("empty record".into()));
        }
        let tag = buf.get_u8();
        let need_u64 = |buf: &mut Bytes| -> RelResult<u64> {
            if buf.remaining() < 8 {
                Err(RelError::Wal("truncated u64".into()))
            } else {
                Ok(buf.get_u64())
            }
        };
        match tag {
            TAG_BEGIN => Ok(WalRecord::Begin {
                tx: need_u64(&mut buf)?,
            }),
            TAG_COMMIT => Ok(WalRecord::Commit {
                tx: need_u64(&mut buf)?,
            }),
            TAG_CHECKPOINT => Ok(WalRecord::Checkpoint {
                csn: need_u64(&mut buf)?,
            }),
            TAG_CREATE_TABLE => Ok(WalRecord::CreateTable {
                schema: get_schema(&mut buf)?,
            }),
            TAG_DROP_TABLE => Ok(WalRecord::DropTable {
                name: get_str(&mut buf)?,
            }),
            TAG_CREATE_INDEX => {
                let name = get_str(&mut buf)?;
                let table = get_str(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(RelError::Wal("truncated index columns".into()));
                }
                let n = buf.get_u32() as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(get_str(&mut buf)?);
                }
                if !buf.has_remaining() {
                    return Err(RelError::Wal("truncated index kind".into()));
                }
                let keyword = buf.get_u8() != 0;
                Ok(WalRecord::CreateIndex {
                    def: IndexDef {
                        name,
                        table,
                        columns,
                        keyword,
                    },
                })
            }
            TAG_DROP_INDEX => Ok(WalRecord::DropIndex {
                name: get_str(&mut buf)?,
            }),
            TAG_CREATE_VIEW => {
                let name = get_str(&mut buf)?;
                if !buf.has_remaining() {
                    return Err(RelError::Wal("truncated view refresh policy".into()));
                }
                let refresh_on_commit = buf.get_u8() != 0;
                let select_sql = get_str(&mut buf)?;
                Ok(WalRecord::CreateView {
                    name,
                    refresh_on_commit,
                    select_sql,
                })
            }
            TAG_DROP_VIEW => Ok(WalRecord::DropView {
                name: get_str(&mut buf)?,
            }),
            TAG_INSERT => {
                let tx = need_u64(&mut buf)?;
                let table = get_str(&mut buf)?;
                let row_id = RowId(need_u64(&mut buf)?);
                let row = get_row(&mut buf)?;
                Ok(WalRecord::Insert {
                    tx,
                    table,
                    row_id,
                    row,
                })
            }
            TAG_DELETE => {
                let tx = need_u64(&mut buf)?;
                let table = get_str(&mut buf)?;
                let row_id = RowId(need_u64(&mut buf)?);
                Ok(WalRecord::Delete { tx, table, row_id })
            }
            TAG_UPDATE => {
                let tx = need_u64(&mut buf)?;
                let table = get_str(&mut buf)?;
                let row_id = RowId(need_u64(&mut buf)?);
                let row = get_row(&mut buf)?;
                Ok(WalRecord::Update {
                    tx,
                    table,
                    row_id,
                    row,
                })
            }
            t => Err(RelError::Wal(format!("unknown record tag {t}"))),
        }
    }
}

/// The fault plane: every byte the log reads or writes goes through this
/// trait. Production uses [`StdFileIo`]; tests inject [`FaultyIo`] to
/// exercise torn writes, bit-flips, failed fsyncs and read errors without
/// touching a real disk.
pub trait WalIo: Send + std::fmt::Debug {
    /// Appends `bytes` at the end of the log (OS cache; not yet durable).
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Makes every appended byte durable.
    fn fsync(&mut self) -> io::Result<()>;
    /// Reads the entire log as currently visible.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;
    /// Discards every byte past `len` (corrupt-tail repair).
    fn truncate_to(&mut self, len: u64) -> io::Result<()>;

    /// Whether this backend supports the checkpoint side store and log
    /// rotation ([`WalIo::put_side`] / [`WalIo::get_side`] /
    /// [`WalIo::rotate`]). Backends that return `false` fall back to
    /// in-place log rewriting for compaction.
    fn supports_rotation(&self) -> bool {
        false
    }

    /// Atomically replaces the checkpoint side store with `bytes`:
    /// after a success the next [`WalIo::get_side`] returns exactly
    /// `bytes`; after a failure it returns whatever it returned before
    /// (write-to-temp + rename semantics — never a torn mix).
    fn put_side(&mut self, _bytes: &[u8]) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "checkpoint side store unsupported by this backend",
        ))
    }

    /// Reads the checkpoint side store (`None` when absent).
    fn get_side(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(None)
    }

    /// Rotates the active log: the current contents move aside as the
    /// single retained previous generation (replacing any earlier one)
    /// and the active log restarts empty.
    fn rotate(&mut self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "log rotation unsupported by this backend",
        ))
    }
}

/// Appends `suffix` to a path's file name (`db.wal` → `db.wal.ckpt`),
/// keeping the original extension intact.
fn sibling_path(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

/// Production [`WalIo`]: a real append-only file, with the checkpoint
/// image in a `<path>.ckpt` sibling and one rotated generation in
/// `<path>.old`.
#[derive(Debug)]
pub struct StdFileIo {
    file: File,
    path: PathBuf,
}

impl StdFileIo {
    /// Opens (creating if absent) the log file at `path`.
    pub fn open(path: &Path) -> io::Result<StdFileIo> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        Ok(StdFileIo {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Best-effort fsync of the directory holding the log, making the
    /// renames in [`WalIo::put_side`] / [`WalIo::rotate`] durable. Some
    /// filesystems reject directory fsync; the rename itself is still
    /// atomic, so errors are ignored.
    fn sync_dir(&self) {
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
}

impl WalIo for StdFileIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut raw = Vec::new();
        self.file.read_to_end(&mut raw)?;
        Ok(raw)
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn supports_rotation(&self) -> bool {
        true
    }

    fn put_side(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp = sibling_path(&self.path, ".ckpt.tmp");
        let side = sibling_path(&self.path, ".ckpt");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        // The atomic-rename guarantee: a crash before this line leaves
        // the previous checkpoint untouched; after it, the new image is
        // fully in place. There is no in-between.
        std::fs::rename(&tmp, &side)?;
        self.sync_dir();
        Ok(())
    }

    fn get_side(&mut self) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(sibling_path(&self.path, ".ckpt")) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        std::fs::rename(&self.path, sibling_path(&self.path, ".old"))?;
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&self.path)?;
        self.sync_dir();
        Ok(())
    }
}

/// How often [`FaultyIo`] injects each fault kind: a fault fires roughly
/// once every N operations of its kind (0 = never). All draws come from
/// one seeded generator, so a given seed always produces the same
/// schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// 1-in-N appends stop partway through and report an error.
    pub torn_write_in: u32,
    /// 1-in-N appends silently flip one bit of the written bytes.
    pub bit_flip_in: u32,
    /// 1-in-N fsyncs fail; only a prefix of the cached bytes reaches the
    /// durable store and the rest of the cache is lost (the kernel may
    /// drop dirty pages after a failed fsync).
    pub fsync_fail_in: u32,
    /// 1-in-N reads fail outright.
    pub read_fail_in: u32,
}

impl FaultConfig {
    /// A configuration that injects nothing.
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn one_in(state: &mut u64, n: u32) -> bool {
    n != 0 && splitmix(state).is_multiple_of(u64::from(n))
}

#[derive(Debug)]
struct FaultyState {
    /// Bytes that survive a crash.
    durable: Vec<u8>,
    /// Appended but not yet fsynced bytes (simulated OS cache).
    cache: Vec<u8>,
    /// Checkpoint side store (always durable once written: `put_side`
    /// models write-to-temp + atomic rename).
    side: Option<Vec<u8>>,
    /// The single retained previous log generation.
    rotated: Option<Vec<u8>>,
    rng: u64,
    cfg: FaultConfig,
}

/// Deterministic fault-injecting [`WalIo`] over an in-memory disk.
///
/// Clones share the disk and the fault schedule, so a test can keep a
/// handle while the [`Wal`] owns another: crash the disk, inspect the
/// durable bytes, or flip bits at rest.
#[derive(Debug, Clone)]
pub struct FaultyIo {
    state: Arc<Mutex<FaultyState>>,
}

impl FaultyIo {
    /// A fresh empty disk with the given fault schedule seed.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultyIo {
        FaultyIo {
            state: Arc::new(Mutex::new(FaultyState {
                durable: Vec::new(),
                cache: Vec::new(),
                side: None,
                rotated: None,
                rng: seed,
                cfg,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultyState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Simulates a crash: everything not fsynced is gone.
    pub fn crash(&self) {
        self.lock().cache.clear();
    }

    /// Replaces the fault schedule (e.g. disable faults for recovery).
    pub fn set_config(&self, cfg: FaultConfig) {
        self.lock().cfg = cfg;
    }

    /// The bytes that would survive a crash.
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.lock().durable.clone()
    }

    /// Total visible log length (durable + cached).
    pub fn len(&self) -> u64 {
        let s = self.lock();
        (s.durable.len() + s.cache.len()) as u64
    }

    /// Whether the visible log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flips bits of the durable byte at `offset` (corruption at rest).
    pub fn corrupt_durable(&self, offset: u64, mask: u8) {
        let mut s = self.lock();
        if let Some(b) = s.durable.get_mut(offset as usize) {
            *b ^= mask;
        }
    }

    /// The checkpoint side store's current contents, if any.
    pub fn side_bytes(&self) -> Option<Vec<u8>> {
        self.lock().side.clone()
    }

    /// The single retained rotated log generation, if any.
    pub fn rotated_bytes(&self) -> Option<Vec<u8>> {
        self.lock().rotated.clone()
    }

    /// Flips bits of the checkpoint side byte at `offset` (a torn or
    /// damaged checkpoint image at rest).
    pub fn corrupt_side(&self, offset: u64, mask: u8) {
        let mut s = self.lock();
        if let Some(b) = s.side.as_mut().and_then(|v| v.get_mut(offset as usize)) {
            *b ^= mask;
        }
    }
}

impl WalIo for FaultyIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.lock();
        let s = &mut *s;
        if one_in(&mut s.rng, s.cfg.torn_write_in) {
            let cut = (splitmix(&mut s.rng) as usize) % (bytes.len() + 1);
            s.cache.extend_from_slice(&bytes[..cut]);
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("injected torn write: {cut} of {} bytes", bytes.len()),
            ));
        }
        if !bytes.is_empty() && one_in(&mut s.rng, s.cfg.bit_flip_in) {
            let mut corrupted = bytes.to_vec();
            let at = (splitmix(&mut s.rng) as usize) % corrupted.len();
            let bit = (splitmix(&mut s.rng) % 8) as u8;
            corrupted[at] ^= 1 << bit;
            s.cache.extend_from_slice(&corrupted);
            return Ok(()); // silent corruption: the write "succeeds"
        }
        s.cache.extend_from_slice(bytes);
        Ok(())
    }

    fn fsync(&mut self) -> io::Result<()> {
        let mut s = self.lock();
        let s = &mut *s;
        if one_in(&mut s.rng, s.cfg.fsync_fail_in) {
            let keep = (splitmix(&mut s.rng) as usize) % (s.cache.len() + 1);
            let kept: Vec<u8> = s.cache.drain(..keep).collect();
            s.durable.extend_from_slice(&kept);
            s.cache.clear();
            return Err(io::Error::other("injected fsync failure"));
        }
        let cache = std::mem::take(&mut s.cache);
        s.durable.extend_from_slice(&cache);
        Ok(())
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        let mut s = self.lock();
        let s = &mut *s;
        if one_in(&mut s.rng, s.cfg.read_fail_in) {
            return Err(io::Error::other("injected read failure"));
        }
        let mut raw = s.durable.clone();
        raw.extend_from_slice(&s.cache);
        Ok(raw)
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        let mut s = self.lock();
        let len = len as usize;
        if len <= s.durable.len() {
            s.durable.truncate(len);
            s.cache.clear();
        } else {
            let keep = len - s.durable.len();
            s.cache.truncate(keep);
        }
        Ok(())
    }

    fn supports_rotation(&self) -> bool {
        true
    }

    fn put_side(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.lock();
        let s = &mut *s;
        // Models write-to-temp + atomic rename: a failure (drawn from the
        // fsync schedule — it is a durability operation) leaves the
        // previous image fully intact, never a torn mix.
        if one_in(&mut s.rng, s.cfg.fsync_fail_in) {
            return Err(io::Error::other("injected checkpoint write failure"));
        }
        s.side = Some(bytes.to_vec());
        Ok(())
    }

    fn get_side(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut s = self.lock();
        let s = &mut *s;
        if s.side.is_some() && one_in(&mut s.rng, s.cfg.read_fail_in) {
            return Err(io::Error::other("injected checkpoint read failure"));
        }
        Ok(s.side.clone())
    }

    fn rotate(&mut self) -> io::Result<()> {
        let mut s = self.lock();
        let s = &mut *s;
        // Rotation is a rename: atomic, but it can still fail outright
        // (drawn from the fsync schedule), leaving the log unmoved.
        if one_in(&mut s.rng, s.cfg.fsync_fail_in) {
            return Err(io::Error::other("injected rotation failure"));
        }
        s.rotated = Some(std::mem::take(&mut s.durable));
        s.cache.clear();
        Ok(())
    }
}

/// A [`WalIo`] decorator that sleeps on every fsync, modelling a slow
/// disk. Used by the group-commit bench and the reader-vs-writer tests:
/// with fsyncs pinned at a known latency, commit batching and non-blocking
/// snapshot reads become deterministic, observable effects.
#[derive(Debug)]
pub struct SlowIo {
    inner: Box<dyn WalIo>,
    fsync_delay: std::time::Duration,
}

impl SlowIo {
    /// Wraps `inner`, delaying every fsync by `fsync_delay`.
    pub fn new(inner: Box<dyn WalIo>, fsync_delay: std::time::Duration) -> SlowIo {
        SlowIo { inner, fsync_delay }
    }
}

impl WalIo for SlowIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.append(bytes)
    }

    fn fsync(&mut self) -> io::Result<()> {
        std::thread::sleep(self.fsync_delay);
        self.inner.fsync()
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate_to(len)
    }

    fn supports_rotation(&self) -> bool {
        self.inner.supports_rotation()
    }

    fn put_side(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.put_side(bytes)
    }

    fn get_side(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.inner.get_side()
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.inner.rotate()
    }
}

/// Where and why a log scan stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// Byte offset of the first bad frame.
    pub offset: u64,
    /// Human-readable cause (truncated frame, checksum mismatch, ...).
    pub reason: String,
}

/// The result of scanning a raw log image.
#[derive(Debug, Clone, Default)]
pub struct LogScan {
    /// Every record up to (not including) the first bad frame.
    pub records: Vec<WalRecord>,
    /// Byte offset of each record's frame, parallel to `records`.
    pub offsets: Vec<u64>,
    /// Length of the valid prefix; everything past it is garbage.
    pub valid_len: u64,
    /// Total length of the scanned image.
    pub total_len: u64,
    /// The first bad frame, if the log did not end cleanly.
    pub corruption: Option<Corruption>,
}

/// What recovery found and did. Returned by
/// [`Database::open_with_report`](crate::db::Database::open_with_report):
/// the caller learns exactly which transactions were replayed and which
/// were dropped, instead of recovery failing (or worse, panicking) on a
/// damaged log.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Intact records found in the log.
    pub records_scanned: usize,
    /// Committed transactions fully applied.
    pub transactions_applied: usize,
    /// Transactions present in the log but not applied: uncommitted
    /// (crash before commit) or unapplicable (log inconsistency).
    pub transactions_dropped: Vec<u64>,
    /// Non-fatal replay problems, one message each.
    pub replay_errors: Vec<String>,
    /// The first bad frame, if corruption cut the log short.
    pub corruption: Option<Corruption>,
    /// Bytes discarded past the last intact frame.
    pub truncated_bytes: u64,
    /// CSN of the checkpoint image recovery restored (0 = none: no
    /// checkpoint existed, or it was torn and full replay ran instead).
    pub checkpoint_csn: u64,
    /// Committed transactions present in the log but already covered by
    /// the restored checkpoint, so not replayed. `transactions_applied`
    /// counts only the tail actually replayed.
    pub transactions_skipped: usize,
}

impl RecoveryReport {
    /// True when the whole log was intact and every committed transaction
    /// applied cleanly.
    pub fn is_clean(&self) -> bool {
        self.corruption.is_none()
            && self.transactions_dropped.is_empty()
            && self.replay_errors.is_empty()
    }
}

/// Frames cannot plausibly exceed this; a larger length prefix means the
/// length field itself is corrupt.
const MAX_FRAME: usize = 64 << 20;

/// Scans a raw log image, collecting records up to the first bad frame.
/// Never fails: damage is reported in [`LogScan::corruption`].
pub fn scan_log(raw: &[u8]) -> LogScan {
    let mut scan = LogScan {
        total_len: raw.len() as u64,
        ..LogScan::default()
    };
    let mut pos = 0usize;
    let corrupt = |pos: usize, reason: &str| Corruption {
        offset: pos as u64,
        reason: reason.to_string(),
    };
    while pos < raw.len() {
        if pos + 8 > raw.len() {
            scan.corruption = Some(corrupt(pos, "truncated frame header"));
            break;
        }
        let len = u32::from_be_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(raw[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + 8;
        if len > MAX_FRAME {
            scan.corruption = Some(corrupt(pos, "implausible frame length"));
            break;
        }
        if start + len > raw.len() {
            scan.corruption = Some(corrupt(pos, "truncated frame payload"));
            break;
        }
        let payload = &raw[start..start + len];
        if fnv1a(payload) != crc {
            scan.corruption = Some(corrupt(pos, "checksum mismatch"));
            break;
        }
        match WalRecord::decode(Bytes::copy_from_slice(payload)) {
            Ok(record) => {
                scan.records.push(record);
                scan.offsets.push(pos as u64);
            }
            Err(e) => {
                scan.corruption = Some(corrupt(pos, &format!("undecodable record: {e}")));
                break;
            }
        }
        pos = start + len;
    }
    scan.valid_len = pos as u64;
    scan
}

pub(crate) fn frame_into(buf: &mut Vec<u8>, record: &WalRecord) {
    let payload = record.encode();
    buf.reserve(8 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&fnv1a(&payload).to_be_bytes());
    buf.extend_from_slice(&payload);
}

/// An append-only write-ahead log over a [`WalIo`].
///
/// A failed sync **poisons** the handle: the on-disk suffix is in an
/// unknown state, so instead of risking interleaved garbage every later
/// sync fails fast until the database is reopened (which repairs the
/// tail).
#[derive(Debug)]
pub struct Wal {
    io: Box<dyn WalIo>,
    path: Option<PathBuf>,
    /// Records appended since the last [`Wal::sync`].
    pending: Vec<u8>,
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if absent) the log file at `path`.
    pub fn open(path: &Path) -> RelResult<Wal> {
        let io = StdFileIo::open(path)
            .map_err(|e| RelError::Wal(format!("open {}: {e}", path.display())))?;
        Ok(Wal {
            io: Box::new(io),
            path: Some(path.to_path_buf()),
            pending: Vec::new(),
            poisoned: false,
        })
    }

    /// A log over an arbitrary [`WalIo`] (fault injection, in-memory).
    pub fn with_io(io: Box<dyn WalIo>) -> Wal {
        Wal {
            io,
            path: None,
            pending: Vec::new(),
            poisoned: false,
        }
    }

    /// The log file's path (`None` for non-file backends).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Whether an earlier I/O failure poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Buffers one record (framing: `len u32 | crc u32 | payload`).
    pub fn append(&mut self, record: &WalRecord) {
        frame_into(&mut self.pending, record);
    }

    /// Writes buffered records and fsyncs — the durability point.
    ///
    /// On failure the handle is poisoned: the tail of the log may hold a
    /// partial frame, and appending more would bury it mid-log.
    pub fn sync(&mut self) -> RelResult<()> {
        if self.poisoned {
            return Err(RelError::Wal(
                "log poisoned by an earlier I/O failure; reopen the database".into(),
            ));
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let result = self.io.append(&self.pending).and_then(|()| self.io.fsync());
        if let Err(e) = result {
            self.poisoned = true;
            return Err(RelError::Wal(format!("sync: {e} (log poisoned)")));
        }
        self.pending.clear();
        Ok(())
    }

    /// Discards buffered (unsynced) records — transaction rollback.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// Writes pre-framed bytes and fsyncs — the group-commit durability
    /// point. The caller (the flush leader) has already framed a whole
    /// batch of transactions into `frames`; one append + one fsync makes
    /// them all durable together. Poisons the handle on failure, exactly
    /// like [`Wal::sync`].
    pub(crate) fn write_frames(&mut self, frames: &[u8]) -> RelResult<()> {
        if self.poisoned {
            return Err(RelError::Wal(
                "log poisoned by an earlier I/O failure; reopen the database".into(),
            ));
        }
        if frames.is_empty() {
            return Ok(());
        }
        let result = self.io.append(frames).and_then(|()| self.io.fsync());
        if let Err(e) = result {
            self.poisoned = true;
            return Err(RelError::Wal(format!("sync: {e} (log poisoned)")));
        }
        Ok(())
    }

    /// Whether the backend supports checkpoint side stores and rotation.
    pub(crate) fn supports_rotation(&self) -> bool {
        self.io.supports_rotation()
    }

    /// Atomically replaces the checkpoint side store. A failure leaves
    /// the previous image (and the active log) fully intact, so it does
    /// *not* poison the handle.
    pub(crate) fn put_side(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.io.put_side(bytes)
    }

    /// Reads the checkpoint side store (`None` when absent).
    pub(crate) fn get_side(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.io.get_side()
    }

    /// Rotates the active log aside as the retained previous generation.
    /// Poisons the handle on failure: the log's identity is then unknown.
    pub(crate) fn rotate(&mut self) -> RelResult<()> {
        if self.poisoned {
            return Err(RelError::Wal(
                "log poisoned by an earlier I/O failure; reopen the database".into(),
            ));
        }
        if let Err(e) = self.io.rotate() {
            self.poisoned = true;
            return Err(RelError::Wal(format!("rotate: {e} (log poisoned)")));
        }
        Ok(())
    }

    /// Reads the log, keeps the longest intact prefix, and physically
    /// truncates anything after the first bad frame so later appends
    /// land on a clean tail. Never fails on *corruption* — only on I/O
    /// errors reading or repairing the log.
    pub fn recover(&mut self) -> RelResult<LogScan> {
        let raw = self
            .io
            .read_all()
            .map_err(|e| RelError::Wal(format!("read log: {e}")))?;
        let scan = scan_log(&raw);
        if scan.valid_len < scan.total_len {
            self.io
                .truncate_to(scan.valid_len)
                .map_err(|e| RelError::Wal(format!("truncate corrupt tail: {e}")))?;
        }
        Ok(scan)
    }

    /// Atomically-ish replaces the log contents with `records` (used by
    /// compaction on non-file backends, where rename is unavailable).
    pub fn rewrite(&mut self, records: &[WalRecord]) -> RelResult<()> {
        if self.poisoned {
            return Err(RelError::Wal(
                "log poisoned by an earlier I/O failure; reopen the database".into(),
            ));
        }
        let mut buf = Vec::new();
        for r in records {
            frame_into(&mut buf, r);
        }
        let result = self
            .io
            .truncate_to(0)
            .and_then(|()| self.io.append(&buf))
            .and_then(|()| self.io.fsync());
        if let Err(e) = result {
            self.poisoned = true;
            return Err(RelError::Wal(format!("rewrite: {e} (log poisoned)")));
        }
        self.pending.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xomatiq-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                schema: TableSchema::new(
                    "t",
                    vec![
                        Column::new("a", DataType::Int),
                        Column::new("b", DataType::Text),
                    ],
                ),
            },
            WalRecord::CreateIndex {
                def: IndexDef {
                    name: "i".into(),
                    table: "t".into(),
                    columns: vec!["a".into()],
                    keyword: false,
                },
            },
            WalRecord::Begin { tx: 1 },
            WalRecord::Insert {
                tx: 1,
                table: "t".into(),
                row_id: RowId(0),
                row: vec![Value::Int(7), Value::Text("seven".into())],
            },
            WalRecord::Update {
                tx: 1,
                table: "t".into(),
                row_id: RowId(0),
                row: vec![Value::Null, Value::Float(2.5)],
            },
            WalRecord::Delete {
                tx: 1,
                table: "t".into(),
                row_id: RowId(0),
            },
            WalRecord::Commit { tx: 1 },
            WalRecord::Checkpoint { csn: 42 },
            WalRecord::DropIndex { name: "i".into() },
            WalRecord::DropTable { name: "t".into() },
        ]
    }

    /// Opens the log at `path` and returns every intact record.
    fn read_back(path: &Path) -> Vec<WalRecord> {
        Wal::open(path).unwrap().recover().unwrap().records
    }

    #[test]
    fn records_encode_decode_round_trip() {
        for record in sample_records() {
            let encoded = record.encode();
            let decoded = WalRecord::decode(encoded).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn append_sync_read_back() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r);
        }
        wal.sync().unwrap();
        assert_eq!(read_back(&path), sample_records());
    }

    #[test]
    fn unsynced_records_are_not_durable() {
        let path = tmp("unsynced");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 9 });
        // No sync: nothing on disk yet.
        assert!(read_back(&path).is_empty());
        wal.discard_pending();
        wal.sync().unwrap();
        assert!(read_back(&path).is_empty());
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(read_back(&path).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 1 });
        wal.append(&WalRecord::Commit { tx: 1 });
        wal.sync().unwrap();
        // Simulate a crash mid-append by truncating the file.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        let scan = wal.recover().unwrap();
        assert_eq!(scan.records, vec![WalRecord::Begin { tx: 1 }]);
        assert!(scan.corruption.is_some());
        // The bad tail is physically gone: a second recovery is clean.
        let scan2 = Wal::open(&path).unwrap().recover().unwrap();
        assert_eq!(scan2.records, vec![WalRecord::Begin { tx: 1 }]);
        assert!(scan2.corruption.is_none());
    }

    #[test]
    fn mid_log_corruption_truncates_at_first_bad_frame() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 1 });
        wal.append(&WalRecord::Commit { tx: 1 });
        wal.sync().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the first record.
        bytes[9] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let scan = Wal::open(&path).unwrap().recover().unwrap();
        assert!(scan.records.is_empty());
        let corruption = scan.corruption.expect("corruption reported");
        assert_eq!(corruption.offset, 0);
        assert_eq!(corruption.reason, "checksum mismatch");
        assert_eq!(scan.valid_len, 0);
        // Both records are gone (the second sat after the bad frame), and
        // the file was repaired down to the valid prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
    }

    #[test]
    fn scan_log_reports_implausible_length() {
        let mut raw = Vec::new();
        frame_into(&mut raw, &WalRecord::Begin { tx: 1 });
        let first = raw.len();
        raw.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd length
        raw.extend_from_slice(&[0u8; 4]);
        let scan = scan_log(&raw);
        assert_eq!(scan.records, vec![WalRecord::Begin { tx: 1 }]);
        assert_eq!(scan.valid_len, first as u64);
        assert_eq!(
            scan.corruption.unwrap().reason,
            "implausible frame length".to_string()
        );
    }

    #[test]
    fn failed_sync_poisons_the_handle() {
        let io = FaultyIo::new(7, FaultConfig::none());
        let mut wal = Wal::with_io(Box::new(io.clone()));
        wal.append(&WalRecord::Begin { tx: 1 });
        wal.sync().unwrap();
        // Every fsync fails from here on.
        io.set_config(FaultConfig {
            fsync_fail_in: 1,
            ..FaultConfig::none()
        });
        wal.append(&WalRecord::Commit { tx: 1 });
        assert!(wal.sync().is_err());
        assert!(wal.is_poisoned());
        // Later syncs fail fast even after faults are disabled: the tail
        // state is unknown until recovery.
        io.set_config(FaultConfig::none());
        wal.append(&WalRecord::Begin { tx: 2 });
        let err = wal.sync().unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
    }

    #[test]
    fn faulty_io_schedule_is_deterministic() {
        let cfg = FaultConfig {
            torn_write_in: 3,
            bit_flip_in: 4,
            fsync_fail_in: 5,
            read_fail_in: 0,
        };
        let run = |seed: u64| {
            let mut io = FaultyIo::new(seed, cfg);
            let mut outcomes = Vec::new();
            for i in 0..32u64 {
                outcomes.push(io.append(&i.to_be_bytes()).is_ok());
                outcomes.push(io.fsync().is_ok());
            }
            (outcomes, io.durable_bytes())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn faulty_io_crash_drops_unsynced_bytes() {
        let io = FaultyIo::new(1, FaultConfig::none());
        let mut handle = io.clone();
        handle.append(b"durable").unwrap();
        handle.fsync().unwrap();
        handle.append(b"lost").unwrap();
        io.crash();
        assert_eq!(handle.read_all().unwrap(), b"durable");
    }

    #[test]
    fn std_file_io_side_store_round_trips_atomically() {
        let path = tmp("side");
        let mut io = StdFileIo::open(&path).unwrap();
        assert!(io.supports_rotation());
        assert_eq!(io.get_side().unwrap(), None);
        io.put_side(b"image-one").unwrap();
        assert_eq!(io.get_side().unwrap().unwrap(), b"image-one");
        // Replacement is whole-image: no torn mix of old and new.
        io.put_side(b"image-two-longer").unwrap();
        assert_eq!(io.get_side().unwrap().unwrap(), b"image-two-longer");
        // No stray temp file left behind.
        assert!(!sibling_path(&path, ".ckpt.tmp").exists());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sibling_path(&path, ".ckpt"));
    }

    #[test]
    fn std_file_io_rotation_keeps_one_generation() {
        let path = tmp("rotate");
        let mut io = StdFileIo::open(&path).unwrap();
        io.append(b"gen-one").unwrap();
        io.fsync().unwrap();
        io.rotate().unwrap();
        assert_eq!(io.read_all().unwrap(), b"");
        assert_eq!(
            std::fs::read(sibling_path(&path, ".old")).unwrap(),
            b"gen-one"
        );
        io.append(b"gen-two").unwrap();
        io.fsync().unwrap();
        io.rotate().unwrap();
        // Only the latest previous generation is retained.
        assert_eq!(
            std::fs::read(sibling_path(&path, ".old")).unwrap(),
            b"gen-two"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sibling_path(&path, ".old"));
    }

    #[test]
    fn faulty_io_side_store_fails_atomically() {
        let io = FaultyIo::new(3, FaultConfig::none());
        let mut handle = io.clone();
        handle.put_side(b"good").unwrap();
        io.set_config(FaultConfig {
            fsync_fail_in: 1,
            ..FaultConfig::none()
        });
        assert!(handle.put_side(b"never-lands").is_err());
        // The failed write left the previous image fully intact.
        assert_eq!(io.side_bytes().unwrap(), b"good");
        io.set_config(FaultConfig::none());
        handle.rotate().unwrap();
        assert_eq!(handle.read_all().unwrap(), b"");
        // The side store survives rotation and crashes.
        io.crash();
        assert_eq!(io.side_bytes().unwrap(), b"good");
    }

    #[test]
    fn slow_io_delegates_everything() {
        let faulty = FaultyIo::new(5, FaultConfig::none());
        let mut io = SlowIo::new(
            Box::new(faulty.clone()),
            std::time::Duration::from_millis(1),
        );
        assert!(io.supports_rotation());
        io.append(b"abc").unwrap();
        io.fsync().unwrap();
        assert_eq!(io.read_all().unwrap(), b"abc");
        io.put_side(b"side").unwrap();
        assert_eq!(io.get_side().unwrap().unwrap(), b"side");
        io.rotate().unwrap();
        assert_eq!(io.read_all().unwrap(), b"");
        assert_eq!(faulty.rotated_bytes().unwrap(), b"abc");
    }

    #[test]
    fn unicode_and_empty_strings_survive() {
        let record = WalRecord::Insert {
            tx: 0,
            table: "enzymes".into(),
            row_id: RowId(3),
            row: vec![Value::Text("αβγ – café".into()), Value::Text(String::new())],
        };
        assert_eq!(WalRecord::decode(record.encode()).unwrap(), record);
    }
}
