//! Write-ahead logging and crash recovery.
//!
//! One of the paper's stated reasons for shredding XML into an RDBMS is to
//! "exploit the concurrency access and crash recovery features of an RDBMS"
//! (§2.2). This module supplies the recovery half: every mutation is
//! encoded as a [`WalRecord`], framed with a length and an FNV-1a checksum,
//! and appended to a log file before it is acknowledged. Recovery replays
//! the log, applying DDL immediately and buffering DML until its `Commit`
//! record — so a crash mid-transaction loses exactly the uncommitted tail,
//! and a torn final record (crash mid-write) is detected by the checksum
//! and discarded.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{RelError, RelResult};
use crate::schema::{IndexDef, TableSchema};
use crate::table::RowId;
use crate::value::{DataType, Value};

/// A logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Transaction start.
    Begin {
        /// Transaction id.
        tx: u64,
    },
    /// Transaction commit; buffered operations become durable.
    Commit {
        /// Transaction id.
        tx: u64,
    },
    /// DDL: create a table.
    CreateTable {
        /// The created table's schema.
        schema: TableSchema,
    },
    /// DDL: drop a table.
    DropTable {
        /// Table name.
        name: String,
    },
    /// DDL: create an index.
    CreateIndex {
        /// The index definition.
        def: IndexDef,
    },
    /// DDL: drop an index.
    DropIndex {
        /// Index name.
        name: String,
    },
    /// DML: insert `row` into `table` at `row_id`.
    Insert {
        /// Owning transaction.
        tx: u64,
        /// Target table.
        table: String,
        /// Assigned row id.
        row_id: RowId,
        /// The inserted values.
        row: Vec<Value>,
    },
    /// DML: delete the row at `row_id`.
    Delete {
        /// Owning transaction.
        tx: u64,
        /// Target table.
        table: String,
        /// Deleted row id.
        row_id: RowId,
    },
    /// DML: replace the row at `row_id` with `row`.
    Update {
        /// Owning transaction.
        tx: u64,
        /// Target table.
        table: String,
        /// Updated row id.
        row_id: RowId,
        /// The replacement values.
        row: Vec<Value>,
    },
}

const TAG_BEGIN: u8 = 0x01;
const TAG_COMMIT: u8 = 0x02;
const TAG_CREATE_TABLE: u8 = 0x10;
const TAG_DROP_TABLE: u8 = 0x11;
const TAG_CREATE_INDEX: u8 = 0x12;
const TAG_DROP_INDEX: u8 = 0x13;
const TAG_INSERT: u8 = 0x20;
const TAG_DELETE: u8 = 0x21;
const TAG_UPDATE: u8 = 0x22;

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c9dc5;
    for b in bytes {
        hash ^= u32::from(*b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> RelResult<String> {
    if buf.remaining() < 4 {
        return Err(RelError::Wal("truncated string length".into()));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(RelError::Wal("truncated string payload".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| RelError::Wal("invalid UTF-8".into()))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64(*f);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
    }
}

fn get_value(buf: &mut Bytes) -> RelResult<Value> {
    if !buf.has_remaining() {
        return Err(RelError::Wal("truncated value tag".into()));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 8 {
                return Err(RelError::Wal("truncated int".into()));
            }
            Ok(Value::Int(buf.get_i64()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(RelError::Wal("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        3 => Ok(Value::Text(get_str(buf)?)),
        t => Err(RelError::Wal(format!("unknown value tag {t}"))),
    }
}

fn put_row(buf: &mut BytesMut, row: &[Value]) {
    buf.put_u32(row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut Bytes) -> RelResult<Vec<Value>> {
    if buf.remaining() < 4 {
        return Err(RelError::Wal("truncated row length".into()));
    }
    let n = buf.get_u32() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

fn put_schema(buf: &mut BytesMut, schema: &TableSchema) {
    put_str(buf, &schema.name);
    buf.put_u32(schema.columns.len() as u32);
    for col in &schema.columns {
        put_str(buf, &col.name);
        buf.put_u8(match col.ty {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Text => 2,
        });
    }
}

fn get_schema(buf: &mut Bytes) -> RelResult<TableSchema> {
    let name = get_str(buf)?;
    if buf.remaining() < 4 {
        return Err(RelError::Wal("truncated column count".into()));
    }
    let n = buf.get_u32() as usize;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let col_name = get_str(buf)?;
        if !buf.has_remaining() {
            return Err(RelError::Wal("truncated column type".into()));
        }
        let ty = match buf.get_u8() {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Text,
            t => return Err(RelError::Wal(format!("unknown column type tag {t}"))),
        };
        columns.push(crate::schema::Column { name: col_name, ty });
    }
    Ok(TableSchema { name, columns })
}

impl WalRecord {
    /// Serializes the record payload (without framing).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            WalRecord::Begin { tx } => {
                buf.put_u8(TAG_BEGIN);
                buf.put_u64(*tx);
            }
            WalRecord::Commit { tx } => {
                buf.put_u8(TAG_COMMIT);
                buf.put_u64(*tx);
            }
            WalRecord::CreateTable { schema } => {
                buf.put_u8(TAG_CREATE_TABLE);
                put_schema(&mut buf, schema);
            }
            WalRecord::DropTable { name } => {
                buf.put_u8(TAG_DROP_TABLE);
                put_str(&mut buf, name);
            }
            WalRecord::CreateIndex { def } => {
                buf.put_u8(TAG_CREATE_INDEX);
                put_str(&mut buf, &def.name);
                put_str(&mut buf, &def.table);
                buf.put_u32(def.columns.len() as u32);
                for c in &def.columns {
                    put_str(&mut buf, c);
                }
                buf.put_u8(u8::from(def.keyword));
            }
            WalRecord::DropIndex { name } => {
                buf.put_u8(TAG_DROP_INDEX);
                put_str(&mut buf, name);
            }
            WalRecord::Insert {
                tx,
                table,
                row_id,
                row,
            } => {
                buf.put_u8(TAG_INSERT);
                buf.put_u64(*tx);
                put_str(&mut buf, table);
                buf.put_u64(row_id.0);
                put_row(&mut buf, row);
            }
            WalRecord::Delete { tx, table, row_id } => {
                buf.put_u8(TAG_DELETE);
                buf.put_u64(*tx);
                put_str(&mut buf, table);
                buf.put_u64(row_id.0);
            }
            WalRecord::Update {
                tx,
                table,
                row_id,
                row,
            } => {
                buf.put_u8(TAG_UPDATE);
                buf.put_u64(*tx);
                put_str(&mut buf, table);
                buf.put_u64(row_id.0);
                put_row(&mut buf, row);
            }
        }
        buf.freeze()
    }

    /// Deserializes a record payload.
    pub fn decode(mut buf: Bytes) -> RelResult<WalRecord> {
        if !buf.has_remaining() {
            return Err(RelError::Wal("empty record".into()));
        }
        let tag = buf.get_u8();
        let need_u64 = |buf: &mut Bytes| -> RelResult<u64> {
            if buf.remaining() < 8 {
                Err(RelError::Wal("truncated u64".into()))
            } else {
                Ok(buf.get_u64())
            }
        };
        match tag {
            TAG_BEGIN => Ok(WalRecord::Begin {
                tx: need_u64(&mut buf)?,
            }),
            TAG_COMMIT => Ok(WalRecord::Commit {
                tx: need_u64(&mut buf)?,
            }),
            TAG_CREATE_TABLE => Ok(WalRecord::CreateTable {
                schema: get_schema(&mut buf)?,
            }),
            TAG_DROP_TABLE => Ok(WalRecord::DropTable {
                name: get_str(&mut buf)?,
            }),
            TAG_CREATE_INDEX => {
                let name = get_str(&mut buf)?;
                let table = get_str(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(RelError::Wal("truncated index columns".into()));
                }
                let n = buf.get_u32() as usize;
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(get_str(&mut buf)?);
                }
                if !buf.has_remaining() {
                    return Err(RelError::Wal("truncated index kind".into()));
                }
                let keyword = buf.get_u8() != 0;
                Ok(WalRecord::CreateIndex {
                    def: IndexDef {
                        name,
                        table,
                        columns,
                        keyword,
                    },
                })
            }
            TAG_DROP_INDEX => Ok(WalRecord::DropIndex {
                name: get_str(&mut buf)?,
            }),
            TAG_INSERT => {
                let tx = need_u64(&mut buf)?;
                let table = get_str(&mut buf)?;
                let row_id = RowId(need_u64(&mut buf)?);
                let row = get_row(&mut buf)?;
                Ok(WalRecord::Insert {
                    tx,
                    table,
                    row_id,
                    row,
                })
            }
            TAG_DELETE => {
                let tx = need_u64(&mut buf)?;
                let table = get_str(&mut buf)?;
                let row_id = RowId(need_u64(&mut buf)?);
                Ok(WalRecord::Delete { tx, table, row_id })
            }
            TAG_UPDATE => {
                let tx = need_u64(&mut buf)?;
                let table = get_str(&mut buf)?;
                let row_id = RowId(need_u64(&mut buf)?);
                let row = get_row(&mut buf)?;
                Ok(WalRecord::Update {
                    tx,
                    table,
                    row_id,
                    row,
                })
            }
            t => Err(RelError::Wal(format!("unknown record tag {t}"))),
        }
    }
}

/// An append-only write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Records appended since the last [`Wal::sync`].
    pending: Vec<u8>,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`.
    pub fn open(path: &Path) -> RelResult<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)
            .map_err(|e| RelError::Wal(format!("open {}: {e}", path.display())))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            pending: Vec::new(),
        })
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffers one record (framing: `len u32 | crc u32 | payload`).
    pub fn append(&mut self, record: &WalRecord) {
        let payload = record.encode();
        self.pending.reserve(8 + payload.len());
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.pending
            .extend_from_slice(&fnv1a(&payload).to_be_bytes());
        self.pending.extend_from_slice(&payload);
    }

    /// Writes buffered records and fsyncs — the durability point.
    pub fn sync(&mut self) -> RelResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file
            .write_all(&self.pending)
            .map_err(|e| RelError::Wal(format!("write: {e}")))?;
        self.file
            .sync_data()
            .map_err(|e| RelError::Wal(format!("fsync: {e}")))?;
        self.pending.clear();
        Ok(())
    }

    /// Discards buffered (unsynced) records — transaction rollback.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// Reads every intact record from the log file at `path`.
    ///
    /// A torn tail (truncated frame or checksum mismatch on the final
    /// record) is treated as a crash artifact and silently dropped;
    /// corruption anywhere *before* the tail is an error.
    pub fn read_all(path: &Path) -> RelResult<Vec<WalRecord>> {
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)
                    .map_err(|e| RelError::Wal(format!("read {}: {e}", path.display())))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(RelError::Wal(format!("open {}: {e}", path.display()))),
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= raw.len() {
            let len = u32::from_be_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_be_bytes(raw[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let start = pos + 8;
            if start + len > raw.len() {
                // Torn tail: a crash interrupted the final append.
                break;
            }
            let payload = &raw[start..start + len];
            if fnv1a(payload) != crc {
                if start + len == raw.len() {
                    break; // torn final record
                }
                return Err(RelError::Wal(format!(
                    "checksum mismatch at offset {pos} (mid-log corruption)"
                )));
            }
            records.push(WalRecord::decode(Bytes::copy_from_slice(payload))?);
            pos = start + len;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xomatiq-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                schema: TableSchema::new(
                    "t",
                    vec![
                        Column::new("a", DataType::Int),
                        Column::new("b", DataType::Text),
                    ],
                ),
            },
            WalRecord::CreateIndex {
                def: IndexDef {
                    name: "i".into(),
                    table: "t".into(),
                    columns: vec!["a".into()],
                    keyword: false,
                },
            },
            WalRecord::Begin { tx: 1 },
            WalRecord::Insert {
                tx: 1,
                table: "t".into(),
                row_id: RowId(0),
                row: vec![Value::Int(7), Value::Text("seven".into())],
            },
            WalRecord::Update {
                tx: 1,
                table: "t".into(),
                row_id: RowId(0),
                row: vec![Value::Null, Value::Float(2.5)],
            },
            WalRecord::Delete {
                tx: 1,
                table: "t".into(),
                row_id: RowId(0),
            },
            WalRecord::Commit { tx: 1 },
            WalRecord::DropIndex { name: "i".into() },
            WalRecord::DropTable { name: "t".into() },
        ]
    }

    #[test]
    fn records_encode_decode_round_trip() {
        for record in sample_records() {
            let encoded = record.encode();
            let decoded = WalRecord::decode(encoded).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn append_sync_read_back() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r);
        }
        wal.sync().unwrap();
        let read = Wal::read_all(&path).unwrap();
        assert_eq!(read, sample_records());
    }

    #[test]
    fn unsynced_records_are_not_durable() {
        let path = tmp("unsynced");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 9 });
        // No sync: nothing on disk yet.
        assert!(Wal::read_all(&path).unwrap().is_empty());
        wal.discard_pending();
        wal.sync().unwrap();
        assert!(Wal::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(Wal::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 1 });
        wal.append(&WalRecord::Commit { tx: 1 });
        wal.sync().unwrap();
        // Simulate a crash mid-append by truncating the file.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let read = Wal::read_all(&path).unwrap();
        assert_eq!(read, vec![WalRecord::Begin { tx: 1 }]);
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { tx: 1 });
        wal.append(&WalRecord::Commit { tx: 1 });
        wal.sync().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the first record.
        bytes[9] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Wal::read_all(&path), Err(RelError::Wal(_))));
    }

    #[test]
    fn unicode_and_empty_strings_survive() {
        let record = WalRecord::Insert {
            tx: 0,
            table: "enzymes".into(),
            row_id: RowId(3),
            row: vec![Value::Text("αβγ – café".into()), Value::Text(String::new())],
        };
        assert_eq!(WalRecord::decode(record.encode()).unwrap(), record);
    }
}
