//! The query planner.
//!
//! Compiles a parsed [`SelectStmt`] into a [`PlannedQuery`]. Planning is
//! rule-based, mirroring the paper's workflow of shaping indexes until the
//! optimizer picks them (§3.2):
//!
//! 1. every unqualified column reference is resolved to its table alias;
//! 2. the `WHERE` clause and all `ON` conditions are split into conjuncts;
//! 3. each table gets an access path — a B-tree [`Plan::IndexScan`] when a
//!    catalog index's leading key columns are bound by equality (plus an
//!    optional range on the next column), a [`Plan::KeywordScan`] when a
//!    `CONTAINS` conjunct hits a keyword index, and a full [`Plan::Scan`]
//!    otherwise — with the table's conjuncts re-applied as a filter;
//! 4. tables join left-deep, greedily preferring tables connected to the
//!    joined set by an equi-join conjunct (hash join) so unrelated tables
//!    do not cross-product early; nested loops otherwise;
//! 5. aggregation, projection (with hidden sort-key columns), sorting,
//!    `DISTINCT` and `LIMIT` complete the tree.

use std::collections::{BTreeMap, HashSet};
use std::ops::Bound;

use crate::error::{RelError, RelResult};
use crate::plan::{IndexAccess, Plan, PlannedQuery, ProjectItem, SortKey};
use crate::schema::Catalog;
use crate::sql::ast::{BinOp, Expr, SelectItem, SelectStmt, TableRef};
use crate::value::Value;

/// Plans a `SELECT` statement against the catalog.
pub fn plan_select(stmt: &SelectStmt, catalog: &Catalog) -> RelResult<PlannedQuery> {
    let mut tables: Vec<TableRef> = stmt.from.clone();
    tables.extend(stmt.joins.iter().map(|j| j.table.clone()));
    if tables.is_empty() {
        return Err(RelError::Parse("SELECT requires at least one table".into()));
    }
    // Alias → table mapping, with duplicate detection.
    let mut alias_map: BTreeMap<String, String> = BTreeMap::new();
    for t in &tables {
        if alias_map
            .insert(t.alias.to_ascii_lowercase(), t.table.clone())
            .is_some()
        {
            return Err(RelError::Parse(format!(
                "duplicate table alias {:?}",
                t.alias
            )));
        }
        catalog.table(&t.table)?; // existence check
    }
    let resolver = Resolver {
        catalog,
        tables: &tables,
    };

    // Gather and resolve all conjuncts from WHERE and ON clauses.
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(filter) = &stmt.filter {
        split_conjuncts(resolver.resolve_expr(filter.clone())?, &mut conjuncts);
    }
    for join in &stmt.joins {
        split_conjuncts(resolver.resolve_expr(join.on.clone())?, &mut conjuncts);
    }

    // Partition conjuncts by the set of aliases they touch.
    let mut single: BTreeMap<String, Vec<Expr>> = BTreeMap::new();
    let mut multi: Vec<Expr> = Vec::new();
    for c in conjuncts {
        let aliases = aliases_in(&c);
        if aliases.len() == 1 {
            let alias = aliases.into_iter().next().expect("one alias");
            single.entry(alias).or_default().push(c);
        } else {
            multi.push(c);
        }
    }

    // Access path per table.
    let mut inputs: Vec<(String, Plan)> = Vec::new();
    for t in &tables {
        let own = single
            .remove(&t.alias.to_ascii_lowercase())
            .unwrap_or_default();
        let scan = choose_access_path(t, &own, catalog);
        let plan = if own.is_empty() {
            scan
        } else {
            Plan::Filter {
                input: Box::new(scan),
                predicate: and_all(own),
            }
        };
        inputs.push((t.alias.to_ascii_lowercase(), plan));
    }

    // Expand the select list into project items. This happens *before*
    // join construction so that a bad column reference fails the query
    // with a clear UnknownColumn/AmbiguousColumn error instead of shaping
    // the join tree: the planner previously re-resolved these expressions
    // through a lossy `if let Ok(..)` when computing semi-join
    // eligibility, silently dropping resolution errors.
    let mut items: Vec<ProjectItem> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for t in &tables {
                    push_table_columns(&mut items, t, catalog)?;
                }
            }
            SelectItem::TableWildcard(alias) => {
                let t = tables
                    .iter()
                    .find(|t| t.alias.eq_ignore_ascii_case(alias))
                    .ok_or_else(|| RelError::UnknownTable(alias.clone()))?;
                push_table_columns(&mut items, t, catalog)?;
            }
            SelectItem::Expr { expr, alias } => {
                let resolved = resolver.resolve_expr(expr.clone())?;
                let name = alias
                    .clone()
                    .unwrap_or_else(|| derive_name(&resolved, items.len()));
                items.push(ProjectItem {
                    expr: resolved,
                    name,
                });
            }
        }
    }
    let visible = items.len();

    let group_by: Vec<Expr> = stmt
        .group_by
        .iter()
        .map(|e| resolver.resolve_expr(e.clone()))
        .collect::<RelResult<_>>()?;
    let is_aggregate = !group_by.is_empty() || items.iter().any(|i| i.expr.has_aggregate());

    // Sort keys: reuse a visible item when the key names or equals one;
    // otherwise append a hidden item.
    let mut sort_keys: Vec<SortKey> = Vec::new();
    for key in &stmt.order_by {
        let resolved = match resolver.resolve_expr(key.expr.clone()) {
            Ok(e) => e,
            // An ORDER BY name may reference a select alias rather than a
            // real column; fall back to name matching below.
            Err(err) => {
                let name = match &key.expr {
                    Expr::Column { table: None, name } => name.clone(),
                    _ => return Err(err),
                };
                let pos = items
                    .iter()
                    .position(|i| i.name.eq_ignore_ascii_case(&name))
                    .ok_or(err)?;
                sort_keys.push(SortKey {
                    column: pos,
                    descending: key.descending,
                });
                continue;
            }
        };
        let pos = items
            .iter()
            .position(|i| i.expr == resolved)
            .unwrap_or_else(|| {
                items.push(ProjectItem {
                    expr: resolved.clone(),
                    name: format!("__sort_{}", items.len()),
                });
                items.len() - 1
            });
        sort_keys.push(SortKey {
            column: pos,
            descending: key.descending,
        });
    }

    // Aliases whose columns are visible to anything above the join tree.
    // Everything above it evaluates against `items` (hidden sort keys
    // included) and `group_by`, all fully resolved by now, so these two
    // collections are exactly the visibility set. A table outside it whose
    // only role is existence-testing can join as a semi-join under
    // DISTINCT.
    let mut output_aliases: HashSet<String> = HashSet::new();
    for item in &items {
        output_aliases.extend(aliases_in(&item.expr));
    }
    for e in &group_by {
        output_aliases.extend(aliases_in(e));
    }

    // Join ordering (the planner-side half of §3.2's "meticulous analysis
    // of the query plans"): tables are first partitioned into connected
    // components of the multi-table-conjunct graph; each component builds
    // a left-deep plan greedily preferring equi-join-connected tables
    // (hash joins), and only the fully *reduced* components are then
    // crossed. Crossing reduced components instead of raw tables keeps
    // queries with independent bindings — the Figure 8 keyword search —
    // from materializing table-sized cross products.
    let components = connected_components(inputs, &multi);
    let mut component_plans: Vec<Plan> = Vec::new();
    for mut remaining in components {
        let (first_alias, mut plan) = remaining.remove(0);
        let mut joined: HashSet<String> = HashSet::from([first_alias]);
        while !remaining.is_empty() {
            let next_pos = remaining
                .iter()
                .position(|(alias, _)| {
                    multi
                        .iter()
                        .any(|c| equi_join_keys(c, &joined, alias).is_some())
                })
                .unwrap_or(0);
            let (alias, right) = remaining.remove(next_pos);
            let alias_key = alias.clone();
            // Find equi-join conjuncts connecting the joined set to `alias`.
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            let mut rest = Vec::new();
            for c in std::mem::take(&mut multi) {
                if let Some((lk, rk)) = equi_join_keys(&c, &joined, &alias) {
                    left_keys.push(lk);
                    right_keys.push(rk);
                } else {
                    rest.push(c);
                }
            }
            multi = rest;
            joined.insert(alias);
            // Conjuncts now fully contained in the joined set become
            // residuals of this join step.
            let mut residuals = Vec::new();
            let mut still_pending = Vec::new();
            for c in std::mem::take(&mut multi) {
                if aliases_in(&c).iter().all(|a| joined.contains(a)) {
                    residuals.push(c);
                } else {
                    still_pending.push(c);
                }
            }
            multi = still_pending;
            let residual = if residuals.is_empty() {
                None
            } else {
                Some(and_all(residuals))
            };
            // Semi-join eligibility: under DISTINCT, a table referenced by
            // nothing downstream (projection, ordering, grouping, residual
            // or pending conjuncts) only tests existence; multiplying rows
            // by its matches would be collapsed by DISTINCT anyway.
            let semi = stmt.distinct
                && residual.is_none()
                && !output_aliases.contains(&alias_key)
                && !multi.iter().any(|c| aliases_in(c).contains(&alias_key));
            plan = if left_keys.is_empty() {
                Plan::NestedLoopJoin {
                    left: Box::new(plan),
                    right: Box::new(right),
                    condition: residual,
                }
            } else {
                // Build-side invariant: the executor buffers the *right*
                // input of a HashJoin. Left-deep construction guarantees
                // that input is always a single table's access path
                // (possibly filtered), never an intermediate join result,
                // so build memory is bounded by one base table while the
                // growing join product streams through as the probe. The
                // catalog carries no row counts, so within that bound the
                // planner cannot pick the smaller of the two tables; if
                // stats ever land, prefer placing the expected-smaller
                // access path on the right here.
                Plan::HashJoin {
                    left: Box::new(plan),
                    right: Box::new(right),
                    left_keys,
                    right_keys,
                    residual,
                    semi,
                }
            };
        }
        component_plans.push(plan);
    }
    // Cross the reduced components. Any conjuncts still pending span
    // components without being equi-joins; the final cross carries them
    // as its condition.
    let mut component_iter = component_plans.into_iter();
    let mut plan = component_iter.next().expect("at least one component");
    let mut components_left = component_iter.len();
    for right in component_iter {
        components_left -= 1;
        let condition = if components_left == 0 && !multi.is_empty() {
            Some(and_all(std::mem::take(&mut multi)))
        } else {
            None
        };
        plan = Plan::NestedLoopJoin {
            left: Box::new(plan),
            right: Box::new(right),
            condition,
        };
    }
    // Anything left over (possible only for single-component queries with
    // non-equi multi-table conjuncts) goes into a top filter.
    if !multi.is_empty() {
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: and_all(multi),
        };
    }

    plan = if is_aggregate {
        Plan::Aggregate {
            input: Box::new(plan),
            group_by,
            items,
            visible,
        }
    } else {
        Plan::Project {
            input: Box::new(plan),
            items,
            visible,
        }
    };
    // Fuse `ORDER BY … LIMIT k` into a bounded Top-K instead of a full
    // sort. DISTINCT blocks the fusion: it runs between Sort and Limit,
    // so the limit cannot be pushed below it.
    match stmt.limit {
        Some(limit) if !sort_keys.is_empty() && !stmt.distinct => {
            plan = Plan::TopK {
                input: Box::new(plan),
                keys: sort_keys,
                limit,
                offset: stmt.offset.unwrap_or(0),
            };
        }
        _ => {
            if !sort_keys.is_empty() {
                plan = Plan::Sort {
                    input: Box::new(plan),
                    keys: sort_keys,
                };
            }
            if stmt.distinct {
                plan = Plan::Distinct {
                    input: Box::new(plan),
                    visible,
                };
            }
            if stmt.limit.is_some() || stmt.offset.is_some() {
                plan = Plan::Limit {
                    input: Box::new(plan),
                    limit: stmt.limit,
                    offset: stmt.offset.unwrap_or(0),
                };
            }
        }
    }
    Ok(PlannedQuery { plan, visible })
}

fn push_table_columns(
    items: &mut Vec<ProjectItem>,
    t: &TableRef,
    catalog: &Catalog,
) -> RelResult<()> {
    let schema = catalog.table(&t.table)?;
    for col in &schema.columns {
        items.push(ProjectItem {
            expr: Expr::col(Some(&t.alias), &col.name),
            name: col.name.clone(),
        });
    }
    Ok(())
}

fn derive_name(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => format!("col{position}"),
    }
}

pub(crate) fn split_conjuncts(expr: Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

fn and_all(mut exprs: Vec<Expr>) -> Expr {
    let mut acc = exprs.remove(0);
    for e in exprs {
        acc = Expr::binary(BinOp::And, acc, e);
    }
    acc
}

/// Partitions the table inputs into connected components of the
/// multi-table-conjunct graph, preserving declaration order within and
/// across components.
fn connected_components(inputs: Vec<(String, Plan)>, multi: &[Expr]) -> Vec<Vec<(String, Plan)>> {
    // Union-find over alias names.
    let aliases: Vec<String> = inputs.iter().map(|(a, _)| a.clone()).collect();
    let index: BTreeMap<&str, usize> = aliases
        .iter()
        .enumerate()
        .map(|(i, a)| (a.as_str(), i))
        .collect();
    let mut parent: Vec<usize> = (0..aliases.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for c in multi {
        let touched: Vec<usize> = aliases_in(c)
            .into_iter()
            .filter_map(|a| index.get(a.as_str()).copied())
            .collect();
        for pair in touched.windows(2) {
            let (ra, rb) = (find(&mut parent, pair[0]), find(&mut parent, pair[1]));
            if ra != rb {
                parent[rb] = ra;
            }
        }
    }
    let mut groups: Vec<(usize, Vec<(String, Plan)>)> = Vec::new();
    for (i, input) in inputs.into_iter().enumerate() {
        let root = find(&mut parent, i);
        match groups.iter_mut().find(|(r, _)| *r == root) {
            Some((_, members)) => members.push(input),
            None => groups.push((root, vec![input])),
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

/// The lowercase aliases referenced by an expression.
fn aliases_in(expr: &Expr) -> HashSet<String> {
    fn walk(expr: &Expr, out: &mut HashSet<String>) {
        match expr {
            Expr::Column { table, .. } => {
                if let Some(t) = table {
                    out.insert(t.to_ascii_lowercase());
                }
            }
            Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Not(e) | Expr::Neg(e) => walk(e, out),
            Expr::IsNull { expr, .. } => walk(expr, out),
            Expr::Like { expr, pattern, .. } => {
                walk(expr, out);
                walk(pattern, out);
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, out);
                for e in list {
                    walk(e, out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk(expr, out);
                walk(low, out);
                walk(high, out);
            }
            Expr::Contains { column, keyword } => {
                walk(column, out);
                walk(keyword, out);
            }
            Expr::Matches { column, pattern } => {
                walk(column, out);
                walk(pattern, out);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    walk(a, out);
                }
            }
        }
    }
    let mut out = HashSet::new();
    walk(expr, &mut out);
    out
}

/// If `c` is `lhs = rhs` with one side referencing only `joined` aliases
/// and the other only `new_alias`, returns `(left_key, right_key)`.
fn equi_join_keys(c: &Expr, joined: &HashSet<String>, new_alias: &str) -> Option<(Expr, Expr)> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = c
    else {
        return None;
    };
    let la = aliases_in(left);
    let ra = aliases_in(right);
    let only_joined = |s: &HashSet<String>| !s.is_empty() && s.iter().all(|a| joined.contains(a));
    let only_new = |s: &HashSet<String>| s.len() == 1 && s.contains(new_alias);
    if only_joined(&la) && only_new(&ra) {
        Some(((**left).clone(), (**right).clone()))
    } else if only_joined(&ra) && only_new(&la) {
        Some(((**right).clone(), (**left).clone()))
    } else {
        None
    }
}

/// Resolves unqualified column references against the tables in scope.
struct Resolver<'a> {
    catalog: &'a Catalog,
    tables: &'a [TableRef],
}

impl Resolver<'_> {
    fn resolve_column(&self, table: Option<String>, name: String) -> RelResult<Expr> {
        if let Some(alias) = table {
            // Verify the alias exists and carries the column.
            let t = self
                .tables
                .iter()
                .find(|t| t.alias.eq_ignore_ascii_case(&alias))
                .ok_or_else(|| RelError::UnknownTable(alias.clone()))?;
            let schema = self.catalog.table(&t.table)?;
            if schema.column_index(&name).is_none() {
                return Err(RelError::UnknownColumn(format!("{alias}.{name}")));
            }
            return Ok(Expr::Column {
                table: Some(t.alias.clone()),
                name,
            });
        }
        let mut owner = None;
        for t in self.tables {
            let schema = self.catalog.table(&t.table)?;
            if schema.column_index(&name).is_some() {
                if owner.is_some() {
                    return Err(RelError::AmbiguousColumn(name));
                }
                owner = Some(t.alias.clone());
            }
        }
        match owner {
            Some(alias) => Ok(Expr::Column {
                table: Some(alias),
                name,
            }),
            None => Err(RelError::UnknownColumn(name)),
        }
    }

    fn resolve_expr(&self, expr: Expr) -> RelResult<Expr> {
        Ok(match expr {
            Expr::Column { table, name } => self.resolve_column(table, name)?,
            Expr::Literal(v) => Expr::Literal(v),
            Expr::Param(i) => Expr::Param(i),
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(self.resolve_expr(*left)?),
                right: Box::new(self.resolve_expr(*right)?),
            },
            Expr::Not(e) => Expr::Not(Box::new(self.resolve_expr(*e)?)),
            Expr::Neg(e) => Expr::Neg(Box::new(self.resolve_expr(*e)?)),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.resolve_expr(*expr)?),
                negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.resolve_expr(*expr)?),
                pattern: Box::new(self.resolve_expr(*pattern)?),
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.resolve_expr(*expr)?),
                list: list
                    .into_iter()
                    .map(|e| self.resolve_expr(e))
                    .collect::<RelResult<_>>()?,
                negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.resolve_expr(*expr)?),
                low: Box::new(self.resolve_expr(*low)?),
                high: Box::new(self.resolve_expr(*high)?),
                negated,
            },
            Expr::Contains { column, keyword } => Expr::Contains {
                column: Box::new(self.resolve_expr(*column)?),
                keyword: Box::new(self.resolve_expr(*keyword)?),
            },
            Expr::Matches { column, pattern } => Expr::Matches {
                column: Box::new(self.resolve_expr(*column)?),
                pattern: Box::new(self.resolve_expr(*pattern)?),
            },
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => Expr::Aggregate {
                func,
                arg: match arg {
                    Some(a) => Some(Box::new(self.resolve_expr(*a)?)),
                    None => None,
                },
                distinct,
            },
        })
    }
}

/// Chooses the cheapest access path for one table given its single-table
/// conjuncts (already alias-resolved).
pub(crate) fn choose_access_path(t: &TableRef, conjuncts: &[Expr], catalog: &Catalog) -> Plan {
    // Collect sargable constraints per column (lowercase names).
    let mut eq: BTreeMap<String, Value> = BTreeMap::new();
    let mut ranges: BTreeMap<String, (Bound<Value>, Bound<Value>)> = BTreeMap::new();
    let mut keywords: Vec<(String, String)> = Vec::new();
    for c in conjuncts {
        collect_sargs(c, &mut eq, &mut ranges, &mut keywords);
    }

    // Keyword index first: a CONTAINS hit through the inverted index is the
    // paper's purpose-built fast path for keyword queries.
    for (col, kw) in &keywords {
        for def in catalog.indexes_on(&t.table) {
            if def.keyword && def.columns[0].eq_ignore_ascii_case(col) {
                return Plan::KeywordScan {
                    table: t.table.clone(),
                    alias: t.alias.clone(),
                    index: def.name.clone(),
                    keyword: kw.clone(),
                };
            }
        }
    }

    // Best B-tree index: longest equality prefix, range extension breaks ties.
    let mut best: Option<(usize, bool, Plan)> = None;
    for def in catalog.indexes_on(&t.table) {
        if def.keyword {
            continue;
        }
        let mut values = Vec::new();
        for col in &def.columns {
            match eq.get(&col.to_ascii_lowercase()) {
                Some(v) => values.push(v.clone()),
                None => break,
            }
        }
        let matched = values.len();
        let range_col = def.columns.get(matched).map(|c| c.to_ascii_lowercase());
        let range = range_col.as_ref().and_then(|c| ranges.get(c)).cloned();
        let candidate = if matched == 0 && range.is_none() {
            continue;
        } else if let Some((lower, upper)) = range {
            (
                matched,
                true,
                Plan::IndexScan {
                    table: t.table.clone(),
                    alias: t.alias.clone(),
                    index: def.name.clone(),
                    access: IndexAccess::Range {
                        prefix: values,
                        lower,
                        upper,
                    },
                },
            )
        } else {
            (
                matched,
                false,
                Plan::IndexScan {
                    table: t.table.clone(),
                    alias: t.alias.clone(),
                    index: def.name.clone(),
                    access: IndexAccess::Exact(values),
                },
            )
        };
        let better = match &best {
            None => true,
            Some((m, r, _)) => candidate.0 > *m || (candidate.0 == *m && candidate.1 && !r),
        };
        if better {
            best = Some(candidate);
        }
    }
    if let Some((_, _, plan)) = best {
        return plan;
    }
    Plan::Scan {
        table: t.table.clone(),
        alias: t.alias.clone(),
    }
}

/// Extracts index-usable constraints from one conjunct.
fn collect_sargs(
    c: &Expr,
    eq: &mut BTreeMap<String, Value>,
    ranges: &mut BTreeMap<String, (Bound<Value>, Bound<Value>)>,
    keywords: &mut Vec<(String, String)>,
) {
    fn col_name(e: &Expr) -> Option<String> {
        match e {
            Expr::Column { name, .. } => Some(name.to_ascii_lowercase()),
            _ => None,
        }
    }
    fn literal(e: &Expr) -> Option<Value> {
        match e {
            Expr::Literal(v) if !v.is_null() => Some(v.clone()),
            _ => None,
        }
    }
    match c {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            // Normalize to column-op-literal.
            let (col, val, op) = match (col_name(left), literal(right)) {
                (Some(c), Some(v)) => (c, v, *op),
                _ => match (col_name(right), literal(left)) {
                    (Some(c), Some(v)) => {
                        let flipped = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => *other,
                        };
                        (c, v, flipped)
                    }
                    _ => return,
                },
            };
            match op {
                BinOp::Eq => {
                    eq.insert(col, val);
                }
                BinOp::Lt => {
                    let r = ranges
                        .entry(col)
                        .or_insert((Bound::Unbounded, Bound::Unbounded));
                    r.1 = Bound::Excluded(val);
                }
                BinOp::Le => {
                    let r = ranges
                        .entry(col)
                        .or_insert((Bound::Unbounded, Bound::Unbounded));
                    r.1 = Bound::Included(val);
                }
                BinOp::Gt => {
                    let r = ranges
                        .entry(col)
                        .or_insert((Bound::Unbounded, Bound::Unbounded));
                    r.0 = Bound::Excluded(val);
                }
                BinOp::Ge => {
                    let r = ranges
                        .entry(col)
                        .or_insert((Bound::Unbounded, Bound::Unbounded));
                    r.0 = Bound::Included(val);
                }
                _ => {}
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            if let (Some(col), Some(lo), Some(hi)) = (col_name(expr), literal(low), literal(high)) {
                ranges.insert(col, (Bound::Included(lo), Bound::Included(hi)));
            }
        }
        Expr::Contains { column, keyword } => {
            if let (Some(col), Some(Value::Text(kw))) = (col_name(column), literal(keyword)) {
                keywords.push((col, kw));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, IndexDef, TableSchema};
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse_statement;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(TableSchema::new(
            "elements",
            vec![
                Column::new("doc_id", DataType::Int),
                Column::new("path", DataType::Text),
                Column::new("ord", DataType::Int),
                Column::new("val", DataType::Text),
            ],
        ))
        .unwrap();
        cat.create_table(TableSchema::new(
            "attrs",
            vec![
                Column::new("doc_id", DataType::Int),
                Column::new("aname", DataType::Text),
                Column::new("aval", DataType::Text),
            ],
        ))
        .unwrap();
        cat.create_index(IndexDef {
            name: "idx_path".into(),
            table: "elements".into(),
            columns: vec!["path".into(), "ord".into()],
            keyword: false,
        })
        .unwrap();
        cat.create_index(IndexDef {
            name: "kw_val".into(),
            table: "elements".into(),
            columns: vec!["val".into()],
            keyword: true,
        })
        .unwrap();
        cat
    }

    fn plan(sql: &str) -> PlannedQuery {
        let stmt = match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        plan_select(&stmt, &catalog()).unwrap()
    }

    fn find_scan(plan: &Plan) -> &Plan {
        match plan {
            Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::KeywordScan { .. } => plan,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::TopK { input, .. }
            | Plan::Distinct { input, .. }
            | Plan::Limit { input, .. } => find_scan(input),
            Plan::NestedLoopJoin { left, .. } | Plan::HashJoin { left, .. } => find_scan(left),
        }
    }

    #[test]
    fn full_scan_without_predicates() {
        let p = plan("SELECT val FROM elements");
        assert!(matches!(find_scan(&p.plan), Plan::Scan { .. }));
        assert_eq!(p.visible, 1);
    }

    #[test]
    fn equality_picks_index() {
        let p = plan("SELECT val FROM elements WHERE path = '/a/b'");
        match find_scan(&p.plan) {
            Plan::IndexScan {
                index,
                access: IndexAccess::Exact(values),
                ..
            } => {
                assert_eq!(index, "idx_path");
                assert_eq!(values, &vec![Value::Text("/a/b".into())]);
            }
            other => panic!("expected index scan, got {other:?}"),
        }
    }

    #[test]
    fn composite_equality_uses_both_columns() {
        let p = plan("SELECT val FROM elements WHERE path = '/a' AND ord = 3");
        match find_scan(&p.plan) {
            Plan::IndexScan {
                access: IndexAccess::Exact(values),
                ..
            } => {
                assert_eq!(values.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_after_prefix() {
        let p = plan("SELECT val FROM elements WHERE path = '/a' AND ord BETWEEN 2 AND 9");
        match find_scan(&p.plan) {
            Plan::IndexScan {
                access:
                    IndexAccess::Range {
                        prefix,
                        lower,
                        upper,
                    },
                ..
            } => {
                assert_eq!(prefix.len(), 1);
                assert_eq!(*lower, Bound::Included(Value::Int(2)));
                assert_eq!(*upper, Bound::Included(Value::Int(9)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn contains_picks_keyword_index() {
        let p = plan("SELECT val FROM elements WHERE CONTAINS(val, 'cdc6')");
        match find_scan(&p.plan) {
            Plan::KeywordScan { index, keyword, .. } => {
                assert_eq!(index, "kw_val");
                assert_eq!(keyword, "cdc6");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_sargable_predicate_scans() {
        let p = plan("SELECT val FROM elements WHERE val LIKE '%x%'");
        assert!(matches!(find_scan(&p.plan), Plan::Scan { .. }));
        assert!(!p.plan.uses_index());
    }

    #[test]
    fn equijoin_becomes_hash_join() {
        let p = plan(
            "SELECT e.val FROM elements e, attrs a WHERE e.doc_id = a.doc_id AND a.aname = 'x'",
        );
        fn has_hash(plan: &Plan) -> bool {
            match plan {
                Plan::HashJoin { .. } => true,
                Plan::Project { input, .. }
                | Plan::Filter { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. }
                | Plan::Distinct { input, .. }
                | Plan::Aggregate { input, .. } => has_hash(input),
                _ => false,
            }
        }
        assert!(has_hash(&p.plan), "{}", p.plan.explain());
    }

    #[test]
    fn explicit_join_on_condition() {
        let p = plan("SELECT e.val FROM elements e JOIN attrs a ON e.doc_id = a.doc_id");
        assert!(
            p.plan.explain().contains("HashJoin"),
            "{}",
            p.plan.explain()
        );
    }

    #[test]
    fn join_reordering_avoids_cross_products() {
        // Tables declared as (elements, attrs_like, elements2) where the
        // middle table connects to NEITHER directly, but elements joins
        // elements2: the planner must join the connected pair first.
        let p = plan(
            "SELECT e.val FROM elements e, attrs a, elements e2 \
             WHERE e.val = e2.val AND e2.doc_id = a.doc_id",
        );
        let text = p.plan.explain();
        // Every join in the tree must be a hash join — no cross product.
        assert!(!text.contains("NestedLoopJoin"), "{text}");
        assert_eq!(text.matches("HashJoin").count(), 2, "{text}");
    }

    #[test]
    fn independent_components_reduce_before_crossing() {
        // Two independent pairs: (e ⋈ a) × (e2 ⋈ a2). The cross must sit
        // ABOVE both hash joins, not between raw tables.
        let p = plan(
            "SELECT e.val FROM elements e, attrs a, elements e2, attrs a2 \
             WHERE e.doc_id = a.doc_id AND e2.doc_id = a2.doc_id",
        );
        match strip_to_join(&p.plan) {
            Plan::NestedLoopJoin { left, right, .. } => {
                assert!(
                    matches!(**left, Plan::HashJoin { .. }),
                    "{}",
                    p.plan.explain()
                );
                assert!(
                    matches!(**right, Plan::HashJoin { .. }),
                    "{}",
                    p.plan.explain()
                );
            }
            other => panic!("expected top-level cross, got {other:?}"),
        }
    }

    fn strip_to_join(plan: &Plan) -> &Plan {
        match plan {
            Plan::Project { input, .. }
            | Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::TopK { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input, .. }
            | Plan::Aggregate { input, .. } => strip_to_join(input),
            other => other,
        }
    }

    #[test]
    fn semi_join_under_distinct_for_existence_only_tables() {
        // `a` only tests existence: DISTINCT query, no projected/ordered
        // columns from it, equality join, no residual.
        let p = plan("SELECT DISTINCT e.val FROM elements e, attrs a WHERE e.doc_id = a.doc_id");
        assert!(
            p.plan.explain().contains("HashSemiJoin"),
            "{}",
            p.plan.explain()
        );
        // Without DISTINCT the multiplicity matters: plain hash join.
        let p2 = plan("SELECT e.val FROM elements e, attrs a WHERE e.doc_id = a.doc_id");
        assert!(
            !p2.plan.explain().contains("HashSemiJoin"),
            "{}",
            p2.plan.explain()
        );
        // A projected column from `a` forbids the semi-join.
        let p3 = plan(
            "SELECT DISTINCT e.val, a.aname FROM elements e, attrs a \
             WHERE e.doc_id = a.doc_id",
        );
        assert!(
            !p3.plan.explain().contains("HashSemiJoin"),
            "{}",
            p3.plan.explain()
        );
        // An ORDER BY reference also forbids it.
        let p4 = plan(
            "SELECT DISTINCT e.val FROM elements e, attrs a \
             WHERE e.doc_id = a.doc_id ORDER BY a.aname",
        );
        assert!(
            !p4.plan.explain().contains("HashSemiJoin"),
            "{}",
            p4.plan.explain()
        );
    }

    #[test]
    fn cross_join_is_nested_loop() {
        let p = plan("SELECT e.val FROM elements e, attrs a");
        assert!(
            p.plan.explain().contains("NestedLoopJoin"),
            "{}",
            p.plan.explain()
        );
    }

    #[test]
    fn unqualified_columns_resolve() {
        let p = plan("SELECT aname FROM elements e, attrs a WHERE aname = 'x'");
        assert_eq!(p.visible, 1);
    }

    #[test]
    fn ambiguous_column_rejected() {
        let stmt = match parse_statement("SELECT doc_id FROM elements e, attrs a").unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(matches!(
            plan_select(&stmt, &catalog()),
            Err(RelError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn unknown_column_and_table_rejected() {
        for sql in [
            "SELECT nope FROM elements",
            "SELECT e.nope FROM elements e",
            "SELECT x.val FROM elements e",
            "SELECT val FROM missing",
        ] {
            let stmt = match parse_statement(sql).unwrap() {
                Statement::Select(s) => s,
                _ => unreachable!(),
            };
            assert!(plan_select(&stmt, &catalog()).is_err(), "{sql}");
        }
    }

    #[test]
    fn order_by_alias_and_hidden_key() {
        let p = plan("SELECT val AS v FROM elements ORDER BY v");
        assert!(p.plan.explain().contains("Sort"));
        // Hidden sort key case: order by a non-projected column.
        let p2 = plan("SELECT val FROM elements ORDER BY ord DESC");
        match &p2.plan {
            Plan::Sort { input, keys } => {
                assert_eq!(keys[0].column, 1); // hidden key appended after `val`
                assert!(keys[0].descending);
                match input.as_ref() {
                    Plan::Project { items, visible, .. } => {
                        assert_eq!(*visible, 1);
                        assert_eq!(items.len(), 2);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates_route_to_aggregate_node() {
        let p = plan("SELECT path, COUNT(*) FROM elements GROUP BY path");
        assert!(p.plan.explain().contains("Aggregate groups=1"));
        let p2 = plan("SELECT COUNT(*) FROM elements");
        assert!(p2.plan.explain().contains("Aggregate groups=0"));
    }

    #[test]
    fn wildcard_expansion() {
        let p = plan("SELECT * FROM elements e, attrs a");
        assert_eq!(p.visible, 7);
        let p2 = plan("SELECT a.* FROM elements e, attrs a");
        assert_eq!(p2.visible, 3);
    }

    #[test]
    fn order_by_limit_fuses_to_topk() {
        let p = plan("SELECT val FROM elements ORDER BY ord LIMIT 5 OFFSET 2");
        match &p.plan {
            Plan::TopK {
                keys,
                limit,
                offset,
                ..
            } => {
                assert_eq!(keys.len(), 1);
                assert_eq!(*limit, 5);
                assert_eq!(*offset, 2);
            }
            other => panic!("expected TopK, got {other:?}"),
        }
        // The ORDER-BY-select-alias fallback fuses too.
        let p2 = plan("SELECT val AS v FROM elements ORDER BY v LIMIT 3");
        assert!(
            p2.plan.explain().contains("TopK 3"),
            "{}",
            p2.plan.explain()
        );
    }

    #[test]
    fn distinct_blocks_topk_fusion() {
        // DISTINCT sits between Sort and Limit, so pushing the limit into
        // the sort would drop rows before duplicate elimination.
        let p = plan("SELECT DISTINCT val FROM elements ORDER BY val LIMIT 2");
        let text = p.plan.explain();
        assert!(!text.contains("TopK"), "{text}");
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("Distinct"), "{text}");
        assert!(text.contains("Limit"), "{text}");
    }

    #[test]
    fn sort_without_limit_and_limit_without_sort_stay_unfused() {
        let p = plan("SELECT val FROM elements ORDER BY val");
        assert!(!p.plan.explain().contains("TopK"), "{}", p.plan.explain());
        let p2 = plan("SELECT val FROM elements LIMIT 5");
        assert!(!p2.plan.explain().contains("TopK"), "{}", p2.plan.explain());
        // OFFSET without LIMIT has no bound to push into the sort.
        let p3 = plan("SELECT val FROM elements ORDER BY val OFFSET 3");
        assert!(!p3.plan.explain().contains("TopK"), "{}", p3.plan.explain());
        assert!(p3.plan.explain().contains("Limit"), "{}", p3.plan.explain());
    }

    #[test]
    fn semi_join_eligibility_errors_propagate() {
        // Regression: computing semi-join eligibility used a lossy
        // `if let Ok(..)` re-resolution that swallowed UnknownColumn /
        // AmbiguousColumn errors from the select list, GROUP BY and
        // ORDER BY. Each of these must surface the error.
        for sql in [
            "SELECT DISTINCT e.nope FROM elements e, attrs a WHERE e.doc_id = a.doc_id",
            "SELECT DISTINCT e.val FROM elements e, attrs a \
             WHERE e.doc_id = a.doc_id GROUP BY e.nope",
            "SELECT DISTINCT e.val FROM elements e, attrs a \
             WHERE e.doc_id = a.doc_id ORDER BY e.nope",
            "SELECT DISTINCT doc_id FROM elements e, attrs a WHERE e.doc_id = a.doc_id",
        ] {
            let stmt = match parse_statement(sql).unwrap() {
                Statement::Select(s) => s,
                _ => unreachable!(),
            };
            let err = plan_select(&stmt, &catalog()).unwrap_err();
            assert!(
                matches!(
                    err,
                    RelError::UnknownColumn(_) | RelError::AmbiguousColumn(_)
                ),
                "{sql}: {err:?}"
            );
        }
        // Valid existence-only queries still get the semi-join.
        let p = plan("SELECT DISTINCT e.val FROM elements e, attrs a WHERE e.doc_id = a.doc_id");
        assert!(
            p.plan.explain().contains("HashSemiJoin"),
            "{}",
            p.plan.explain()
        );
    }

    #[test]
    fn duplicate_alias_rejected() {
        let stmt = match parse_statement("SELECT 1 FROM elements x, attrs x").unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(plan_select(&stmt, &catalog()).is_err());
    }
}
