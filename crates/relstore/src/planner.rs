//! The query planner.
//!
//! Compiles a parsed [`SelectStmt`] into a [`PlannedQuery`]. Planning
//! mirrors the paper's workflow of shaping indexes until the optimizer
//! picks them (§3.2):
//!
//! 1. every unqualified column reference is resolved to its table alias;
//! 2. the `WHERE` clause and all `ON` conditions are split into conjuncts;
//! 3. each table gets an access path — a B-tree [`Plan::IndexScan`] when a
//!    catalog index's leading key columns are bound by equality (plus an
//!    optional range on the next column), a [`Plan::KeywordScan`] when a
//!    `CONTAINS` conjunct hits a keyword index, and a full [`Plan::Scan`]
//!    otherwise — with the table's conjuncts re-applied as a filter;
//! 4. tables join left-deep, preferring tables connected to the joined
//!    set by an equi-join conjunct (hash join) so unrelated tables do not
//!    cross-product early; nested loops otherwise. When every table in a
//!    component carries `ANALYZE`d statistics the order is *cost-based*:
//!    seeds and join steps are chosen to minimize estimated intermediate
//!    rows, which also places the smaller estimated input on the hash
//!    join's build side. Without statistics the original greedy
//!    connectivity order is kept;
//! 5. aggregation, projection (with hidden sort-key columns), sorting,
//!    `DISTINCT` and `LIMIT` complete the tree.
//!
//! Alongside the operator tree, the planner emits a [`PlanEstimate`] for
//! every node — cardinalities derived from the [`StatsCatalog`]'s row
//! counts, min/max bounds, null fractions and NDV sketches (see
//! [`Estimator`] for the selectivity model). Unbound `?` parameters get
//! placeholder selectivities, so prepared statements can be explained
//! before binding.

use std::collections::{BTreeMap, HashSet};
use std::ops::Bound;

use crate::error::{RelError, RelResult};
use crate::plan::{IndexAccess, Plan, PlanEstimate, PlannedQuery, ProjectItem, SortKey};
use crate::schema::Catalog;
use crate::sql::ast::{BinOp, Expr, SelectItem, SelectStmt, TableRef};
use crate::stats::StatsCatalog;
use crate::value::Value;

/// Plans a `SELECT` statement against the catalog, using `stats` for
/// cardinality estimation and cost-based join ordering.
pub fn plan_select(
    stmt: &SelectStmt,
    catalog: &Catalog,
    stats: &StatsCatalog,
) -> RelResult<PlannedQuery> {
    let mut tables: Vec<TableRef> = stmt.from.clone();
    tables.extend(stmt.joins.iter().map(|j| j.table.clone()));
    if tables.is_empty() {
        return Err(RelError::Parse("SELECT requires at least one table".into()));
    }
    // Alias → table mapping, with duplicate detection.
    let mut alias_map: BTreeMap<String, String> = BTreeMap::new();
    for t in &tables {
        if alias_map
            .insert(t.alias.to_ascii_lowercase(), t.table.clone())
            .is_some()
        {
            return Err(RelError::Parse(format!(
                "duplicate table alias {:?}",
                t.alias
            )));
        }
        catalog.table(&t.table)?; // existence check
    }
    let resolver = Resolver {
        catalog,
        tables: &tables,
    };

    // Gather and resolve all conjuncts from WHERE and ON clauses.
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(filter) = &stmt.filter {
        split_conjuncts(resolver.resolve_expr(filter.clone())?, &mut conjuncts);
    }
    for join in &stmt.joins {
        split_conjuncts(resolver.resolve_expr(join.on.clone())?, &mut conjuncts);
    }

    // Partition conjuncts by the set of aliases they touch.
    let mut single: BTreeMap<String, Vec<Expr>> = BTreeMap::new();
    let mut multi: Vec<Expr> = Vec::new();
    for c in conjuncts {
        let aliases = aliases_in(&c);
        if aliases.len() == 1 {
            let alias = aliases.into_iter().next().expect("one alias");
            single.entry(alias).or_default().push(c);
        } else {
            multi.push(c);
        }
    }

    // Access path per table.
    let mut inputs: Vec<(String, Plan)> = Vec::new();
    for t in &tables {
        let own = single
            .remove(&t.alias.to_ascii_lowercase())
            .unwrap_or_default();
        let scan = choose_access_path(t, &own, catalog, stats);
        let plan = if own.is_empty() {
            scan
        } else {
            Plan::Filter {
                input: Box::new(scan),
                predicate: and_all(own),
            }
        };
        inputs.push((t.alias.to_ascii_lowercase(), plan));
    }

    // Expand the select list into project items. This happens *before*
    // join construction so that a bad column reference fails the query
    // with a clear UnknownColumn/AmbiguousColumn error instead of shaping
    // the join tree: the planner previously re-resolved these expressions
    // through a lossy `if let Ok(..)` when computing semi-join
    // eligibility, silently dropping resolution errors.
    let mut items: Vec<ProjectItem> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for t in &tables {
                    push_table_columns(&mut items, t, catalog)?;
                }
            }
            SelectItem::TableWildcard(alias) => {
                let t = tables
                    .iter()
                    .find(|t| t.alias.eq_ignore_ascii_case(alias))
                    .ok_or_else(|| RelError::UnknownTable(alias.clone()))?;
                push_table_columns(&mut items, t, catalog)?;
            }
            SelectItem::Expr { expr, alias } => {
                let resolved = resolver.resolve_expr(expr.clone())?;
                let name = alias
                    .clone()
                    .unwrap_or_else(|| derive_name(&resolved, items.len()));
                items.push(ProjectItem {
                    expr: resolved,
                    name,
                });
            }
        }
    }
    let visible = items.len();

    let group_by: Vec<Expr> = stmt
        .group_by
        .iter()
        .map(|e| resolver.resolve_expr(e.clone()))
        .collect::<RelResult<_>>()?;
    let is_aggregate = !group_by.is_empty() || items.iter().any(|i| i.expr.has_aggregate());

    // Sort keys: reuse a visible item when the key names or equals one;
    // otherwise append a hidden item.
    let mut sort_keys: Vec<SortKey> = Vec::new();
    for key in &stmt.order_by {
        let resolved = match resolver.resolve_expr(key.expr.clone()) {
            Ok(e) => e,
            // An ORDER BY name may reference a select alias rather than a
            // real column; fall back to name matching below.
            Err(err) => {
                let name = match &key.expr {
                    Expr::Column { table: None, name } => name.clone(),
                    _ => return Err(err),
                };
                let pos = items
                    .iter()
                    .position(|i| i.name.eq_ignore_ascii_case(&name))
                    .ok_or(err)?;
                sort_keys.push(SortKey {
                    column: pos,
                    descending: key.descending,
                });
                continue;
            }
        };
        let pos = items
            .iter()
            .position(|i| i.expr == resolved)
            .unwrap_or_else(|| {
                items.push(ProjectItem {
                    expr: resolved.clone(),
                    name: format!("__sort_{}", items.len()),
                });
                items.len() - 1
            });
        sort_keys.push(SortKey {
            column: pos,
            descending: key.descending,
        });
    }

    // Aliases whose columns are visible to anything above the join tree.
    // Everything above it evaluates against `items` (hidden sort keys
    // included) and `group_by`, all fully resolved by now, so these two
    // collections are exactly the visibility set. A table outside it whose
    // only role is existence-testing can join as a semi-join under
    // DISTINCT.
    let mut output_aliases: HashSet<String> = HashSet::new();
    for item in &items {
        output_aliases.extend(aliases_in(&item.expr));
    }
    for e in &group_by {
        output_aliases.extend(aliases_in(e));
    }

    // Join ordering (the planner-side half of §3.2's "meticulous analysis
    // of the query plans"): tables are first partitioned into connected
    // components of the multi-table-conjunct graph; each component builds
    // a left-deep plan preferring equi-join-connected tables (hash
    // joins), and only the fully *reduced* components are then crossed.
    // Crossing reduced components instead of raw tables keeps queries
    // with independent bindings — the Figure 8 keyword search — from
    // materializing table-sized cross products.
    //
    // When every table in a component has ANALYZEd statistics, the
    // component's members are reordered cost-based before construction:
    // each candidate seed is completed greedily by minimal estimated
    // join output, and the cheapest completion (by total estimated rows
    // processed) wins. The construction loop below then consumes the
    // members in exactly that order.
    let estimator = Estimator {
        catalog,
        stats,
        aliases: &alias_map,
    };
    let components = connected_components(inputs, &multi);
    let mut component_plans: Vec<Plan> = Vec::new();
    for mut remaining in components {
        order_component(&mut remaining, &multi, &estimator);
        let (first_alias, mut plan) = remaining.remove(0);
        let mut joined: HashSet<String> = HashSet::from([first_alias]);
        while !remaining.is_empty() {
            let next_pos = remaining
                .iter()
                .position(|(alias, _)| {
                    multi
                        .iter()
                        .any(|c| equi_join_keys(c, &joined, alias).is_some())
                })
                .unwrap_or(0);
            let (alias, right) = remaining.remove(next_pos);
            let alias_key = alias.clone();
            // Find equi-join conjuncts connecting the joined set to `alias`.
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            let mut rest = Vec::new();
            for c in std::mem::take(&mut multi) {
                if let Some((lk, rk)) = equi_join_keys(&c, &joined, &alias) {
                    left_keys.push(lk);
                    right_keys.push(rk);
                } else {
                    rest.push(c);
                }
            }
            multi = rest;
            joined.insert(alias);
            // Conjuncts now fully contained in the joined set become
            // residuals of this join step.
            let mut residuals = Vec::new();
            let mut still_pending = Vec::new();
            for c in std::mem::take(&mut multi) {
                if aliases_in(&c).iter().all(|a| joined.contains(a)) {
                    residuals.push(c);
                } else {
                    still_pending.push(c);
                }
            }
            multi = still_pending;
            let residual = if residuals.is_empty() {
                None
            } else {
                Some(and_all(residuals))
            };
            // Semi-join eligibility: under DISTINCT, a table referenced by
            // nothing downstream (projection, ordering, grouping, residual
            // or pending conjuncts) only tests existence; multiplying rows
            // by its matches would be collapsed by DISTINCT anyway.
            let semi = stmt.distinct
                && residual.is_none()
                && !output_aliases.contains(&alias_key)
                && !multi.iter().any(|c| aliases_in(c).contains(&alias_key));
            plan = if left_keys.is_empty() {
                Plan::NestedLoopJoin {
                    left: Box::new(plan),
                    right: Box::new(right),
                    condition: residual,
                }
            } else {
                // Build-side invariant: the executor buffers the *right*
                // input of a HashJoin. Left-deep construction guarantees
                // that input is always a single table's access path
                // (possibly filtered), never an intermediate join result,
                // so build memory is bounded by one base table while the
                // growing join product streams through as the probe.
                // Within that bound the cost-based reorder above already
                // placed the smallest estimated inputs on the build side
                // (when statistics exist).
                Plan::HashJoin {
                    left: Box::new(plan),
                    right: Box::new(right),
                    left_keys,
                    right_keys,
                    residual,
                    semi,
                }
            };
        }
        component_plans.push(plan);
    }
    // Cross the reduced components. Any conjuncts still pending span
    // components without being equi-joins; the final cross carries them
    // as its condition.
    let mut component_iter = component_plans.into_iter();
    let mut plan = component_iter.next().expect("at least one component");
    let mut components_left = component_iter.len();
    for right in component_iter {
        components_left -= 1;
        let condition = if components_left == 0 && !multi.is_empty() {
            Some(and_all(std::mem::take(&mut multi)))
        } else {
            None
        };
        plan = Plan::NestedLoopJoin {
            left: Box::new(plan),
            right: Box::new(right),
            condition,
        };
    }
    // Anything left over (possible only for single-component queries with
    // non-equi multi-table conjuncts) goes into a top filter.
    if !multi.is_empty() {
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: and_all(multi),
        };
    }

    plan = if is_aggregate {
        Plan::Aggregate {
            input: Box::new(plan),
            group_by,
            items,
            visible,
        }
    } else {
        Plan::Project {
            input: Box::new(plan),
            items,
            visible,
        }
    };
    // Fuse `ORDER BY … LIMIT k` into a bounded Top-K instead of a full
    // sort. DISTINCT blocks the fusion: it runs between Sort and Limit,
    // so the limit cannot be pushed below it.
    match stmt.limit {
        Some(limit) if !sort_keys.is_empty() && !stmt.distinct => {
            plan = Plan::TopK {
                input: Box::new(plan),
                keys: sort_keys,
                limit,
                offset: stmt.offset.unwrap_or(0),
            };
        }
        _ => {
            if !sort_keys.is_empty() {
                plan = Plan::Sort {
                    input: Box::new(plan),
                    keys: sort_keys,
                };
            }
            if stmt.distinct {
                plan = Plan::Distinct {
                    input: Box::new(plan),
                    visible,
                };
            }
            if stmt.limit.is_some() || stmt.offset.is_some() {
                plan = Plan::Limit {
                    input: Box::new(plan),
                    limit: stmt.limit,
                    offset: stmt.offset.unwrap_or(0),
                };
            }
        }
    }
    let estimate = estimator.estimate(&plan);
    Ok(PlannedQuery {
        plan,
        visible,
        estimate,
    })
}

fn push_table_columns(
    items: &mut Vec<ProjectItem>,
    t: &TableRef,
    catalog: &Catalog,
) -> RelResult<()> {
    let schema = catalog.table(&t.table)?;
    for col in &schema.columns {
        items.push(ProjectItem {
            expr: Expr::col(Some(&t.alias), &col.name),
            name: col.name.clone(),
        });
    }
    Ok(())
}

fn derive_name(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => format!("col{position}"),
    }
}

pub(crate) fn split_conjuncts(expr: Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

fn and_all(mut exprs: Vec<Expr>) -> Expr {
    let mut acc = exprs.remove(0);
    for e in exprs {
        acc = Expr::binary(BinOp::And, acc, e);
    }
    acc
}

/// Partitions the table inputs into connected components of the
/// multi-table-conjunct graph, preserving declaration order within and
/// across components.
fn connected_components(inputs: Vec<(String, Plan)>, multi: &[Expr]) -> Vec<Vec<(String, Plan)>> {
    // Union-find over alias names.
    let aliases: Vec<String> = inputs.iter().map(|(a, _)| a.clone()).collect();
    let index: BTreeMap<&str, usize> = aliases
        .iter()
        .enumerate()
        .map(|(i, a)| (a.as_str(), i))
        .collect();
    let mut parent: Vec<usize> = (0..aliases.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for c in multi {
        let touched: Vec<usize> = aliases_in(c)
            .into_iter()
            .filter_map(|a| index.get(a.as_str()).copied())
            .collect();
        for pair in touched.windows(2) {
            let (ra, rb) = (find(&mut parent, pair[0]), find(&mut parent, pair[1]));
            if ra != rb {
                parent[rb] = ra;
            }
        }
    }
    let mut groups: Vec<(usize, Vec<(String, Plan)>)> = Vec::new();
    for (i, input) in inputs.into_iter().enumerate() {
        let root = find(&mut parent, i);
        match groups.iter_mut().find(|(r, _)| *r == root) {
            Some((_, members)) => members.push(input),
            None => groups.push((root, vec![input])),
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

/// The lowercase aliases referenced by an expression.
fn aliases_in(expr: &Expr) -> HashSet<String> {
    fn walk(expr: &Expr, out: &mut HashSet<String>) {
        match expr {
            Expr::Column { table, .. } => {
                if let Some(t) = table {
                    out.insert(t.to_ascii_lowercase());
                }
            }
            Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Not(e) | Expr::Neg(e) => walk(e, out),
            Expr::IsNull { expr, .. } => walk(expr, out),
            Expr::Like { expr, pattern, .. } => {
                walk(expr, out);
                walk(pattern, out);
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, out);
                for e in list {
                    walk(e, out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk(expr, out);
                walk(low, out);
                walk(high, out);
            }
            Expr::Contains { column, keyword } => {
                walk(column, out);
                walk(keyword, out);
            }
            Expr::Matches { column, pattern } => {
                walk(column, out);
                walk(pattern, out);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    walk(a, out);
                }
            }
        }
    }
    let mut out = HashSet::new();
    walk(expr, &mut out);
    out
}

/// If `c` is `lhs = rhs` with one side referencing only `joined` aliases
/// and the other only `new_alias`, returns `(left_key, right_key)`.
fn equi_join_keys(c: &Expr, joined: &HashSet<String>, new_alias: &str) -> Option<(Expr, Expr)> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = c
    else {
        return None;
    };
    let la = aliases_in(left);
    let ra = aliases_in(right);
    let only_joined = |s: &HashSet<String>| !s.is_empty() && s.iter().all(|a| joined.contains(a));
    let only_new = |s: &HashSet<String>| s.len() == 1 && s.contains(new_alias);
    if only_joined(&la) && only_new(&ra) {
        Some(((**left).clone(), (**right).clone()))
    } else if only_joined(&ra) && only_new(&la) {
        Some(((**right).clone(), (**left).clone()))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

/// Default selectivities used when statistics are missing — or when the
/// compared value is an unbound `?` parameter, which is what makes
/// `EXPLAIN` of a prepared statement meaningful before binding.
const DEFAULT_EQ_SEL: f64 = 0.1;
const DEFAULT_RANGE_SEL: f64 = 0.3;
const DEFAULT_SEL: f64 = 0.25;
const KEYWORD_SEL: f64 = 0.1;
const DEFAULT_JOIN_SEL: f64 = 0.1;
/// Selectivity floor keeping estimates nonzero so costs stay ordered.
const MIN_SEL: f64 = 1e-4;

/// The planner's cardinality model over the [`StatsCatalog`]:
///
/// * base rows — the maintained exact row count per table;
/// * `col = lit` — `1/NDV`, or the floor when `lit` falls outside the
///   column's min/max bounds;
/// * numeric ranges — the covered fraction of the `[min, max]` interval;
/// * `IS [NOT] NULL` — the measured null fraction;
/// * equi-joins — `|L|·|R| / max(NDV(l), NDV(r))` per key pair;
/// * everything else (and unbound parameters) — fixed defaults.
pub(crate) struct Estimator<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) stats: &'a StatsCatalog,
    /// Lowercase alias → table name for every table in scope.
    pub(crate) aliases: &'a BTreeMap<String, String>,
}

impl Estimator<'_> {
    fn table_rows(&self, table: &str) -> Option<f64> {
        Some(self.stats.table(table)?.row_count as f64)
    }

    /// Whether the table bound under `alias` has ANALYZEd column stats.
    fn alias_analyzed(&self, alias: &str) -> bool {
        self.aliases
            .get(&alias.to_ascii_lowercase())
            .and_then(|t| self.stats.table(t))
            .is_some_and(crate::stats::TableStats::analyzed)
    }

    /// Column statistics (plus the rows they were scanned over) for a
    /// simple column reference, when that table was analyzed.
    fn column_stats(&self, e: &Expr) -> Option<(u64, &crate::stats::ColumnStats)> {
        let Expr::Column {
            table: Some(alias),
            name,
        } = e
        else {
            return None;
        };
        let table = self.aliases.get(&alias.to_ascii_lowercase())?;
        let ts = self.stats.table(table)?;
        Some((ts.analyzed_rows, ts.column(name)?))
    }

    /// NDV of a join-key expression (simple columns only).
    fn key_ndv(&self, e: &Expr) -> Option<f64> {
        let (_, col) = self.column_stats(e)?;
        Some(col.ndv.max(1) as f64)
    }

    /// Estimated selectivity of `predicate` in `[MIN_SEL, 1]`.
    fn selectivity(&self, predicate: &Expr) -> f64 {
        let raw = match predicate {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => self.selectivity(left) * self.selectivity(right),
            Expr::Binary {
                op: BinOp::Or,
                left,
                right,
            } => {
                let (l, r) = (self.selectivity(left), self.selectivity(right));
                l + r - l * r
            }
            Expr::Binary { op, left, right } if op.is_comparison() => {
                self.comparison_selectivity(*op, left, right)
            }
            Expr::Not(e) => 1.0 - self.selectivity(e),
            Expr::IsNull { expr, negated } => {
                let frac = match self.column_stats(expr) {
                    Some((rows, col)) => col.null_fraction(rows),
                    None => 0.05,
                };
                if *negated {
                    1.0 - frac
                } else {
                    frac
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let eq = self.eq_selectivity(expr, None);
                let sel = (eq * list.len() as f64).min(1.0);
                if *negated {
                    1.0 - sel
                } else {
                    sel
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let sel = self.range_selectivity(
                    expr,
                    literal_value(low).map(Bound::Included),
                    literal_value(high).map(Bound::Included),
                );
                if *negated {
                    1.0 - sel
                } else {
                    sel
                }
            }
            Expr::Contains { .. } => KEYWORD_SEL,
            Expr::Like { .. } | Expr::Matches { .. } => DEFAULT_SEL,
            // A constant predicate filters everything or nothing; assume
            // the common `WHERE 1 = 1`-style tautology shape.
            Expr::Literal(_) => 1.0,
            _ => DEFAULT_SEL,
        };
        raw.clamp(MIN_SEL, 1.0)
    }

    /// `col <op> value` (either orientation). Unbound parameters get the
    /// same defaults as stats-less columns.
    fn comparison_selectivity(&self, op: BinOp, left: &Expr, right: &Expr) -> f64 {
        // Normalize to column-op-value.
        let (col, value, op) = if matches!(left, Expr::Column { .. }) {
            (left, right, op)
        } else if matches!(right, Expr::Column { .. }) {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            };
            (right, left, flipped)
        } else {
            return DEFAULT_SEL;
        };
        match op {
            BinOp::Eq => self.eq_selectivity(col, literal_value(value)),
            BinOp::Ne => 1.0 - self.eq_selectivity(col, literal_value(value)),
            BinOp::Lt => {
                self.range_selectivity(col, None, literal_value(value).map(Bound::Excluded))
            }
            BinOp::Le => {
                self.range_selectivity(col, None, literal_value(value).map(Bound::Included))
            }
            BinOp::Gt => {
                self.range_selectivity(col, literal_value(value).map(Bound::Excluded), None)
            }
            BinOp::Ge => {
                self.range_selectivity(col, literal_value(value).map(Bound::Included), None)
            }
            _ => DEFAULT_SEL,
        }
    }

    /// `col = value`: `1/NDV`, the floor when `value` lies outside the
    /// column's bounds, or the default without stats / with a parameter.
    fn eq_selectivity(&self, col: &Expr, value: Option<&Value>) -> f64 {
        let Some((_, stats)) = self.column_stats(col) else {
            return DEFAULT_EQ_SEL;
        };
        if let (Some(v), Some(min), Some(max)) = (value, &stats.min, &stats.max) {
            let below = v.compare(min).is_some_and(|o| o.is_lt());
            let above = v.compare(max).is_some_and(|o| o.is_gt());
            if below || above {
                return MIN_SEL;
            }
        }
        1.0 / stats.ndv.max(1) as f64
    }

    /// Fraction of the column's `[min, max]` interval a numeric range
    /// covers; the default for text columns or missing stats/bounds.
    fn range_selectivity(
        &self,
        col: &Expr,
        lower: Option<Bound<&Value>>,
        upper: Option<Bound<&Value>>,
    ) -> f64 {
        let Some((_, stats)) = self.column_stats(col) else {
            return DEFAULT_RANGE_SEL;
        };
        let (Some(min), Some(max)) = (&stats.min, &stats.max) else {
            return DEFAULT_RANGE_SEL;
        };
        let (Some(min), Some(max)) = (min.as_f64(), max.as_f64()) else {
            return DEFAULT_RANGE_SEL;
        };
        let bound_f64 = |b: &Option<Bound<&Value>>| match b {
            Some(Bound::Included(v)) | Some(Bound::Excluded(v)) => v.as_f64(),
            _ => None,
        };
        let lo = match (&lower, bound_f64(&lower)) {
            (None, _) => min,
            (Some(_), Some(v)) => v,
            (Some(_), None) => return DEFAULT_RANGE_SEL,
        };
        let hi = match (&upper, bound_f64(&upper)) {
            (None, _) => max,
            (Some(_), Some(v)) => v,
            (Some(_), None) => return DEFAULT_RANGE_SEL,
        };
        if max <= min {
            // Single-valued column: the range either covers it or not.
            return if lo <= min && hi >= max { 1.0 } else { MIN_SEL };
        }
        ((hi.min(max) - lo.max(min)) / (max - min)).clamp(0.0, 1.0)
    }

    /// Selectivity of one equi-join key pair: `1 / max(NDV_l, NDV_r)`.
    fn join_key_selectivity(&self, left_key: &Expr, right_key: &Expr) -> f64 {
        match (self.key_ndv(left_key), self.key_ndv(right_key)) {
            (Some(l), Some(r)) => 1.0 / l.max(r),
            (Some(n), None) | (None, Some(n)) => 1.0 / n,
            (None, None) => DEFAULT_JOIN_SEL,
        }
    }

    /// Estimated fraction of the table an index access returns.
    fn index_selectivity(&self, table: &str, index: &str, access: &IndexAccess) -> f64 {
        let Some(def) = self
            .catalog
            .indexes_on(table)
            .into_iter()
            .find(|d| d.name.eq_ignore_ascii_case(index))
        else {
            return DEFAULT_EQ_SEL;
        };
        let col_expr = |name: &str| Expr::Column {
            // Any alias of this table works: stats are per table.
            table: self
                .aliases
                .iter()
                .find(|(_, t)| t.eq_ignore_ascii_case(table))
                .map(|(a, _)| a.clone()),
            name: name.to_string(),
        };
        let (values, range) = match access {
            IndexAccess::Exact(values) => (values.as_slice(), None),
            IndexAccess::Range {
                prefix,
                lower,
                upper,
            } => (prefix.as_slice(), Some((lower, upper))),
        };
        let mut sel = 1.0;
        for (col, value) in def.columns.iter().zip(values) {
            sel *= self.eq_selectivity(&col_expr(col), Some(value));
        }
        if let (Some((lower, upper)), Some(col)) = (range, def.columns.get(values.len())) {
            fn as_opt(b: &Bound<Value>) -> Option<Bound<&Value>> {
                match b {
                    Bound::Included(v) => Some(Bound::Included(v)),
                    Bound::Excluded(v) => Some(Bound::Excluded(v)),
                    Bound::Unbounded => None,
                }
            }
            sel *= self.range_selectivity(&col_expr(col), as_opt(lower), as_opt(upper));
        }
        sel.clamp(MIN_SEL, 1.0)
    }

    /// Builds the estimate tree for a finished plan, bottom-up. `rows`
    /// stays `None` below tables with no tracked row count (virtual-table
    /// overlays), and costs accumulate estimated rows processed.
    pub(crate) fn estimate(&self, plan: &Plan) -> PlanEstimate {
        let children: Vec<PlanEstimate> = plan
            .children()
            .into_iter()
            .map(|c| self.estimate(c))
            .collect();
        let floor = |r: f64| r.max(1.0);
        let (rows, cost) = match plan {
            Plan::Scan { table, .. } => {
                let rows = self.table_rows(table);
                (rows, rows)
            }
            Plan::IndexScan {
                table,
                index,
                access,
                ..
            } => {
                let sel = self.index_selectivity(table, index, access);
                let rows = self.table_rows(table).map(|r| floor(r * sel));
                (rows, rows)
            }
            Plan::KeywordScan { table, .. } => {
                let rows = self.table_rows(table).map(|r| floor(r * KEYWORD_SEL));
                (rows, rows)
            }
            Plan::Filter { predicate, .. } => {
                let input = &children[0];
                let rows = input.rows.map(|r| floor(r * self.selectivity(predicate)));
                (rows, add(input.cost, input.rows))
            }
            Plan::NestedLoopJoin { condition, .. } => {
                let (l, r) = (&children[0], &children[1]);
                let sel = condition.as_ref().map_or(1.0, |c| self.selectivity(c));
                let product = mul(l.rows, r.rows);
                let rows = product.map(|p| floor(p * sel));
                (rows, add(add(l.cost, r.cost), product))
            }
            Plan::HashJoin {
                left_keys,
                right_keys,
                residual,
                semi,
                ..
            } => {
                let (l, r) = (&children[0], &children[1]);
                let mut sel: f64 = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(lk, rk)| self.join_key_selectivity(lk, rk))
                    .product();
                if let Some(res) = residual {
                    sel *= self.selectivity(res);
                }
                let mut rows = mul(l.rows, r.rows).map(|p| floor(p * sel.max(MIN_SEL)));
                if *semi {
                    rows = match (rows, l.rows) {
                        (Some(o), Some(probe)) => Some(o.min(probe)),
                        (o, _) => o,
                    };
                }
                // Build the right side, probe with the left, emit `rows`.
                let cost = add(add(add(l.cost, r.cost), add(l.rows, r.rows)), rows);
                (rows, cost)
            }
            Plan::Project { .. } | Plan::Sort { .. } | Plan::Distinct { .. } => {
                let input = &children[0];
                (input.rows, add(input.cost, input.rows))
            }
            Plan::Aggregate { group_by, .. } => {
                let input = &children[0];
                let groups = group_by
                    .iter()
                    .map(|e| self.key_ndv(e))
                    .try_fold(1.0, |acc, ndv| ndv.map(|n| acc * n));
                let rows = if group_by.is_empty() {
                    Some(1.0)
                } else {
                    match (input.rows, groups) {
                        (Some(r), Some(g)) => Some(g.min(r).max(1.0)),
                        (r, _) => r,
                    }
                };
                (rows, add(input.cost, input.rows))
            }
            Plan::TopK { limit, offset, .. } => {
                let input = &children[0];
                let cap = (limit + offset) as f64;
                let rows = input.rows.map(|r| r.min(cap)).or(Some(cap));
                (
                    rows.map(|r| r.min(*limit as f64)),
                    add(input.cost, input.rows),
                )
            }
            Plan::Limit { limit, offset, .. } => {
                let input = &children[0];
                let rows = match limit {
                    Some(l) => Some(
                        input
                            .rows
                            .map_or(*l as f64, |r| (r - *offset as f64).max(0.0).min(*l as f64)),
                    ),
                    None => input.rows.map(|r| (r - *offset as f64).max(0.0)),
                };
                (rows, add(input.cost, rows))
            }
        };
        PlanEstimate {
            rows,
            cost,
            children,
        }
    }
}

/// `Some(a + b)` when both known.
fn add(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    Some(a? + b?)
}

/// `Some(a * b)` when both known.
fn mul(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    Some(a? * b?)
}

fn literal_value(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Literal(v) if !v.is_null() => Some(v),
        _ => None,
    }
}

/// Cost-based reordering of one join component's members. Active only
/// when *every* member's table carries ANALYZEd statistics; otherwise the
/// declaration order (which the greedy connectivity loop consumes) is
/// kept. Each member is tried as the left-deep seed and the completion
/// proceeds greedily by minimal estimated join output; the completion
/// with the least total estimated rows processed wins. Because each
/// later member joins as the hash build side, picking small estimated
/// outputs also means building over the smallest estimated inputs.
fn order_component(members: &mut Vec<(String, Plan)>, multi: &[Expr], est: &Estimator<'_>) {
    if members.len() < 2 || !members.iter().all(|(alias, _)| est.alias_analyzed(alias)) {
        return;
    }
    let rows: Vec<f64> = members
        .iter()
        .map(|(_, plan)| est.estimate(plan).rows.unwrap_or(f64::MAX))
        .collect();
    // Estimated output of joining the current set (cardinality `cur`,
    // aliases `joined`) with member `i`.
    let join_out = |joined: &HashSet<String>, cur: f64, i: usize| -> f64 {
        let alias = &members[i].0;
        let mut sel = 1.0;
        let mut connected = false;
        for c in multi {
            if let Some((lk, rk)) = equi_join_keys(c, joined, alias) {
                connected = true;
                sel *= est.join_key_selectivity(&lk, &rk);
            }
        }
        if !connected {
            sel = DEFAULT_JOIN_SEL; // residual-filtered nested loop
        }
        (cur * rows[i] * sel).max(1.0)
    };
    let mut best: Option<(f64, Vec<usize>)> = None;
    for seed in 0..members.len() {
        let mut order = vec![seed];
        let mut joined: HashSet<String> = HashSet::from([members[seed].0.clone()]);
        let mut cur = rows[seed];
        let mut total = 0.0;
        while order.len() < members.len() {
            let mut next: Option<(f64, usize)> = None;
            let connectable = |i: usize| {
                multi
                    .iter()
                    .any(|c| equi_join_keys(c, &joined, &members[i].0).is_some())
            };
            let any_connectable = (0..members.len()).any(|i| !order.contains(&i) && connectable(i));
            for i in 0..members.len() {
                if order.contains(&i) || (any_connectable && !connectable(i)) {
                    continue;
                }
                let out = join_out(&joined, cur, i);
                if next.is_none_or(|(best_out, _)| out < best_out) {
                    next = Some((out, i));
                }
            }
            let (out, i) = next.expect("member left to join");
            // Build rows[i], probe cur, emit out.
            total += rows[i] + cur + out;
            cur = out;
            joined.insert(members[i].0.clone());
            order.push(i);
        }
        if best.as_ref().is_none_or(|(t, _)| total < *t) {
            best = Some((total, order));
        }
    }
    let (_, order) = best.expect("non-empty component");
    let mut taken: Vec<Option<(String, Plan)>> =
        std::mem::take(members).into_iter().map(Some).collect();
    *members = order
        .into_iter()
        .map(|i| taken[i].take().expect("each member used once"))
        .collect();
}

/// Resolves unqualified column references against the tables in scope.
struct Resolver<'a> {
    catalog: &'a Catalog,
    tables: &'a [TableRef],
}

impl Resolver<'_> {
    fn resolve_column(&self, table: Option<String>, name: String) -> RelResult<Expr> {
        if let Some(alias) = table {
            // Verify the alias exists and carries the column.
            let t = self
                .tables
                .iter()
                .find(|t| t.alias.eq_ignore_ascii_case(&alias))
                .ok_or_else(|| RelError::UnknownTable(alias.clone()))?;
            let schema = self.catalog.table(&t.table)?;
            if schema.column_index(&name).is_none() {
                return Err(RelError::UnknownColumn(format!("{alias}.{name}")));
            }
            return Ok(Expr::Column {
                table: Some(t.alias.clone()),
                name,
            });
        }
        let mut owner = None;
        for t in self.tables {
            let schema = self.catalog.table(&t.table)?;
            if schema.column_index(&name).is_some() {
                if owner.is_some() {
                    return Err(RelError::AmbiguousColumn(name));
                }
                owner = Some(t.alias.clone());
            }
        }
        match owner {
            Some(alias) => Ok(Expr::Column {
                table: Some(alias),
                name,
            }),
            None => Err(RelError::UnknownColumn(name)),
        }
    }

    fn resolve_expr(&self, expr: Expr) -> RelResult<Expr> {
        Ok(match expr {
            Expr::Column { table, name } => self.resolve_column(table, name)?,
            Expr::Literal(v) => Expr::Literal(v),
            Expr::Param(i) => Expr::Param(i),
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(self.resolve_expr(*left)?),
                right: Box::new(self.resolve_expr(*right)?),
            },
            Expr::Not(e) => Expr::Not(Box::new(self.resolve_expr(*e)?)),
            Expr::Neg(e) => Expr::Neg(Box::new(self.resolve_expr(*e)?)),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.resolve_expr(*expr)?),
                negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.resolve_expr(*expr)?),
                pattern: Box::new(self.resolve_expr(*pattern)?),
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.resolve_expr(*expr)?),
                list: list
                    .into_iter()
                    .map(|e| self.resolve_expr(e))
                    .collect::<RelResult<_>>()?,
                negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.resolve_expr(*expr)?),
                low: Box::new(self.resolve_expr(*low)?),
                high: Box::new(self.resolve_expr(*high)?),
                negated,
            },
            Expr::Contains { column, keyword } => Expr::Contains {
                column: Box::new(self.resolve_expr(*column)?),
                keyword: Box::new(self.resolve_expr(*keyword)?),
            },
            Expr::Matches { column, pattern } => Expr::Matches {
                column: Box::new(self.resolve_expr(*column)?),
                pattern: Box::new(self.resolve_expr(*pattern)?),
            },
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => Expr::Aggregate {
                func,
                arg: match arg {
                    Some(a) => Some(Box::new(self.resolve_expr(*a)?)),
                    None => None,
                },
                distinct,
            },
        })
    }
}

/// Chooses the cheapest access path for one table given its single-table
/// conjuncts (already alias-resolved). When the table carries `ANALYZE`d
/// statistics, a partially-bound index whose estimated selectivity would
/// still return most of the table loses to a plain scan.
pub(crate) fn choose_access_path(
    t: &TableRef,
    conjuncts: &[Expr],
    catalog: &Catalog,
    stats: &StatsCatalog,
) -> Plan {
    // Collect sargable constraints per column (lowercase names).
    let mut eq: BTreeMap<String, Value> = BTreeMap::new();
    let mut ranges: BTreeMap<String, (Bound<Value>, Bound<Value>)> = BTreeMap::new();
    let mut keywords: Vec<(String, String)> = Vec::new();
    for c in conjuncts {
        collect_sargs(c, &mut eq, &mut ranges, &mut keywords);
    }

    // Keyword index first: a CONTAINS hit through the inverted index is the
    // paper's purpose-built fast path for keyword queries.
    for (col, kw) in &keywords {
        for def in catalog.indexes_on(&t.table) {
            if def.keyword && def.columns[0].eq_ignore_ascii_case(col) {
                return Plan::KeywordScan {
                    table: t.table.clone(),
                    alias: t.alias.clone(),
                    index: def.name.clone(),
                    keyword: kw.clone(),
                };
            }
        }
    }

    // Best B-tree index: longest equality prefix, range extension breaks ties.
    let mut best: Option<(usize, bool, Plan)> = None;
    for def in catalog.indexes_on(&t.table) {
        if def.keyword {
            continue;
        }
        let mut values = Vec::new();
        for col in &def.columns {
            match eq.get(&col.to_ascii_lowercase()) {
                Some(v) => values.push(v.clone()),
                None => break,
            }
        }
        let matched = values.len();
        let range_col = def.columns.get(matched).map(|c| c.to_ascii_lowercase());
        let range = range_col.as_ref().and_then(|c| ranges.get(c)).cloned();
        let candidate = if matched == 0 && range.is_none() {
            continue;
        } else if let Some((lower, upper)) = range {
            (
                matched,
                true,
                Plan::IndexScan {
                    table: t.table.clone(),
                    alias: t.alias.clone(),
                    index: def.name.clone(),
                    access: IndexAccess::Range {
                        prefix: values,
                        lower,
                        upper,
                    },
                },
            )
        } else {
            (
                matched,
                false,
                Plan::IndexScan {
                    table: t.table.clone(),
                    alias: t.alias.clone(),
                    index: def.name.clone(),
                    access: IndexAccess::Exact(values),
                },
            )
        };
        let better = match &best {
            None => true,
            Some((m, r, _)) => candidate.0 > *m || (candidate.0 == *m && candidate.1 && !r),
        };
        if better {
            best = Some(candidate);
        }
    }
    if let Some((_, _, plan)) = best {
        // Index-vs-scan cost check: a partially-bound composite index can
        // be less selective than it looks structurally. With statistics,
        // estimate the fraction of the table it returns; chasing an index
        // for more than half the table costs more than scanning it.
        if let Plan::IndexScan { index, access, .. } = &plan {
            let analyzed = stats
                .table(&t.table)
                .is_some_and(crate::stats::TableStats::analyzed);
            if analyzed {
                let aliases = BTreeMap::from([(t.alias.to_ascii_lowercase(), t.table.clone())]);
                let est = Estimator {
                    catalog,
                    stats,
                    aliases: &aliases,
                };
                if est.index_selectivity(&t.table, index, access) > 0.5 {
                    return Plan::Scan {
                        table: t.table.clone(),
                        alias: t.alias.clone(),
                    };
                }
            }
        }
        return plan;
    }
    Plan::Scan {
        table: t.table.clone(),
        alias: t.alias.clone(),
    }
}

/// Extracts index-usable constraints from one conjunct.
fn collect_sargs(
    c: &Expr,
    eq: &mut BTreeMap<String, Value>,
    ranges: &mut BTreeMap<String, (Bound<Value>, Bound<Value>)>,
    keywords: &mut Vec<(String, String)>,
) {
    fn col_name(e: &Expr) -> Option<String> {
        match e {
            Expr::Column { name, .. } => Some(name.to_ascii_lowercase()),
            _ => None,
        }
    }
    fn literal(e: &Expr) -> Option<Value> {
        match e {
            Expr::Literal(v) if !v.is_null() => Some(v.clone()),
            _ => None,
        }
    }
    match c {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            // Normalize to column-op-literal.
            let (col, val, op) = match (col_name(left), literal(right)) {
                (Some(c), Some(v)) => (c, v, *op),
                _ => match (col_name(right), literal(left)) {
                    (Some(c), Some(v)) => {
                        let flipped = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => *other,
                        };
                        (c, v, flipped)
                    }
                    _ => return,
                },
            };
            match op {
                BinOp::Eq => {
                    eq.insert(col, val);
                }
                BinOp::Lt => {
                    let r = ranges
                        .entry(col)
                        .or_insert((Bound::Unbounded, Bound::Unbounded));
                    r.1 = Bound::Excluded(val);
                }
                BinOp::Le => {
                    let r = ranges
                        .entry(col)
                        .or_insert((Bound::Unbounded, Bound::Unbounded));
                    r.1 = Bound::Included(val);
                }
                BinOp::Gt => {
                    let r = ranges
                        .entry(col)
                        .or_insert((Bound::Unbounded, Bound::Unbounded));
                    r.0 = Bound::Excluded(val);
                }
                BinOp::Ge => {
                    let r = ranges
                        .entry(col)
                        .or_insert((Bound::Unbounded, Bound::Unbounded));
                    r.0 = Bound::Included(val);
                }
                _ => {}
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            if let (Some(col), Some(lo), Some(hi)) = (col_name(expr), literal(low), literal(high)) {
                ranges.insert(col, (Bound::Included(lo), Bound::Included(hi)));
            }
        }
        Expr::Contains { column, keyword } => {
            if let (Some(col), Some(Value::Text(kw))) = (col_name(column), literal(keyword)) {
                keywords.push((col, kw));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, IndexDef, TableSchema};
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse_statement;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(TableSchema::new(
            "elements",
            vec![
                Column::new("doc_id", DataType::Int),
                Column::new("path", DataType::Text),
                Column::new("ord", DataType::Int),
                Column::new("val", DataType::Text),
            ],
        ))
        .unwrap();
        cat.create_table(TableSchema::new(
            "attrs",
            vec![
                Column::new("doc_id", DataType::Int),
                Column::new("aname", DataType::Text),
                Column::new("aval", DataType::Text),
            ],
        ))
        .unwrap();
        cat.create_index(IndexDef {
            name: "idx_path".into(),
            table: "elements".into(),
            columns: vec!["path".into(), "ord".into()],
            keyword: false,
        })
        .unwrap();
        cat.create_index(IndexDef {
            name: "kw_val".into(),
            table: "elements".into(),
            columns: vec!["val".into()],
            keyword: true,
        })
        .unwrap();
        cat
    }

    fn plan(sql: &str) -> PlannedQuery {
        let stmt = match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        plan_select(&stmt, &catalog(), &StatsCatalog::default()).unwrap()
    }

    fn find_scan(plan: &Plan) -> &Plan {
        match plan {
            Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::KeywordScan { .. } => plan,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::TopK { input, .. }
            | Plan::Distinct { input, .. }
            | Plan::Limit { input, .. } => find_scan(input),
            Plan::NestedLoopJoin { left, .. } | Plan::HashJoin { left, .. } => find_scan(left),
        }
    }

    #[test]
    fn full_scan_without_predicates() {
        let p = plan("SELECT val FROM elements");
        assert!(matches!(find_scan(&p.plan), Plan::Scan { .. }));
        assert_eq!(p.visible, 1);
    }

    #[test]
    fn equality_picks_index() {
        let p = plan("SELECT val FROM elements WHERE path = '/a/b'");
        match find_scan(&p.plan) {
            Plan::IndexScan {
                index,
                access: IndexAccess::Exact(values),
                ..
            } => {
                assert_eq!(index, "idx_path");
                assert_eq!(values, &vec![Value::Text("/a/b".into())]);
            }
            other => panic!("expected index scan, got {other:?}"),
        }
    }

    #[test]
    fn composite_equality_uses_both_columns() {
        let p = plan("SELECT val FROM elements WHERE path = '/a' AND ord = 3");
        match find_scan(&p.plan) {
            Plan::IndexScan {
                access: IndexAccess::Exact(values),
                ..
            } => {
                assert_eq!(values.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_after_prefix() {
        let p = plan("SELECT val FROM elements WHERE path = '/a' AND ord BETWEEN 2 AND 9");
        match find_scan(&p.plan) {
            Plan::IndexScan {
                access:
                    IndexAccess::Range {
                        prefix,
                        lower,
                        upper,
                    },
                ..
            } => {
                assert_eq!(prefix.len(), 1);
                assert_eq!(*lower, Bound::Included(Value::Int(2)));
                assert_eq!(*upper, Bound::Included(Value::Int(9)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn contains_picks_keyword_index() {
        let p = plan("SELECT val FROM elements WHERE CONTAINS(val, 'cdc6')");
        match find_scan(&p.plan) {
            Plan::KeywordScan { index, keyword, .. } => {
                assert_eq!(index, "kw_val");
                assert_eq!(keyword, "cdc6");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_sargable_predicate_scans() {
        let p = plan("SELECT val FROM elements WHERE val LIKE '%x%'");
        assert!(matches!(find_scan(&p.plan), Plan::Scan { .. }));
        assert!(!p.plan.uses_index());
    }

    #[test]
    fn equijoin_becomes_hash_join() {
        let p = plan(
            "SELECT e.val FROM elements e, attrs a WHERE e.doc_id = a.doc_id AND a.aname = 'x'",
        );
        fn has_hash(plan: &Plan) -> bool {
            match plan {
                Plan::HashJoin { .. } => true,
                Plan::Project { input, .. }
                | Plan::Filter { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. }
                | Plan::Distinct { input, .. }
                | Plan::Aggregate { input, .. } => has_hash(input),
                _ => false,
            }
        }
        assert!(has_hash(&p.plan), "{}", p.plan.explain());
    }

    #[test]
    fn explicit_join_on_condition() {
        let p = plan("SELECT e.val FROM elements e JOIN attrs a ON e.doc_id = a.doc_id");
        assert!(
            p.plan.explain().contains("HashJoin"),
            "{}",
            p.plan.explain()
        );
    }

    #[test]
    fn join_reordering_avoids_cross_products() {
        // Tables declared as (elements, attrs_like, elements2) where the
        // middle table connects to NEITHER directly, but elements joins
        // elements2: the planner must join the connected pair first.
        let p = plan(
            "SELECT e.val FROM elements e, attrs a, elements e2 \
             WHERE e.val = e2.val AND e2.doc_id = a.doc_id",
        );
        let text = p.plan.explain();
        // Every join in the tree must be a hash join — no cross product.
        assert!(!text.contains("NestedLoopJoin"), "{text}");
        assert_eq!(text.matches("HashJoin").count(), 2, "{text}");
    }

    #[test]
    fn independent_components_reduce_before_crossing() {
        // Two independent pairs: (e ⋈ a) × (e2 ⋈ a2). The cross must sit
        // ABOVE both hash joins, not between raw tables.
        let p = plan(
            "SELECT e.val FROM elements e, attrs a, elements e2, attrs a2 \
             WHERE e.doc_id = a.doc_id AND e2.doc_id = a2.doc_id",
        );
        match strip_to_join(&p.plan) {
            Plan::NestedLoopJoin { left, right, .. } => {
                assert!(
                    matches!(**left, Plan::HashJoin { .. }),
                    "{}",
                    p.plan.explain()
                );
                assert!(
                    matches!(**right, Plan::HashJoin { .. }),
                    "{}",
                    p.plan.explain()
                );
            }
            other => panic!("expected top-level cross, got {other:?}"),
        }
    }

    fn strip_to_join(plan: &Plan) -> &Plan {
        match plan {
            Plan::Project { input, .. }
            | Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::TopK { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input, .. }
            | Plan::Aggregate { input, .. } => strip_to_join(input),
            other => other,
        }
    }

    #[test]
    fn semi_join_under_distinct_for_existence_only_tables() {
        // `a` only tests existence: DISTINCT query, no projected/ordered
        // columns from it, equality join, no residual.
        let p = plan("SELECT DISTINCT e.val FROM elements e, attrs a WHERE e.doc_id = a.doc_id");
        assert!(
            p.plan.explain().contains("HashSemiJoin"),
            "{}",
            p.plan.explain()
        );
        // Without DISTINCT the multiplicity matters: plain hash join.
        let p2 = plan("SELECT e.val FROM elements e, attrs a WHERE e.doc_id = a.doc_id");
        assert!(
            !p2.plan.explain().contains("HashSemiJoin"),
            "{}",
            p2.plan.explain()
        );
        // A projected column from `a` forbids the semi-join.
        let p3 = plan(
            "SELECT DISTINCT e.val, a.aname FROM elements e, attrs a \
             WHERE e.doc_id = a.doc_id",
        );
        assert!(
            !p3.plan.explain().contains("HashSemiJoin"),
            "{}",
            p3.plan.explain()
        );
        // An ORDER BY reference also forbids it.
        let p4 = plan(
            "SELECT DISTINCT e.val FROM elements e, attrs a \
             WHERE e.doc_id = a.doc_id ORDER BY a.aname",
        );
        assert!(
            !p4.plan.explain().contains("HashSemiJoin"),
            "{}",
            p4.plan.explain()
        );
    }

    #[test]
    fn cross_join_is_nested_loop() {
        let p = plan("SELECT e.val FROM elements e, attrs a");
        assert!(
            p.plan.explain().contains("NestedLoopJoin"),
            "{}",
            p.plan.explain()
        );
    }

    #[test]
    fn unqualified_columns_resolve() {
        let p = plan("SELECT aname FROM elements e, attrs a WHERE aname = 'x'");
        assert_eq!(p.visible, 1);
    }

    #[test]
    fn ambiguous_column_rejected() {
        let stmt = match parse_statement("SELECT doc_id FROM elements e, attrs a").unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(matches!(
            plan_select(&stmt, &catalog(), &StatsCatalog::default()),
            Err(RelError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn unknown_column_and_table_rejected() {
        for sql in [
            "SELECT nope FROM elements",
            "SELECT e.nope FROM elements e",
            "SELECT x.val FROM elements e",
            "SELECT val FROM missing",
        ] {
            let stmt = match parse_statement(sql).unwrap() {
                Statement::Select(s) => s,
                _ => unreachable!(),
            };
            assert!(
                plan_select(&stmt, &catalog(), &StatsCatalog::default()).is_err(),
                "{sql}"
            );
        }
    }

    #[test]
    fn order_by_alias_and_hidden_key() {
        let p = plan("SELECT val AS v FROM elements ORDER BY v");
        assert!(p.plan.explain().contains("Sort"));
        // Hidden sort key case: order by a non-projected column.
        let p2 = plan("SELECT val FROM elements ORDER BY ord DESC");
        match &p2.plan {
            Plan::Sort { input, keys } => {
                assert_eq!(keys[0].column, 1); // hidden key appended after `val`
                assert!(keys[0].descending);
                match input.as_ref() {
                    Plan::Project { items, visible, .. } => {
                        assert_eq!(*visible, 1);
                        assert_eq!(items.len(), 2);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates_route_to_aggregate_node() {
        let p = plan("SELECT path, COUNT(*) FROM elements GROUP BY path");
        assert!(p.plan.explain().contains("Aggregate groups=1"));
        let p2 = plan("SELECT COUNT(*) FROM elements");
        assert!(p2.plan.explain().contains("Aggregate groups=0"));
    }

    #[test]
    fn wildcard_expansion() {
        let p = plan("SELECT * FROM elements e, attrs a");
        assert_eq!(p.visible, 7);
        let p2 = plan("SELECT a.* FROM elements e, attrs a");
        assert_eq!(p2.visible, 3);
    }

    #[test]
    fn order_by_limit_fuses_to_topk() {
        let p = plan("SELECT val FROM elements ORDER BY ord LIMIT 5 OFFSET 2");
        match &p.plan {
            Plan::TopK {
                keys,
                limit,
                offset,
                ..
            } => {
                assert_eq!(keys.len(), 1);
                assert_eq!(*limit, 5);
                assert_eq!(*offset, 2);
            }
            other => panic!("expected TopK, got {other:?}"),
        }
        // The ORDER-BY-select-alias fallback fuses too.
        let p2 = plan("SELECT val AS v FROM elements ORDER BY v LIMIT 3");
        assert!(
            p2.plan.explain().contains("TopK 3"),
            "{}",
            p2.plan.explain()
        );
    }

    #[test]
    fn distinct_blocks_topk_fusion() {
        // DISTINCT sits between Sort and Limit, so pushing the limit into
        // the sort would drop rows before duplicate elimination.
        let p = plan("SELECT DISTINCT val FROM elements ORDER BY val LIMIT 2");
        let text = p.plan.explain();
        assert!(!text.contains("TopK"), "{text}");
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("Distinct"), "{text}");
        assert!(text.contains("Limit"), "{text}");
    }

    #[test]
    fn sort_without_limit_and_limit_without_sort_stay_unfused() {
        let p = plan("SELECT val FROM elements ORDER BY val");
        assert!(!p.plan.explain().contains("TopK"), "{}", p.plan.explain());
        let p2 = plan("SELECT val FROM elements LIMIT 5");
        assert!(!p2.plan.explain().contains("TopK"), "{}", p2.plan.explain());
        // OFFSET without LIMIT has no bound to push into the sort.
        let p3 = plan("SELECT val FROM elements ORDER BY val OFFSET 3");
        assert!(!p3.plan.explain().contains("TopK"), "{}", p3.plan.explain());
        assert!(p3.plan.explain().contains("Limit"), "{}", p3.plan.explain());
    }

    #[test]
    fn semi_join_eligibility_errors_propagate() {
        // Regression: computing semi-join eligibility used a lossy
        // `if let Ok(..)` re-resolution that swallowed UnknownColumn /
        // AmbiguousColumn errors from the select list, GROUP BY and
        // ORDER BY. Each of these must surface the error.
        for sql in [
            "SELECT DISTINCT e.nope FROM elements e, attrs a WHERE e.doc_id = a.doc_id",
            "SELECT DISTINCT e.val FROM elements e, attrs a \
             WHERE e.doc_id = a.doc_id GROUP BY e.nope",
            "SELECT DISTINCT e.val FROM elements e, attrs a \
             WHERE e.doc_id = a.doc_id ORDER BY e.nope",
            "SELECT DISTINCT doc_id FROM elements e, attrs a WHERE e.doc_id = a.doc_id",
        ] {
            let stmt = match parse_statement(sql).unwrap() {
                Statement::Select(s) => s,
                _ => unreachable!(),
            };
            let err = plan_select(&stmt, &catalog(), &StatsCatalog::default()).unwrap_err();
            assert!(
                matches!(
                    err,
                    RelError::UnknownColumn(_) | RelError::AmbiguousColumn(_)
                ),
                "{sql}: {err:?}"
            );
        }
        // Valid existence-only queries still get the semi-join.
        let p = plan("SELECT DISTINCT e.val FROM elements e, attrs a WHERE e.doc_id = a.doc_id");
        assert!(
            p.plan.explain().contains("HashSemiJoin"),
            "{}",
            p.plan.explain()
        );
    }

    #[test]
    fn duplicate_alias_rejected() {
        let stmt = match parse_statement("SELECT 1 FROM elements x, attrs x").unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(plan_select(&stmt, &catalog(), &StatsCatalog::default()).is_err());
    }
}
