//! Incremental materialized views.
//!
//! A materialized view is a real table on the MVCC `Storage` root whose
//! contents are the result of a `SELECT` over one or two base tables,
//! kept current **delta-wise**: every committed transaction's
//! insert/delete/update deltas flow through a per-view maintenance
//! pipeline instead of recomputing the query. The supported shapes and
//! their delta algebra:
//!
//! * **Filter/project** over one table — each base delta maps row-wise:
//!   a qualifying insert appends one projected row, a delete retracts the
//!   row it produced (tracked by a base-rowid → view-rowid map).
//! * **Join** (two tables, inner) — `Δ(A ⋈ B) = ΔA ⋈ B ⊕ A_old ⋈ ΔB`.
//!   Rather than applying signed pair deltas directly, maintenance
//!   reconciles every *touched* `(left, right)` rowid pair against the
//!   post-commit base state, which makes same-transaction
//!   insert-then-delete and update churn trivially correct. Touched
//!   pairs are found with one probe scan of the opposite side per commit
//!   (hashed on the equi-join key when the predicate has one).
//! * **Aggregates** (`COUNT`/`SUM`/`MIN`/`MAX`/`AVG`, `GROUP BY`, over
//!   either source shape) — additive accumulators per group: counts and
//!   integer sums apply `±1`/`±x`; `MIN`/`MAX` keep the extreme and a tie
//!   count, falling back to a per-group rescan only when the last copy of
//!   the extreme is retracted.
//!
//! Maintained results must be *byte-identical* to a from-scratch
//! recompute of the definition, so `CREATE MATERIALIZED VIEW` rejects
//! anything order- or representation-sensitive: `DISTINCT`, `ORDER BY`,
//! `LIMIT`/`OFFSET`, parameters, `DISTINCT` aggregates, `SUM`/`AVG` over
//! non-integer expressions (float addition is not associative), more than
//! two base tables, and non-aggregate select items that are not grounded
//! in the `GROUP BY` key.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use crate::error::{RelError, RelResult};
use crate::expr::{eval, RowSchema};
use crate::schema::{Catalog, Column, TableSchema};
use crate::sql::ast::{AggFunc, BinOp, Expr, SelectItem, SelectStmt};
use crate::table::{Row, RowId, Table};
use crate::value::{DataType, Value};

/// Upper bound on a deferred view's pending delta log. Beyond this the
/// log is dropped and the next `REFRESH` falls back to a full recompute
/// (counted in `fallback_refreshes`), keeping per-commit memory bounded.
pub(crate) const VIEW_DELTA_LOG_CAP: usize = 4096;

/// One committed base-table mutation, as seen by view maintenance. An
/// UPDATE contributes a `Delete` of the old row followed by an `Insert`
/// of the new row under the same id.
#[derive(Debug, Clone)]
pub(crate) enum DeltaEvent {
    /// A row inserted into `table`.
    Insert {
        /// Storage key (lowercased table name).
        table: String,
        /// The new row's id.
        id: RowId,
        /// The inserted row.
        row: Row,
    },
    /// A row deleted from `table`.
    Delete {
        /// Storage key (lowercased table name).
        table: String,
        /// The removed row's id.
        id: RowId,
        /// The removed row's content.
        row: Row,
    },
}

impl DeltaEvent {
    fn table(&self) -> &str {
        match self {
            DeltaEvent::Insert { table, .. } | DeltaEvent::Delete { table, .. } => table,
        }
    }
}

/// The durable definition of a materialized view.
#[derive(Debug, Clone)]
pub(crate) struct ViewDef {
    /// View name (also the backing table's name).
    pub(crate) name: String,
    /// Synchronous maintenance on every commit vs deferred `REFRESH`.
    pub(crate) refresh_on_commit: bool,
    /// The defining query rendered back to SQL (WAL + `sys_views`).
    pub(crate) select_sql: String,
}

/// A source table binding of a view.
#[derive(Debug, Clone)]
pub(crate) struct SourceRef {
    /// Storage key (lowercased table name).
    pub(crate) table: String,
    /// Binding alias.
    pub(crate) alias: String,
}

/// One resolved output column of a view.
#[derive(Debug, Clone)]
pub(crate) struct OutItem {
    /// Resolved (alias-qualified) projection expression.
    pub(crate) expr: Expr,
    /// Output column name.
    pub(crate) name: String,
    /// Inferred output type.
    pub(crate) ty: DataType,
}

/// One aggregate call appearing in the select list.
#[derive(Debug, Clone)]
pub(crate) struct AggSpec {
    /// The full resolved `Expr::Aggregate` node (substitution key).
    pub(crate) expr: Expr,
    /// The function.
    pub(crate) func: AggFunc,
    /// The resolved argument (`None` for `COUNT(*)`).
    pub(crate) arg: Option<Expr>,
}

/// The analyzed, resolved form of a view definition — everything the
/// maintenance pipeline needs, derived deterministically from the query
/// and the catalog at creation (and again on recovery).
#[derive(Debug, Clone)]
pub(crate) struct ViewAnalysis {
    /// Source tables (one or two).
    pub(crate) sources: Vec<SourceRef>,
    /// Per-source row schemas.
    pub(crate) side_schemas: Vec<RowSchema>,
    /// Concatenated source schema the resolved expressions evaluate in.
    pub(crate) schema: RowSchema,
    /// Conjuncts of (every `JOIN ... ON` plus `WHERE`), in evaluation
    /// order; a source row qualifies iff all are true.
    pub(crate) predicate: Vec<Expr>,
    /// Equi-join key pair `(left key, right key)` when one conjunct is
    /// `left_expr = right_expr` across the two sources.
    pub(crate) equi: Option<(Expr, Expr)>,
    /// Expanded output items.
    pub(crate) items: Vec<OutItem>,
    /// Resolved `GROUP BY` expressions.
    pub(crate) group_by: Vec<Expr>,
    /// Distinct aggregate calls in the select list.
    pub(crate) aggs: Vec<AggSpec>,
    /// Whether this is an aggregate view (aggregates or `GROUP BY`).
    pub(crate) grouped: bool,
}

/// Live maintenance state of one view, kept on `Storage` next to the
/// backing table. Cheap to clone: the bulky parts sit behind `Arc` and
/// are copied on first write per commit, like the B-tree indexes.
#[derive(Debug, Clone)]
pub(crate) struct ViewRuntime {
    /// The durable definition.
    pub(crate) def: ViewDef,
    /// The analyzed form.
    pub(crate) analysis: ViewAnalysis,
    /// Operator state (row maps / pair maps / group accumulators).
    pub(crate) state: Arc<ViewState>,
    /// Deferred views: committed deltas awaiting `REFRESH`.
    pub(crate) pending: Arc<Vec<DeltaEvent>>,
    /// The pending log overflowed [`VIEW_DELTA_LOG_CAP`]; the next
    /// refresh must recompute from scratch.
    pub(crate) overflowed: bool,
    /// CSN of the last refresh (commit CSN for `REFRESH ON COMMIT`).
    pub(crate) last_refresh_csn: u64,
    /// Completed delta-wise maintenance rounds.
    pub(crate) incremental_refreshes: u64,
    /// Full recomputes (creation, `REFRESH ... FULL`, overflow, recovery).
    pub(crate) fallback_refreshes: u64,
}

impl ViewRuntime {
    /// Tables this view reads, as storage keys.
    pub(crate) fn source_tables(&self) -> impl Iterator<Item = &str> {
        self.analysis.sources.iter().map(|s| s.table.as_str())
    }

    /// Whether any of `deltas` touches one of this view's sources.
    pub(crate) fn affected_by(&self, deltas: &[DeltaEvent]) -> bool {
        deltas
            .iter()
            .any(|d| self.analysis.sources.iter().any(|s| s.table == d.table()))
    }
}

/// Per-shape maintenance state.
#[derive(Debug, Clone)]
pub(crate) enum ViewState {
    /// Filter/project over one table: base rowid → view rowid.
    Map {
        /// The row map.
        rows: HashMap<u64, u64>,
    },
    /// Filter/project over a join: surviving `(left, right)` rowid pairs.
    JoinMap {
        /// `(left id, right id)` → view rowid.
        pairs: HashMap<(u64, u64), u64>,
        /// Left id → right ids currently paired with it.
        by_left: HashMap<u64, Vec<u64>>,
        /// Right id → left ids currently paired with it.
        by_right: HashMap<u64, Vec<u64>>,
    },
    /// Aggregate view: group key → accumulators.
    Agg {
        /// Group states keyed by evaluated `GROUP BY` key.
        groups: HashMap<Vec<Value>, GroupState>,
    },
}

/// Sentinel for a group that has no view row yet.
const NO_ROW: u64 = u64::MAX;

/// Accumulators for one group.
#[derive(Debug, Clone)]
pub(crate) struct GroupState {
    /// Live source rows in the group.
    rows: i64,
    /// A member row the grounded (non-aggregate) items evaluate against.
    /// May outlive its base row: grounded items are functions of the
    /// group key, so every member yields the same bytes.
    rep: Row,
    /// One accumulator per [`ViewAnalysis::aggs`] slot.
    accs: Vec<AggAcc>,
    /// The group's row in the backing table ([`NO_ROW`] before emission).
    view_row: u64,
}

/// One aggregate accumulator.
#[derive(Debug, Clone)]
enum AggAcc {
    /// `COUNT(*)` — counts group rows (mirrors the executor, which counts
    /// rows rather than non-null arguments for the argless form).
    CountStar,
    /// `COUNT(expr)` — non-null argument count.
    Count {
        /// Count of non-null argument values.
        non_null: i64,
    },
    /// `SUM(int expr)` — exact i128 running total.
    SumInt {
        /// Running total.
        sum: i128,
        /// Count of non-null addends (0 ⇒ SQL NULL result).
        non_null: i64,
    },
    /// `AVG(int expr)` — exact i128 total, one division at emission.
    AvgInt {
        /// Running total.
        sum: i128,
        /// Count of non-null addends.
        non_null: i64,
    },
    /// `MIN`/`MAX` — current extreme plus a tie count; retracting the
    /// last copy of the extreme flags the group for a rescan.
    MinMax {
        /// `MAX` when set, else `MIN`.
        is_max: bool,
        /// Current extreme (`None` when no non-null values).
        extreme: Option<Value>,
        /// Live copies of the extreme.
        ties: i64,
        /// The extreme was retracted; values are unknown until rescan.
        stale: bool,
    },
}

impl AggAcc {
    fn fresh(spec: &AggSpec) -> AggAcc {
        match (spec.func, &spec.arg) {
            (AggFunc::Count, None) => AggAcc::CountStar,
            (AggFunc::Count, Some(_)) => AggAcc::Count { non_null: 0 },
            (AggFunc::Sum, _) => AggAcc::SumInt {
                sum: 0,
                non_null: 0,
            },
            (AggFunc::Avg, _) => AggAcc::AvgInt {
                sum: 0,
                non_null: 0,
            },
            (AggFunc::Min, _) => AggAcc::MinMax {
                is_max: false,
                extreme: None,
                ties: 0,
                stale: false,
            },
            (AggFunc::Max, _) => AggAcc::MinMax {
                is_max: true,
                extreme: None,
                ties: 0,
                stale: false,
            },
        }
    }

    fn needs_rescan(&self) -> bool {
        matches!(self, AggAcc::MinMax { stale: true, .. })
    }

    /// Folds one argument value in (`sign` +1) or out (`sign` -1).
    fn apply(&mut self, v: Value, sign: i64) -> RelResult<()> {
        match self {
            AggAcc::CountStar => {}
            AggAcc::Count { non_null } => {
                if !v.is_null() {
                    *non_null += sign;
                }
            }
            AggAcc::SumInt { sum, non_null } | AggAcc::AvgInt { sum, non_null } => match v {
                Value::Null => {}
                Value::Int(i) => {
                    *sum += sign as i128 * i as i128;
                    *non_null += sign;
                }
                other => {
                    return Err(RelError::Internal(format!(
                        "materialized view: non-integer value {other} in an integer aggregate"
                    )))
                }
            },
            AggAcc::MinMax {
                is_max,
                extreme,
                ties,
                stale,
            } => {
                if v.is_null() || *stale {
                    return Ok(()); // unknown state is rebuilt by the rescan
                }
                let better = |candidate: &Value, current: &Value| {
                    let ord = candidate.total_cmp(current);
                    if *is_max {
                        ord.is_gt()
                    } else {
                        ord.is_lt()
                    }
                };
                if sign > 0 {
                    match extreme {
                        None => {
                            *extreme = Some(v);
                            *ties = 1;
                        }
                        Some(cur) if better(&v, cur) => {
                            *extreme = Some(v);
                            *ties = 1;
                        }
                        Some(cur) if v.total_cmp(cur).is_eq() => *ties += 1,
                        Some(_) => {}
                    }
                } else {
                    match extreme {
                        Some(cur) if v.total_cmp(cur).is_eq() => {
                            *ties -= 1;
                            if *ties <= 0 {
                                *extreme = None;
                                *stale = true;
                            }
                        }
                        Some(cur) if better(&v, cur) => {
                            return Err(RelError::Internal(
                                "materialized view: retracted a value beyond the tracked extreme"
                                    .into(),
                            ));
                        }
                        Some(_) => {}
                        None => {
                            return Err(RelError::Internal(
                                "materialized view: retraction from an empty MIN/MAX state".into(),
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The aggregate's current value, exactly as the executor's
    /// `compute_aggregate` would produce it over the group's rows.
    fn value(&self, group_rows: i64) -> RelResult<Value> {
        match self {
            AggAcc::CountStar => Ok(Value::Int(group_rows)),
            AggAcc::Count { non_null } => Ok(Value::Int(*non_null)),
            AggAcc::SumInt { sum, non_null } => {
                if *non_null == 0 {
                    Ok(Value::Null)
                } else {
                    i64::try_from(*sum).map(Value::Int).map_err(|_| {
                        RelError::Eval(format!("integer overflow in SUM (total {sum})"))
                    })
                }
            }
            AggAcc::AvgInt { sum, non_null } => {
                if *non_null == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(*sum as f64 / *non_null as f64))
                }
            }
            AggAcc::MinMax { extreme, stale, .. } => {
                if *stale {
                    return Err(RelError::Internal(
                        "materialized view: MIN/MAX read before rescan".into(),
                    ));
                }
                Ok(extreme.clone().unwrap_or(Value::Null))
            }
        }
    }
}

// ---- analysis --------------------------------------------------------------

/// Validates and resolves a view definition against the catalog,
/// returning the analysis and the backing table's schema.
pub(crate) fn analyze_view(
    name: &str,
    query: &SelectStmt,
    catalog: &Catalog,
) -> RelResult<(ViewAnalysis, TableSchema)> {
    let unsupported = |what: &str| {
        RelError::Eval(format!(
            "materialized view {name:?}: {what} is not supported (results would not be \
             reproducible delta-wise)"
        ))
    };
    if query.distinct {
        return Err(unsupported("SELECT DISTINCT"));
    }
    if !query.order_by.is_empty() {
        return Err(unsupported("ORDER BY"));
    }
    if query.limit.is_some() || query.offset.is_some() {
        return Err(unsupported("LIMIT/OFFSET"));
    }

    // Sources: at most two tables across FROM and JOIN.
    let mut sources = Vec::new();
    let mut side_schemas = Vec::new();
    let mut col_types: Vec<DataType> = Vec::new();
    let refs = query
        .from
        .iter()
        .chain(query.joins.iter().map(|j| &j.table));
    for r in refs {
        let schema = catalog.table(&r.table)?;
        if r.table.to_ascii_lowercase().starts_with("sys_") {
            return Err(unsupported("reading system tables"));
        }
        if sources
            .iter()
            .any(|s: &SourceRef| s.alias.eq_ignore_ascii_case(&r.alias))
        {
            return Err(RelError::AmbiguousColumn(format!(
                "duplicate table alias {:?} in materialized view {name:?}",
                r.alias
            )));
        }
        sources.push(SourceRef {
            table: r.table.to_ascii_lowercase(),
            alias: r.alias.clone(),
        });
        side_schemas.push(RowSchema::for_table(
            &r.alias,
            schema.columns.iter().map(|c| c.name.clone()),
        ));
        col_types.extend(schema.columns.iter().map(|c| c.ty));
    }
    if sources.len() > 2 {
        return Err(unsupported("more than two base tables"));
    }
    let schema = match side_schemas.as_slice() {
        [one] => one.clone(),
        [l, r] => l.join(r),
        _ => unreachable!("1 or 2 sources"),
    };

    // Predicate: every JOIN ... ON conjunct, then WHERE, resolved and in
    // left-to-right order so short-circuit behaviour matches the executor.
    let mut predicate = Vec::new();
    for j in &query.joins {
        split_conjuncts(&resolve_expr(&j.on, &schema)?, &mut predicate);
    }
    if let Some(f) = &query.filter {
        split_conjuncts(&resolve_expr(f, &schema)?, &mut predicate);
    }
    for p in &predicate {
        if p.has_aggregate() {
            return Err(unsupported("aggregates in WHERE/ON"));
        }
    }

    // Equi-join key for the probe scans.
    let equi = if sources.len() == 2 {
        find_equi_key(&predicate, &sources)
    } else {
        None
    };

    // Output items: expand wildcards, derive names, resolve, infer types.
    let mut items: Vec<OutItem> = Vec::new();
    let mut any_aggregate = false;
    for (pos, item) in query.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for b in schema.columns() {
                    items.push(OutItem {
                        expr: Expr::Column {
                            table: Some(b.table.clone()),
                            name: b.name.clone(),
                        },
                        name: b.name.clone(),
                        ty: DataType::Int, // fixed up below
                    });
                }
            }
            SelectItem::TableWildcard(alias) => {
                if !sources.iter().any(|s| s.alias.eq_ignore_ascii_case(alias)) {
                    return Err(RelError::UnknownTable(alias.clone()));
                }
                for b in schema
                    .columns()
                    .iter()
                    .filter(|b| b.table.eq_ignore_ascii_case(alias))
                {
                    items.push(OutItem {
                        expr: Expr::Column {
                            table: Some(b.table.clone()),
                            name: b.name.clone(),
                        },
                        name: b.name.clone(),
                        ty: DataType::Int,
                    });
                }
            }
            SelectItem::Expr { expr, alias } => {
                any_aggregate |= expr.has_aggregate();
                let resolved = resolve_expr(expr, &schema)?;
                let name = alias.clone().unwrap_or_else(|| derive_name(expr, pos));
                items.push(OutItem {
                    expr: resolved,
                    name,
                    ty: DataType::Int,
                });
            }
        }
    }
    for it in &mut items {
        it.ty = infer_type(&it.expr, &schema, &col_types);
    }
    let mut seen = HashSet::new();
    for it in &items {
        if !seen.insert(it.name.to_ascii_lowercase()) {
            return Err(RelError::SchemaMismatch(format!(
                "materialized view {name:?}: duplicate output column {:?}; name it with AS",
                it.name
            )));
        }
    }

    // Group-by and aggregate slots.
    let group_by = query
        .group_by
        .iter()
        .map(|e| {
            if e.has_aggregate() {
                Err(unsupported("aggregates in GROUP BY"))
            } else {
                resolve_expr(e, &schema)
            }
        })
        .collect::<RelResult<Vec<_>>>()?;
    let grouped = any_aggregate || !group_by.is_empty();
    let mut aggs = Vec::new();
    if grouped {
        for it in &items {
            collect_aggs(&it.expr, &mut aggs)?;
            if !grounded(&it.expr, &group_by) {
                return Err(RelError::Eval(format!(
                    "materialized view {name:?}: output column {:?} is neither aggregated nor \
                     part of GROUP BY",
                    it.name
                )));
            }
        }
        for a in &aggs {
            match a.func {
                AggFunc::Sum | AggFunc::Avg => {
                    let arg = a.arg.as_ref().expect("SUM/AVG always has an argument");
                    if infer_type(arg, &schema, &col_types) != DataType::Int {
                        return Err(unsupported(
                            "SUM/AVG over non-integer expressions (float accumulation is \
                             order-sensitive)",
                        ));
                    }
                }
                AggFunc::Count | AggFunc::Min | AggFunc::Max => {}
            }
        }
    }

    let analysis = ViewAnalysis {
        sources,
        side_schemas,
        schema,
        predicate,
        equi,
        items,
        group_by,
        aggs,
        grouped,
    };
    let backing = TableSchema::new(
        name,
        analysis
            .items
            .iter()
            .map(|it| Column::new(&it.name, it.ty))
            .collect(),
    );
    Ok((analysis, backing))
}

/// Resolves every column reference in `expr` to its canonical
/// alias-qualified form, rejecting parameters and unknown/ambiguous
/// columns. Resolution makes later syntactic comparisons (groundedness,
/// equi-key detection) semantic.
fn resolve_expr(expr: &Expr, schema: &RowSchema) -> RelResult<Expr> {
    Ok(match expr {
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Param(_) => {
            return Err(RelError::Eval(
                "materialized view definitions cannot contain parameters".into(),
            ))
        }
        Expr::Column { table, name } => {
            let i = schema.resolve(table.as_deref(), name)?;
            let b = &schema.columns()[i];
            Expr::Column {
                table: Some(b.table.clone()),
                name: b.name.clone(),
            }
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(resolve_expr(left, schema)?),
            right: Box::new(resolve_expr(right, schema)?),
        },
        Expr::Not(e) => Expr::Not(Box::new(resolve_expr(e, schema)?)),
        Expr::Neg(e) => Expr::Neg(Box::new(resolve_expr(e, schema)?)),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(resolve_expr(expr, schema)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(resolve_expr(expr, schema)?),
            pattern: Box::new(resolve_expr(pattern, schema)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(resolve_expr(expr, schema)?),
            list: list
                .iter()
                .map(|e| resolve_expr(e, schema))
                .collect::<RelResult<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(resolve_expr(expr, schema)?),
            low: Box::new(resolve_expr(low, schema)?),
            high: Box::new(resolve_expr(high, schema)?),
            negated: *negated,
        },
        Expr::Contains { column, keyword } => Expr::Contains {
            column: Box::new(resolve_expr(column, schema)?),
            keyword: Box::new(resolve_expr(keyword, schema)?),
        },
        Expr::Matches { column, pattern } => Expr::Matches {
            column: Box::new(resolve_expr(column, schema)?),
            pattern: Box::new(resolve_expr(pattern, schema)?),
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => {
            if *distinct {
                return Err(RelError::Eval(
                    "materialized views do not support DISTINCT aggregates".into(),
                ));
            }
            if arg.as_deref().is_some_and(Expr::has_aggregate) {
                return Err(RelError::Eval("nested aggregates are not allowed".into()));
            }
            Expr::Aggregate {
                func: *func,
                arg: match arg {
                    Some(a) => Some(Box::new(resolve_expr(a, schema)?)),
                    None => None,
                },
                distinct: false,
            }
        }
    })
}

/// Output name derivation, mirroring the planner so a view's columns are
/// named like the equivalent ad-hoc SELECT's.
fn derive_name(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => format!("col{position}"),
    }
}

/// In-order conjunct split of nested `AND`s.
fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = expr
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(expr.clone());
    }
}

/// Which source slots a resolved expression reads, plus whether it reads
/// any column at all.
fn sides(expr: &Expr, sources: &[SourceRef], acc: &mut (HashSet<usize>, bool)) {
    match expr {
        Expr::Column { table, .. } => {
            acc.1 = true;
            if let Some(alias) = table {
                if let Some(i) = sources
                    .iter()
                    .position(|s| s.alias.eq_ignore_ascii_case(alias))
                {
                    acc.0.insert(i);
                }
            }
        }
        Expr::Literal(_) | Expr::Param(_) => {}
        Expr::Binary { left, right, .. } => {
            sides(left, sources, acc);
            sides(right, sources, acc);
        }
        Expr::Not(e) | Expr::Neg(e) => sides(e, sources, acc),
        Expr::IsNull { expr, .. } => sides(expr, sources, acc),
        Expr::Like { expr, pattern, .. } => {
            sides(expr, sources, acc);
            sides(pattern, sources, acc);
        }
        Expr::InList { expr, list, .. } => {
            sides(expr, sources, acc);
            for e in list {
                sides(e, sources, acc);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            sides(expr, sources, acc);
            sides(low, sources, acc);
            sides(high, sources, acc);
        }
        Expr::Contains { column, keyword } => {
            sides(column, sources, acc);
            sides(keyword, sources, acc);
        }
        Expr::Matches { column, pattern } => {
            sides(column, sources, acc);
            sides(pattern, sources, acc);
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                sides(a, sources, acc);
            }
        }
    }
}

/// Finds an equi-join conjunct `left_side_expr = right_side_expr` to hash
/// the probe scans on.
fn find_equi_key(predicate: &[Expr], sources: &[SourceRef]) -> Option<(Expr, Expr)> {
    for p in predicate {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = p
        {
            let mut l = (HashSet::new(), false);
            let mut r = (HashSet::new(), false);
            sides(left, sources, &mut l);
            sides(right, sources, &mut r);
            let only = |acc: &(HashSet<usize>, bool), slot: usize| {
                acc.1 && acc.0.len() == 1 && acc.0.contains(&slot)
            };
            if only(&l, 0) && only(&r, 1) {
                return Some(((**left).clone(), (**right).clone()));
            }
            if only(&l, 1) && only(&r, 0) {
                return Some(((**right).clone(), (**left).clone()));
            }
        }
    }
    None
}

/// Whether a non-aggregate part of a select item is a function of the
/// group key: syntactically equal to a `GROUP BY` expression, a literal,
/// an aggregate (computed separately), or composed of grounded children.
fn grounded(expr: &Expr, group_by: &[Expr]) -> bool {
    if group_by.contains(expr) {
        return true;
    }
    match expr {
        Expr::Literal(_) | Expr::Aggregate { .. } => true,
        Expr::Column { .. } | Expr::Param(_) => false,
        Expr::Binary { left, right, .. } => grounded(left, group_by) && grounded(right, group_by),
        Expr::Not(e) | Expr::Neg(e) => grounded(e, group_by),
        Expr::IsNull { expr, .. } => grounded(expr, group_by),
        Expr::Like { expr, pattern, .. } => grounded(expr, group_by) && grounded(pattern, group_by),
        Expr::InList { expr, list, .. } => {
            grounded(expr, group_by) && list.iter().all(|e| grounded(e, group_by))
        }
        Expr::Between {
            expr, low, high, ..
        } => grounded(expr, group_by) && grounded(low, group_by) && grounded(high, group_by),
        Expr::Contains { column, keyword } => {
            grounded(column, group_by) && grounded(keyword, group_by)
        }
        Expr::Matches { column, pattern } => {
            grounded(column, group_by) && grounded(pattern, group_by)
        }
    }
}

/// Registers every distinct aggregate call in `expr` as a slot.
fn collect_aggs(expr: &Expr, out: &mut Vec<AggSpec>) -> RelResult<()> {
    match expr {
        Expr::Aggregate { func, arg, .. } => {
            if !out.iter().any(|s| &s.expr == expr) {
                out.push(AggSpec {
                    expr: expr.clone(),
                    func: *func,
                    arg: arg.as_deref().cloned(),
                });
            }
            Ok(())
        }
        Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => Ok(()),
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out)?;
            collect_aggs(right, out)
        }
        Expr::Not(e) | Expr::Neg(e) => collect_aggs(e, out),
        Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::Like { expr, pattern, .. } => {
            collect_aggs(expr, out)?;
            collect_aggs(pattern, out)
        }
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out)?;
            for e in list {
                collect_aggs(e, out)?;
            }
            Ok(())
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggs(expr, out)?;
            collect_aggs(low, out)?;
            collect_aggs(high, out)
        }
        Expr::Contains { column, keyword } => {
            collect_aggs(column, out)?;
            collect_aggs(keyword, out)
        }
        Expr::Matches { column, pattern } => {
            collect_aggs(column, out)?;
            collect_aggs(pattern, out)
        }
    }
}

/// Static type of a resolved expression over representation-uniform
/// columns. Sound for the supported operator set: evaluation of an
/// `Int`-typed expression only ever yields `Int` or NULL, etc., which is
/// what makes backing-table coercion the identity.
fn infer_type(expr: &Expr, schema: &RowSchema, col_types: &[DataType]) -> DataType {
    match expr {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
        Expr::Column { table, name } => schema
            .resolve(table.as_deref(), name)
            .ok()
            .and_then(|i| col_types.get(i).copied())
            .unwrap_or(DataType::Int),
        Expr::Binary { op, left, right } => {
            if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                DataType::Int
            } else {
                let l = infer_type(left, schema, col_types);
                let r = infer_type(right, schema, col_types);
                if l == DataType::Float || r == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
        }
        Expr::Neg(e) => match infer_type(e, schema, col_types) {
            DataType::Float => DataType::Float,
            _ => DataType::Int,
        },
        Expr::Not(_)
        | Expr::IsNull { .. }
        | Expr::Like { .. }
        | Expr::InList { .. }
        | Expr::Between { .. }
        | Expr::Contains { .. }
        | Expr::Matches { .. }
        | Expr::Param(_) => DataType::Int,
        Expr::Aggregate { func, arg, .. } => match func {
            AggFunc::Count => DataType::Int,
            AggFunc::Sum => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Min | AggFunc::Max => arg
                .as_deref()
                .map(|a| infer_type(a, schema, col_types))
                .unwrap_or(DataType::Int),
        },
    }
}

// ---- SQL rendering ---------------------------------------------------------

/// Renders a supported `SELECT` back to SQL text that re-parses to an
/// equivalent statement (WAL records and `sys_views.definition`).
pub(crate) fn render_select(q: &SelectStmt) -> RelResult<String> {
    let mut s = String::from("SELECT ");
    if q.distinct {
        s.push_str("DISTINCT ");
    }
    for (i, item) in q.items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => s.push('*'),
            SelectItem::TableWildcard(t) => {
                s.push_str(t);
                s.push_str(".*");
            }
            SelectItem::Expr { expr, alias } => {
                s.push_str(&render_expr(expr)?);
                if let Some(a) = alias {
                    s.push_str(" AS ");
                    s.push_str(a);
                }
            }
        }
    }
    s.push_str(" FROM ");
    for (i, t) in q.from.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&t.table);
        if !t.alias.eq_ignore_ascii_case(&t.table) {
            s.push(' ');
            s.push_str(&t.alias);
        }
    }
    for j in &q.joins {
        s.push_str(" JOIN ");
        s.push_str(&j.table.table);
        if !j.table.alias.eq_ignore_ascii_case(&j.table.table) {
            s.push(' ');
            s.push_str(&j.table.alias);
        }
        s.push_str(" ON ");
        s.push_str(&render_expr(&j.on)?);
    }
    if let Some(f) = &q.filter {
        s.push_str(" WHERE ");
        s.push_str(&render_expr(f)?);
    }
    if !q.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        for (i, e) in q.group_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&render_expr(e)?);
        }
    }
    if !q.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        for (i, k) in q.order_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&render_expr(&k.expr)?);
            if k.descending {
                s.push_str(" DESC");
            }
        }
    }
    if let Some(n) = q.limit {
        s.push_str(&format!(" LIMIT {n}"));
    }
    if let Some(n) = q.offset {
        s.push_str(&format!(" OFFSET {n}"));
    }
    Ok(s)
}

fn render_value(v: &Value) -> RelResult<String> {
    Ok(match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => {
            if *i == i64::MIN {
                // `-9223372036854775808` does not lex (the magnitude
                // overflows before the sign applies).
                "(-9223372036854775807 - 1)".to_string()
            } else if *i < 0 {
                format!("(-{})", i.unsigned_abs())
            } else {
                format!("{i}")
            }
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(RelError::Eval(format!(
                    "float literal {f} has no SQL spelling"
                )));
            }
            if *f < 0.0 {
                return Ok(format!("(0.0 - {})", render_float(-*f)));
            }
            render_float(*f)
        }
        Value::Text(t) => format!("'{}'", t.replace('\'', "''")),
    })
}

/// Rust's `Display` for f64 is the shortest round-tripping decimal and
/// never uses exponent notation, which the lexer cannot read; a trailing
/// `.0` keeps whole floats lexing as floats.
fn render_float(f: f64) -> String {
    let s = format!("{f}");
    if s.contains('.') {
        s
    } else {
        format!("{s}.0")
    }
}

fn render_expr(expr: &Expr) -> RelResult<String> {
    Ok(match expr {
        Expr::Literal(v) => render_value(v)?,
        Expr::Param(_) => {
            return Err(RelError::Eval(
                "materialized view definitions cannot contain parameters".into(),
            ))
        }
        Expr::Column { table, name } => match table {
            Some(t) => format!("{t}.{name}"),
            None => name.clone(),
        },
        Expr::Binary { op, left, right } => {
            let op = match op {
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {op} {})", render_expr(left)?, render_expr(right)?)
        }
        Expr::Not(e) => format!("(NOT {})", render_expr(e)?),
        Expr::Neg(e) => format!("(-{})", render_expr(e)?),
        Expr::IsNull { expr, negated } => format!(
            "({} IS {}NULL)",
            render_expr(expr)?,
            if *negated { "NOT " } else { "" }
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "({} {}LIKE {})",
            render_expr(expr)?,
            if *negated { "NOT " } else { "" },
            render_expr(pattern)?
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let list = list
                .iter()
                .map(render_expr)
                .collect::<RelResult<Vec<_>>>()?
                .join(", ");
            format!(
                "({} {}IN ({list}))",
                render_expr(expr)?,
                if *negated { "NOT " } else { "" }
            )
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "({} {}BETWEEN {} AND {})",
            render_expr(expr)?,
            if *negated { "NOT " } else { "" },
            render_expr(low)?,
            render_expr(high)?
        ),
        Expr::Contains { column, keyword } => format!(
            "CONTAINS({}, {})",
            render_expr(column)?,
            render_expr(keyword)?
        ),
        Expr::Matches { column, pattern } => format!(
            "MATCHES({}, {})",
            render_expr(column)?,
            render_expr(pattern)?
        ),
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => {
            let name = format!("{func:?}").to_ascii_uppercase();
            let inner = match arg {
                None => "*".to_string(),
                Some(a) => render_expr(a)?,
            };
            format!(
                "{name}({}{inner})",
                if *distinct { "DISTINCT " } else { "" }
            )
        }
    })
}

// ---- evaluation helpers ----------------------------------------------------

/// Whether a source row passes every predicate conjunct (left to right,
/// stopping at the first false/NULL like `AND` short-circuiting).
fn passes(predicate: &[Expr], schema: &RowSchema, row: &[Value]) -> RelResult<bool> {
    for p in predicate {
        if !crate::expr::eval_predicate(p, schema, row)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Projects one qualifying source row through the output items.
fn project(a: &ViewAnalysis, row: &[Value]) -> RelResult<Row> {
    a.items
        .iter()
        .map(|it| eval(&it.expr, &a.schema, row))
        .collect()
}

/// Substitutes each aggregate slot's computed value into `expr`, mirroring
/// the executor's `materialize_aggregates`.
fn substitute_aggs(expr: &Expr, aggs: &[AggSpec], computed: &[Value]) -> Expr {
    if matches!(expr, Expr::Aggregate { .. }) {
        if let Some(i) = aggs.iter().position(|s| &s.expr == expr) {
            return Expr::Literal(computed[i].clone());
        }
    }
    match expr {
        Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } | Expr::Aggregate { .. } => {
            expr.clone()
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute_aggs(left, aggs, computed)),
            right: Box::new(substitute_aggs(right, aggs, computed)),
        },
        Expr::Not(e) => Expr::Not(Box::new(substitute_aggs(e, aggs, computed))),
        Expr::Neg(e) => Expr::Neg(Box::new(substitute_aggs(e, aggs, computed))),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute_aggs(expr, aggs, computed)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(substitute_aggs(expr, aggs, computed)),
            pattern: Box::new(substitute_aggs(pattern, aggs, computed)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(substitute_aggs(expr, aggs, computed)),
            list: list
                .iter()
                .map(|e| substitute_aggs(e, aggs, computed))
                .collect(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(substitute_aggs(expr, aggs, computed)),
            low: Box::new(substitute_aggs(low, aggs, computed)),
            high: Box::new(substitute_aggs(high, aggs, computed)),
            negated: *negated,
        },
        Expr::Contains { column, keyword } => Expr::Contains {
            column: Box::new(substitute_aggs(column, aggs, computed)),
            keyword: Box::new(substitute_aggs(keyword, aggs, computed)),
        },
        Expr::Matches { column, pattern } => Expr::Matches {
            column: Box::new(substitute_aggs(column, aggs, computed)),
            pattern: Box::new(substitute_aggs(pattern, aggs, computed)),
        },
    }
}

/// Emits a group's output row: aggregate slots become their accumulated
/// values, the rest evaluates against the representative (a NULL row for
/// the empty global group, matching the executor).
fn emit_group(a: &ViewAnalysis, g: &GroupState) -> RelResult<Row> {
    let computed: Vec<Value> = g
        .accs
        .iter()
        .map(|acc| acc.value(g.rows))
        .collect::<RelResult<_>>()?;
    let null_row;
    let rep: &[Value] = if g.rows == 0 {
        null_row = vec![Value::Null; a.schema.len()];
        &null_row
    } else {
        &g.rep
    };
    a.items
        .iter()
        .map(|it| {
            eval(
                &substitute_aggs(&it.expr, &a.aggs, &computed),
                &a.schema,
                rep,
            )
        })
        .collect()
}

fn base_table<'a>(tables: &'a BTreeMap<String, Table>, key: &str) -> RelResult<&'a Table> {
    tables
        .get(key)
        .ok_or_else(|| RelError::Internal(format!("view source table {key:?} missing")))
}

/// Enumerates every qualifying source row (filter applied), concatenated
/// across the join when there are two sources, in a deterministic order.
fn for_each_source_row(
    a: &ViewAnalysis,
    tables: &BTreeMap<String, Table>,
    mut f: impl FnMut(u64, Option<u64>, &[Value]) -> RelResult<()>,
) -> RelResult<()> {
    match a.sources.len() {
        1 => {
            let t = base_table(tables, &a.sources[0].table)?;
            for (id, row) in t.scan() {
                if passes(&a.predicate, &a.schema, &row)? {
                    f(id.0, None, &row)?;
                }
            }
            Ok(())
        }
        2 => {
            let left = base_table(tables, &a.sources[0].table)?;
            let right = base_table(tables, &a.sources[1].table)?;
            if let Some((lkey, rkey)) = &a.equi {
                // Hash the right side on the equi key, probe with the left.
                let mut build: HashMap<Value, Vec<(u64, Row)>> = HashMap::new();
                for (rid, rrow) in right.scan() {
                    let k = eval(rkey, &a.side_schemas[1], &rrow)?;
                    if !k.is_null() {
                        build.entry(k).or_default().push((rid.0, rrow));
                    }
                }
                for (lid, lrow) in left.scan() {
                    let k = eval(lkey, &a.side_schemas[0], &lrow)?;
                    if k.is_null() {
                        continue;
                    }
                    if let Some(matches) = build.get(&k) {
                        for (rid, rrow) in matches {
                            let mut joined = lrow.clone();
                            joined.extend(rrow.iter().cloned());
                            if passes(&a.predicate, &a.schema, &joined)? {
                                f(lid.0, Some(*rid), &joined)?;
                            }
                        }
                    }
                }
            } else {
                for (lid, lrow) in left.scan() {
                    for (rid, rrow) in right.scan() {
                        let mut joined = lrow.clone();
                        joined.extend(rrow);
                        if passes(&a.predicate, &a.schema, &joined)? {
                            f(lid.0, Some(rid.0), &joined)?;
                        }
                    }
                }
            }
            Ok(())
        }
        n => Err(RelError::Internal(format!("view with {n} sources"))),
    }
}

/// The zero-rows state for a view's shape — the placeholder recovery
/// registers before its post-replay rebuild.
pub(crate) fn empty_state(a: &ViewAnalysis) -> ViewState {
    if a.grouped {
        ViewState::Agg {
            groups: HashMap::new(),
        }
    } else if a.sources.len() == 1 {
        ViewState::Map {
            rows: HashMap::new(),
        }
    } else {
        ViewState::JoinMap {
            pairs: HashMap::new(),
            by_left: HashMap::new(),
            by_right: HashMap::new(),
        }
    }
}

// ---- full build ------------------------------------------------------------

/// Recomputes a view's contents and state from scratch into an empty
/// backing table (creation, `REFRESH ... FULL`, delta-log overflow, and
/// WAL recovery all land here).
pub(crate) fn full_build(
    a: &ViewAnalysis,
    tables: &BTreeMap<String, Table>,
    view_table: &mut Table,
) -> RelResult<ViewState> {
    if a.grouped {
        let mut groups: HashMap<Vec<Value>, GroupState> = HashMap::new();
        let mut order: Vec<Vec<Value>> = Vec::new();
        for_each_source_row(a, tables, |_, _, row| {
            let key: Vec<Value> = a
                .group_by
                .iter()
                .map(|e| eval(e, &a.schema, row))
                .collect::<RelResult<_>>()?;
            let g = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                GroupState {
                    rows: 0,
                    rep: row.to_vec(),
                    accs: a.aggs.iter().map(AggAcc::fresh).collect(),
                    view_row: NO_ROW,
                }
            });
            apply_row_to_group(a, g, row, 1)
        })?;
        if groups.is_empty() && a.group_by.is_empty() {
            // A global aggregate over no rows still emits one row.
            order.push(Vec::new());
            groups.insert(
                Vec::new(),
                GroupState {
                    rows: 0,
                    rep: Vec::new(),
                    accs: a.aggs.iter().map(AggAcc::fresh).collect(),
                    view_row: NO_ROW,
                },
            );
        }
        for key in &order {
            let g = groups.get_mut(key).expect("group just inserted");
            let out = emit_group(a, g)?;
            g.view_row = view_table.insert(out)?.0;
        }
        Ok(ViewState::Agg { groups })
    } else if a.sources.len() == 1 {
        let mut rows = HashMap::new();
        for_each_source_row(a, tables, |id, _, row| {
            let out = project(a, row)?;
            rows.insert(id, view_table.insert(out)?.0);
            Ok(())
        })?;
        Ok(ViewState::Map { rows })
    } else {
        let mut pairs = HashMap::new();
        let mut by_left: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut by_right: HashMap<u64, Vec<u64>> = HashMap::new();
        for_each_source_row(a, tables, |lid, rid, row| {
            let rid = rid.expect("join enumeration yields both ids");
            let out = project(a, row)?;
            let vid = view_table.insert(out)?.0;
            pairs.insert((lid, rid), vid);
            by_left.entry(lid).or_default().push(rid);
            by_right.entry(rid).or_default().push(lid);
            Ok(())
        })?;
        Ok(ViewState::JoinMap {
            pairs,
            by_left,
            by_right,
        })
    }
}

/// Folds one source row into a group's accumulators.
fn apply_row_to_group(
    a: &ViewAnalysis,
    g: &mut GroupState,
    row: &[Value],
    sign: i64,
) -> RelResult<()> {
    if sign > 0 && g.rows == 0 {
        // (Re)starting group: adopt this member as the representative.
        g.rep = row.to_vec();
    }
    g.rows += sign;
    if g.rows < 0 {
        return Err(RelError::Internal(
            "materialized view: group row count went negative".into(),
        ));
    }
    for (acc, spec) in g.accs.iter_mut().zip(&a.aggs) {
        let v = match &spec.arg {
            Some(arg) => eval(arg, &a.schema, row)?,
            None => Value::Int(1),
        };
        acc.apply(v, sign)?;
    }
    Ok(())
}

// ---- delta maintenance -----------------------------------------------------

/// Applies one committed batch of base-table deltas to a view. `tables`
/// is the post-commit base state; the view's own backing table is passed
/// detached so base lookups and view mutations can coexist.
pub(crate) fn apply_deltas(
    rt: &mut ViewRuntime,
    view_table: &mut Table,
    tables: &BTreeMap<String, Table>,
    deltas: &[DeltaEvent],
) -> RelResult<()> {
    let a = &rt.analysis;
    let d0: Vec<&DeltaEvent> = deltas
        .iter()
        .filter(|d| d.table() == a.sources[0].table)
        .collect();
    let d1: Vec<&DeltaEvent> = match a.sources.get(1) {
        Some(s) => deltas.iter().filter(|d| d.table() == s.table).collect(),
        None => Vec::new(),
    };
    if d0.is_empty() && d1.is_empty() {
        return Ok(());
    }
    let state = Arc::make_mut(&mut rt.state);
    match state {
        ViewState::Map { rows } => apply_map_deltas(a, rows, view_table, &d0),
        ViewState::JoinMap {
            pairs,
            by_left,
            by_right,
        } => apply_join_deltas(a, pairs, by_left, by_right, view_table, tables, &d0, &d1),
        ViewState::Agg { groups } => {
            let signed = signed_source_deltas(a, tables, &d0, &d1)?;
            apply_agg_deltas(a, groups, view_table, tables, signed)
        }
    }
}

/// Filter/project over one table: deltas map row-wise through the
/// predicate and projection, in commit order.
fn apply_map_deltas(
    a: &ViewAnalysis,
    rows: &mut HashMap<u64, u64>,
    view_table: &mut Table,
    d0: &[&DeltaEvent],
) -> RelResult<()> {
    for ev in d0 {
        match ev {
            DeltaEvent::Delete { id, .. } => {
                if let Some(vid) = rows.remove(&id.0) {
                    view_table.delete(RowId(vid))?;
                }
            }
            DeltaEvent::Insert { id, row, .. } => {
                if passes(&a.predicate, &a.schema, row)? {
                    let out = project(a, row)?;
                    let vid = view_table.insert(out)?.0;
                    rows.insert(id.0, vid);
                }
            }
        }
    }
    Ok(())
}

fn delta_ids(events: &[&DeltaEvent]) -> HashSet<u64> {
    events
        .iter()
        .map(|e| match e {
            DeltaEvent::Insert { id, .. } | DeltaEvent::Delete { id, .. } => id.0,
        })
        .collect()
}

/// Join maintenance: compute the set of `(left, right)` pairs a commit
/// can have affected — existing pairs over a touched row, plus new
/// matches found by probing the opposite side once — then reconcile each
/// against the post-commit base state. State-based reconciliation makes
/// same-transaction churn (update = delete+insert, insert-then-delete)
/// correct without signed-multiset bookkeeping.
#[allow(clippy::too_many_arguments)]
fn apply_join_deltas(
    a: &ViewAnalysis,
    pairs: &mut HashMap<(u64, u64), u64>,
    by_left: &mut HashMap<u64, Vec<u64>>,
    by_right: &mut HashMap<u64, Vec<u64>>,
    view_table: &mut Table,
    tables: &BTreeMap<String, Table>,
    d0: &[&DeltaEvent],
    d1: &[&DeltaEvent],
) -> RelResult<()> {
    let left = base_table(tables, &a.sources[0].table)?;
    let right = base_table(tables, &a.sources[1].table)?;
    let touched_left = delta_ids(d0);
    let touched_right = delta_ids(d1);
    let mut touched: HashSet<(u64, u64)> = HashSet::new();

    // Pairs that already exist over a touched base row.
    for lid in &touched_left {
        if let Some(rids) = by_left.get(lid) {
            touched.extend(rids.iter().map(|rid| (*lid, *rid)));
        }
    }
    for rid in &touched_right {
        if let Some(lids) = by_right.get(rid) {
            touched.extend(lids.iter().map(|lid| (*lid, *rid)));
        }
    }

    // New matches: probe the opposite side once per commit, hashed on the
    // equi key when the predicate has one.
    if let Some((lkey, rkey)) = &a.equi {
        let mut probe: HashMap<Value, Vec<u64>> = HashMap::new();
        for lid in &touched_left {
            if let Some(lrow) = left.get(RowId(*lid)) {
                let k = eval(lkey, &a.side_schemas[0], &lrow)?;
                if !k.is_null() {
                    probe.entry(k).or_default().push(*lid);
                }
            }
        }
        if !probe.is_empty() {
            for (rid, rrow) in right.scan() {
                let k = eval(rkey, &a.side_schemas[1], &rrow)?;
                if let Some(lids) = probe.get(&k) {
                    touched.extend(lids.iter().map(|lid| (*lid, rid.0)));
                }
            }
        }
        let mut probe: HashMap<Value, Vec<u64>> = HashMap::new();
        for rid in &touched_right {
            if let Some(rrow) = right.get(RowId(*rid)) {
                let k = eval(rkey, &a.side_schemas[1], &rrow)?;
                if !k.is_null() {
                    probe.entry(k).or_default().push(*rid);
                }
            }
        }
        if !probe.is_empty() {
            for (lid, lrow) in left.scan() {
                let k = eval(lkey, &a.side_schemas[0], &lrow)?;
                if let Some(rids) = probe.get(&k) {
                    touched.extend(rids.iter().map(|rid| (lid.0, *rid)));
                }
            }
        }
    } else {
        // No equi key: every touched row pairs with the full other side.
        let live_left: Vec<u64> = touched_left
            .iter()
            .copied()
            .filter(|lid| left.get(RowId(*lid)).is_some())
            .collect();
        if !live_left.is_empty() {
            for (rid, _) in right.scan() {
                touched.extend(live_left.iter().map(|lid| (*lid, rid.0)));
            }
        }
        let live_right: Vec<u64> = touched_right
            .iter()
            .copied()
            .filter(|rid| right.get(RowId(*rid)).is_some())
            .collect();
        if !live_right.is_empty() {
            for (lid, _) in left.scan() {
                touched.extend(live_right.iter().map(|rid| (lid.0, *rid)));
            }
        }
    }

    for (lid, rid) in touched {
        let joined = match (left.get(RowId(lid)), right.get(RowId(rid))) {
            (Some(mut l), Some(r)) => {
                l.extend(r);
                if passes(&a.predicate, &a.schema, &l)? {
                    Some(l)
                } else {
                    None
                }
            }
            _ => None,
        };
        match (pairs.get(&(lid, rid)).copied(), joined) {
            (Some(vid), None) => {
                view_table.delete(RowId(vid))?;
                pairs.remove(&(lid, rid));
                if let Some(v) = by_left.get_mut(&lid) {
                    v.retain(|r| *r != rid);
                    if v.is_empty() {
                        by_left.remove(&lid);
                    }
                }
                if let Some(v) = by_right.get_mut(&rid) {
                    v.retain(|l| *l != lid);
                    if v.is_empty() {
                        by_right.remove(&rid);
                    }
                }
            }
            (Some(vid), Some(row)) => {
                view_table.update(RowId(vid), project(a, &row)?)?;
            }
            (None, Some(row)) => {
                let vid = view_table.insert(project(a, &row)?)?.0;
                pairs.insert((lid, rid), vid);
                by_left.entry(lid).or_default().push(rid);
                by_right.entry(rid).or_default().push(lid);
            }
            (None, None) => {}
        }
    }
    Ok(())
}

/// The commit's deltas as a signed multiset of qualifying source-schema
/// rows, for the aggregate pipeline. Single table: the events themselves.
/// Join: `ΔA ⋈ B_new ⊕ A_old ⋈ ΔB`, each term hashed on the equi key
/// when available.
fn signed_source_deltas(
    a: &ViewAnalysis,
    tables: &BTreeMap<String, Table>,
    d0: &[&DeltaEvent],
    d1: &[&DeltaEvent],
) -> RelResult<Vec<(i64, Row)>> {
    let mut signed = Vec::new();
    if a.sources.len() == 1 {
        for ev in d0 {
            let (sign, row) = match ev {
                DeltaEvent::Insert { row, .. } => (1, row),
                DeltaEvent::Delete { row, .. } => (-1, row),
            };
            if passes(&a.predicate, &a.schema, row)? {
                signed.push((sign, row.clone()));
            }
        }
        return Ok(signed);
    }

    let left = base_table(tables, &a.sources[0].table)?;
    let right = base_table(tables, &a.sources[1].table)?;

    // ΔA ⋈ B_new.
    join_delta_side(
        a,
        d0,
        right,
        /* delta_on_left */ true,
        None,
        &mut signed,
    )?;
    // A_old ⋈ ΔB: reconstruct the pre-commit left side from the current
    // one — skip every touched id, add back the pre-commit content of ids
    // whose first event is a delete (an id whose first event is an insert
    // did not exist before the commit).
    let mut pre: HashMap<u64, Option<&Row>> = HashMap::new();
    for ev in d0 {
        match ev {
            DeltaEvent::Insert { id, .. } => {
                pre.entry(id.0).or_insert(None);
            }
            DeltaEvent::Delete { id, row, .. } => {
                pre.entry(id.0).or_insert(Some(row));
            }
        }
    }
    let old_left: Vec<Row> = left
        .scan()
        .filter(|(id, _)| !pre.contains_key(&id.0))
        .map(|(_, row)| row)
        .chain(pre.values().flatten().map(|r| (*r).clone()))
        .collect();
    join_delta_side(a, d1, left, false, Some(&old_left), &mut signed)?;
    Ok(signed)
}

/// One term of the join delta: `delta ⋈ other`, where `other` is either
/// the live table or a reconstructed pre-commit row set.
fn join_delta_side(
    a: &ViewAnalysis,
    delta: &[&DeltaEvent],
    other: &Table,
    delta_on_left: bool,
    other_rows_override: Option<&[Row]>,
    signed: &mut Vec<(i64, Row)>,
) -> RelResult<()> {
    if delta.is_empty() {
        return Ok(());
    }
    let (delta_schema, other_schema) = if delta_on_left {
        (&a.side_schemas[0], &a.side_schemas[1])
    } else {
        (&a.side_schemas[1], &a.side_schemas[0])
    };
    let (delta_key, other_key) = match &a.equi {
        Some((l, r)) if delta_on_left => (Some(l), Some(r)),
        Some((l, r)) => (Some(r), Some(l)),
        None => (None, None),
    };
    let events: Vec<(i64, &Row)> = delta
        .iter()
        .map(|ev| match ev {
            DeltaEvent::Insert { row, .. } => (1i64, row),
            DeltaEvent::Delete { row, .. } => (-1i64, row),
        })
        .collect();
    let mut emit = |sign: i64, drow: &Row, orow: &Row| -> RelResult<()> {
        let joined: Row = if delta_on_left {
            drow.iter().chain(orow.iter()).cloned().collect()
        } else {
            orow.iter().chain(drow.iter()).cloned().collect()
        };
        if passes(&a.predicate, &a.schema, &joined)? {
            signed.push((sign, joined));
        }
        Ok(())
    };
    match (delta_key, other_key) {
        (Some(dk), Some(ok)) => {
            let mut probe: HashMap<Value, Vec<(i64, &Row)>> = HashMap::new();
            for (sign, row) in &events {
                let k = eval(dk, delta_schema, row)?;
                if !k.is_null() {
                    probe.entry(k).or_default().push((*sign, row));
                }
            }
            let mut scan_other = |orow: &Row| -> RelResult<()> {
                let k = eval(ok, other_schema, orow)?;
                if let Some(hits) = probe.get(&k) {
                    for (sign, drow) in hits {
                        emit(*sign, drow, orow)?;
                    }
                }
                Ok(())
            };
            match other_rows_override {
                Some(rows) => {
                    for r in rows {
                        scan_other(r)?;
                    }
                }
                None => {
                    for (_, r) in other.scan() {
                        scan_other(&r)?;
                    }
                }
            }
        }
        _ => match other_rows_override {
            Some(rows) => {
                for orow in rows {
                    for (sign, drow) in &events {
                        emit(*sign, drow, orow)?;
                    }
                }
            }
            None => {
                for (_, orow) in other.scan() {
                    for (sign, drow) in &events {
                        emit(*sign, drow, &orow)?;
                    }
                }
            }
        },
    }
    Ok(())
}

/// Applies signed source-row deltas to the group accumulators, rescans
/// groups whose MIN/MAX extreme was retracted, and re-emits every touched
/// group's view row.
fn apply_agg_deltas(
    a: &ViewAnalysis,
    groups: &mut HashMap<Vec<Value>, GroupState>,
    view_table: &mut Table,
    tables: &BTreeMap<String, Table>,
    signed: Vec<(i64, Row)>,
) -> RelResult<()> {
    let mut dirty: HashSet<Vec<Value>> = HashSet::new();
    for (sign, row) in signed {
        let key: Vec<Value> = a
            .group_by
            .iter()
            .map(|e| eval(e, &a.schema, &row))
            .collect::<RelResult<_>>()?;
        let g = match groups.get_mut(&key) {
            Some(g) => g,
            None => {
                if sign < 0 {
                    return Err(RelError::Internal(
                        "materialized view: retraction from an unknown group".into(),
                    ));
                }
                groups.entry(key.clone()).or_insert(GroupState {
                    rows: 0,
                    rep: row.clone(),
                    accs: a.aggs.iter().map(AggAcc::fresh).collect(),
                    view_row: NO_ROW,
                })
            }
        };
        apply_row_to_group(a, g, &row, sign)?;
        dirty.insert(key);
    }

    // Remove emptied groups (the global group persists and re-emits as
    // the executor's empty-input row).
    let mut rescan: HashSet<Vec<Value>> = HashSet::new();
    for key in &dirty {
        let Some(g) = groups.get(key) else { continue };
        if g.rows == 0 && !a.group_by.is_empty() {
            if g.view_row != NO_ROW {
                view_table.delete(RowId(g.view_row))?;
            }
            groups.remove(key);
        } else if g.rows > 0 && g.accs.iter().any(AggAcc::needs_rescan) {
            rescan.insert(key.clone());
        }
    }

    // One source pass rebuilds every flagged group exactly.
    if !rescan.is_empty() {
        for key in &rescan {
            let g = groups.get_mut(key).expect("flagged group exists");
            g.rows = 0;
            g.accs = a.aggs.iter().map(AggAcc::fresh).collect();
        }
        for_each_source_row(a, tables, |_, _, row| {
            let key: Vec<Value> = a
                .group_by
                .iter()
                .map(|e| eval(e, &a.schema, row))
                .collect::<RelResult<_>>()?;
            if rescan.contains(&key) {
                let g = groups.get_mut(&key).expect("flagged group exists");
                apply_row_to_group(a, g, row, 1)?;
            }
            Ok(())
        })?;
    }

    for key in &dirty {
        let Some(g) = groups.get_mut(key) else {
            continue;
        };
        let out = emit_group(a, g)?;
        if g.view_row == NO_ROW {
            g.view_row = view_table.insert(out)?.0;
        } else {
            view_table.update(RowId(g.view_row), out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse_statement;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
                Column::new("f", DataType::Float),
                Column::new("s", DataType::Text),
            ],
        ))
        .unwrap();
        cat.create_table(TableSchema::new(
            "u",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ],
        ))
        .unwrap();
        cat
    }

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    fn analyze(sql: &str) -> RelResult<(ViewAnalysis, TableSchema)> {
        analyze_view("v", &select(sql), &catalog())
    }

    #[test]
    fn analysis_infers_backing_schema() {
        let (a, schema) = analyze("SELECT a, f, s, a + b AS ab, a * 1.5 AS x FROM t").unwrap();
        assert!(!a.grouped);
        let types: Vec<DataType> = schema.columns.iter().map(|c| c.ty).collect();
        assert_eq!(
            types,
            vec![
                DataType::Int,
                DataType::Float,
                DataType::Text,
                DataType::Int,
                DataType::Float,
            ]
        );
        assert_eq!(schema.columns[3].name, "ab");
    }

    #[test]
    fn analysis_finds_equi_key() {
        let (a, _) =
            analyze("SELECT t.a, u.name FROM t JOIN u ON t.b = u.id WHERE t.a > 0").unwrap();
        assert_eq!(a.sources.len(), 2);
        assert!(a.equi.is_some());
        assert_eq!(a.predicate.len(), 2);
        let (a2, _) = analyze("SELECT t.a, u.name FROM t, u WHERE u.id = t.b").unwrap();
        assert!(a2.equi.is_some());
    }

    #[test]
    fn analysis_aggregate_shapes() {
        let (a, schema) =
            analyze("SELECT b, COUNT(*), SUM(a) AS total, AVG(a) AS mean FROM t GROUP BY b")
                .unwrap();
        assert!(a.grouped);
        assert_eq!(a.aggs.len(), 3);
        let types: Vec<DataType> = schema.columns.iter().map(|c| c.ty).collect();
        assert_eq!(
            types,
            vec![DataType::Int, DataType::Int, DataType::Int, DataType::Float]
        );
        // Composite items over grounded parts are accepted.
        analyze("SELECT b, SUM(a) + COUNT(*) AS k FROM t GROUP BY b").unwrap();
        analyze("SELECT b + 1 AS b1, MIN(s) FROM t GROUP BY b + 1").unwrap();
    }

    #[test]
    fn analysis_rejects_unsupported_shapes() {
        for bad in [
            "SELECT DISTINCT a FROM t",
            "SELECT a FROM t ORDER BY a",
            "SELECT a FROM t LIMIT 5",
            "SELECT a FROM t WHERE a = ?",
            "SELECT COUNT(DISTINCT a) FROM t",
            "SELECT SUM(f) FROM t", // float SUM is order-sensitive
            "SELECT AVG(f) FROM t",
            "SELECT a, COUNT(*) FROM t",      // ungrounded non-aggregate
            "SELECT a, a FROM t",             // duplicate output name
            "SELECT t1.a FROM t t1, t t2, u", // three sources
        ] {
            assert!(analyze(bad).is_err(), "{bad:?} should be rejected");
        }
        // MIN/MAX over floats and text stay allowed (comparison-based).
        analyze("SELECT MIN(f), MAX(s) FROM t").unwrap();
    }

    #[test]
    fn renderer_round_trips() {
        for sql in [
            "SELECT a, b AS bb FROM t WHERE (a > 1) AND (s LIKE '%x%')",
            "SELECT t.a, u.name FROM t JOIN u ON t.b = u.id",
            "SELECT b, COUNT(*), SUM(a) AS total FROM t GROUP BY b",
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL",
            "SELECT a FROM t WHERE s = 'it''s' AND f > 1.5 AND a BETWEEN 1 AND 9",
            "SELECT a FROM t WHERE CONTAINS(s, 'needle') OR MATCHES(s, '^x')",
            "SELECT a FROM t WHERE a = -3 AND f = 2.0 AND NOT (b = 1)",
        ] {
            let q = select(sql);
            let rendered = render_select(&q).unwrap();
            let reparsed = select(&rendered);
            let again = render_select(&reparsed).unwrap();
            assert_eq!(rendered, again, "unstable rendering for {sql:?}");
            // The re-parsed tree must analyze identically.
            let a1 = analyze_view("v", &q, &catalog());
            let a2 = analyze_view("v", &reparsed, &catalog());
            assert_eq!(a1.is_ok(), a2.is_ok(), "{sql:?}");
        }
    }

    #[test]
    fn renderer_keeps_whole_floats_floating() {
        let q = select("SELECT a FROM t WHERE f = 2.0");
        let rendered = render_select(&q).unwrap();
        assert!(rendered.contains("2.0"), "{rendered}");
        assert_eq!(select(&rendered), q);
    }

    #[test]
    fn minmax_accumulator_retraction() {
        let spec = AggSpec {
            expr: Expr::Aggregate {
                func: AggFunc::Max,
                arg: Some(Box::new(Expr::col(None, "a"))),
                distinct: false,
            },
            func: AggFunc::Max,
            arg: Some(Expr::col(None, "a")),
        };
        let mut acc = AggAcc::fresh(&spec);
        acc.apply(Value::Int(5), 1).unwrap();
        acc.apply(Value::Int(9), 1).unwrap();
        acc.apply(Value::Int(9), 1).unwrap();
        assert_eq!(acc.value(3).unwrap(), Value::Int(9));
        acc.apply(Value::Int(9), -1).unwrap();
        assert!(!acc.needs_rescan()); // one copy of the extreme remains
        acc.apply(Value::Int(9), -1).unwrap();
        assert!(acc.needs_rescan()); // last copy retracted
    }
}
